//! FIG4: overlap (fraction of one-entries recovered) vs number of queries.
//!
//! Same grid as FIG3 but plotting the overlap metric — the panel showing
//! that almost all one-entries are found well before exact recovery
//! stabilizes.

use pooled_experiments::{output_dir, write_artifacts, Scale, DEFAULT_SEED, PAPER_THETAS};
use pooled_io::csv::fmt_f64;
use pooled_io::{Args, GnuplotScript, Manifest};
use pooled_stats::sweep::linear_grid;
use pooled_stats::{run_mn_sweep, SweepConfig};
use pooled_theory::thresholds::k_of;

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let scale = Scale::from_args(&args);
    let seed = args.get_u64("seed", DEFAULT_SEED);
    let trials = args.get_usize("trials", if scale == Scale::Full { 100 } else { 20 });
    let points = args.get_usize("points", 21);
    // Design-major Monte-Carlo batching: trials per shared design
    // (1 = the classic fully independent sweep, bit-identical to PR 1).
    let batch = args.get_usize("batch", 1);
    let panels: Vec<(usize, usize)> = match scale {
        Scale::Default => vec![(1000, 1000)],
        Scale::Full => vec![(1000, 1000), (10_000, 3000)],
    };

    let mut rows = Vec::new();
    for &(n, m_hi) in &panels {
        for &theta in &PAPER_THETAS {
            let k = k_of(n, theta);
            let cfg = SweepConfig {
                n,
                k,
                m_grid: linear_grid(m_hi / points, m_hi, points),
                trials,
                // Same seed derivation as fig3: identical trials, so the
                // two figures describe the same simulated data, as in the
                // paper.
                master_seed: seed ^ (n as u64) ^ (((theta * 1000.0) as u64) << 32),
                batch,
            };
            for row in run_mn_sweep(&cfg) {
                rows.push(vec![
                    n.to_string(),
                    theta.to_string(),
                    row.m.to_string(),
                    fmt_f64(row.mean_overlap),
                    fmt_f64(row.overlap_stddev),
                    fmt_f64(row.success_rate),
                ]);
            }
            eprintln!("fig4: n={n} θ={theta} done (k={k})");
        }
    }

    let dir = output_dir(&args);
    let manifest = Manifest::new(
        "fig4",
        seed,
        scale.name(),
        serde_json::json!({"panels": panels, "thetas": PAPER_THETAS, "trials": trials}),
    );
    let n0 = panels[0].0;
    let mut gp = GnuplotScript::new(
        &format!("Fig. 4 — overlap over m (n = {n0})"),
        "number of tests m",
        "overlap",
    );
    for &theta in &PAPER_THETAS {
        gp = gp.series(
            "fig4.csv",
            &format!("($1=={n0} && $2=={theta}?$3:1/0):4"),
            &format!("theta = {theta}"),
            "linespoints",
        );
    }
    let header = ["n", "theta", "m", "mean_overlap", "overlap_sd", "success_rate"];
    let csv = write_artifacts(&dir, "fig4", &header, &rows, &manifest, Some(&gp));
    println!("fig4: wrote {}", csv.display());
}
