//! ENGINE-LOAD: load generator for the `pooled_engine` serving layer.
//!
//! Replays a deterministic traffic mix against the engine and measures
//! serving behaviour the figure binaries cannot see:
//!
//! 1. **Closed-loop worker sweep** — the same job batch at 1, 2, 4, …,
//!    `--workers` shards, cold pass (empty design cache) then warm pass.
//!    Reports jobs/sec and checks that every worker count produced
//!    **bit-identical** result fingerprints (the engine's determinism
//!    contract).
//! 2. **Batch-size sweep** — the same warm batch at the top worker count
//!    with design-affinity batch windows 1, 4, 8, 16: batched vs per-job
//!    throughput, and a check that the result fingerprint is identical at
//!    every window (batching must be invisible in results).
//! 3. **Open-loop Poisson replay** — arrivals at `--rate` jobs/sec that
//!    do not wait for completions; `try_submit` under backpressure, shed
//!    jobs counted, p50/p95/p99 latency from the engine histogram.
//! 4. **TCP loopback replay** (`--transport tcp`) — the same job batch
//!    submitted through the transport front (frame codec → TCP → reader
//!    thread → queues) at 1 and `--workers` shards, with the cross-wire
//!    determinism check: fingerprints must be **bit-identical** to the
//!    in-process sweep. Reports the queue/service/wire latency split
//!    only the client side of the socket can observe, and the number of
//!    BUSY backpressure replies absorbed.
//! 5. **Cluster sweep** (`--cluster N`, default 3; 0 disables) — a
//!    design-sharded traffic mix replayed through the router tier:
//!    once on a 1-node cluster (the single-node baseline *is* a 1-node
//!    cluster now), once over `N` local nodes, and — with `--transport
//!    tcp` — once over `N` TCP loopback nodes behind transport servers.
//!    Reports router-level throughput, each node's design-cache hit
//!    rate on the warm pass (the point of key-affinity sharding: every
//!    node's cache serves a stable slice, so per-node warm hit rates
//!    must not fall below the single-node warm rate at equal total
//!    traffic), the queue/service/wire latency split seen from the
//!    router, and the cross-topology determinism check: all three
//!    topologies must produce **bit-identical** result fingerprints.
//! 6. **Kill-node failover sweep** (`--kill-node`) — degraded-mode
//!    serving: the cluster mix replayed fault-free for a baseline, then
//!    replayed on a chaos-wrapped cluster that **loses a node halfway
//!    through the stream**. Records the throughput dip and recovery
//!    time, the survivors' cold-miss count after the kill (zero when
//!    the HRW top-2 standby prewarm did its job), and the headline
//!    check: fingerprints of the kill run **bit-identical** to the
//!    fault-free run, with zero terminally failed jobs.
//!
//! 7. **Durability restart sweep** (`--wal-dir <d>`) — crash recovery
//!    against a real on-disk WAL: a fresh engine produces the
//!    ground-truth fingerprint, a durable engine journals the same
//!    traffic into `<d>` and then **crashes** (dropped without a
//!    shutdown checkpoint), and a restarted engine recovers from disk
//!    alone. Reports the restart's time-to-warm (recovery happens
//!    before `start_durable` returns), the first-100-jobs cold-miss
//!    count (zero when recovery worked), and the headline check:
//!    recovered fingerprints **bit-identical** to the never-crashed
//!    run. The directory is left populated, so running the binary
//!    again with the same `--wal-dir` starts warm across processes.
//!
//! 8. **Connection-front sweep** (`--connections N`, with `--transport
//!    tcp`) — the readiness-driven front under tenant fan-out: 10, 100,
//!    1000, … up to `N` concurrent loopback tenants on one server, each
//!    serving its own slice of the batch. Reports per-tier throughput,
//!    the queue/service/wire p95 split, and the peak process thread
//!    count — which must stay O(event loops + workers + drivers), never
//!    O(connections) — plus the headline check: the merged per-tenant
//!    results **bit-identical** to one in-process `run_batch` of the
//!    same jobs. Tiers that would exceed the process fd limit (three
//!    fds per loopback connection: the client end, its cloned read
//!    half, and the server end) are clamped, loudly.
//!
//! Jobs carry a simulated query-execution cost (`--latency-micros`,
//! default 2000): the paper's premise is that queries dominate
//! reconstruction time, and overlapping that cost across shards is
//! exactly where the multi-worker speedup comes from.
//!
//! Emits `BENCH_ENGINE.json` (`--out` to relocate) with the sweep table,
//! the speedup at the top worker count, and the open-loop tail latencies.
//! Exits non-zero if any worker count broke determinism.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pooled_engine::cluster::{chaos, ChaosConfig, LocalNode, NodeHandle, RemoteNode, Router};
use pooled_engine::engine::{Engine, EngineConfig, EngineStats};
use pooled_engine::job::{DecoderKind, JobResult};
use pooled_engine::telemetry::{render_prometheus, Metric, TelemetryConfig};
use pooled_engine::traffic::{poisson_arrivals, LoadProfile};
use pooled_engine::transport::reactor::{raise_fd_limit, thread_count};
use pooled_engine::transport::{
    BackendChoice, BackendKind, TransportClient, TransportConfig, TransportServer,
};
use pooled_engine::{DurabilityConfig, JobSpec};
use pooled_experiments::DEFAULT_SEED;
use pooled_io::Args;
use pooled_lab::latency::LatencyModel;
use pooled_lab::split::LatencySplit;
use pooled_rng::SeedSequence;
use pooled_theory::thresholds::m_mn_finite;

/// One measured closed-loop pass.
struct Pass {
    workers: usize,
    batch_window: usize,
    cold_jobs_per_sec: f64,
    warm_jobs_per_sec: f64,
    exact_rate: f64,
    cache_misses: u64,
    fingerprint: u64,
}

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let seed = args.get_u64("seed", DEFAULT_SEED);
    let jobs = args.get_usize("jobs", 256);
    let max_workers = args.get_usize("workers", 8);
    let n = args.get_usize("n", 1000);
    let theta = args.get_f64("theta", 0.3);
    let k = args.get_usize("k", (n as f64).powf(theta).round() as usize);
    let m = args.get_usize("m", (1.5 * m_mn_finite(n, theta)).ceil() as usize);
    // Default 4 ms: queries must dominate decode CPU for shard scaling to
    // show (the paper's regime); `--latency-micros 0` gives pure-CPU jobs.
    let latency_micros = args.get_u64("latency-micros", 4000);
    let rate = args.get_f64("rate", 1500.0);
    let queue = args.get_usize("queue", 64);
    let cache = args.get_usize("cache", 16);
    let distinct_designs = args.get_u64("designs", 1);
    let decoders = parse_decoders(&args.get_str("decoders", "mn"));
    let transport = args.get_str("transport", "none");
    assert!(
        transport == "none" || transport == "tcp",
        "--transport must be 'none' or 'tcp', got {transport:?}"
    );
    let cluster = args.get_usize("cluster", 3);
    let connections = args.get_usize("connections", 0);
    assert!(
        connections == 0 || transport == "tcp",
        "--connections sweeps the TCP front; pass --transport tcp"
    );
    let backend_requested = args.get_str("backend", "auto");
    let backend_choice = match backend_requested.as_str() {
        "auto" => BackendChoice::Auto,
        "poll" => BackendChoice::Poll,
        "epoll" => BackendChoice::Epoll,
        other => panic!("--backend must be 'auto', 'poll', or 'epoll', got {other:?}"),
    };
    let kill_node = args.flag("kill-node");
    let metrics_mode = args.flag("metrics");
    let wal_dir = args.get_str("wal-dir", "");
    let out_path = args.get_str("out", "BENCH_ENGINE.json");

    let profile = LoadProfile {
        distinct_designs,
        decoders,
        query_cost: (latency_micros > 0).then_some(LatencyModel::Fixed(latency_micros as f64)),
        ..LoadProfile::default_mix(n, k, m, seed)
    };
    let specs = profile.specs(jobs);
    eprintln!(
        "engine_load: {jobs} jobs, n={n} k={k} m={m}, {} design(s), query cost {latency_micros}µs",
        distinct_designs
    );

    // --- 1. Closed-loop worker sweep -------------------------------------
    let sweep: Vec<usize> = std::iter::successors(Some(1usize), |w| Some(w * 2))
        .take_while(|&w| w < max_workers)
        .chain(std::iter::once(max_workers))
        .collect();
    let mut passes = Vec::new();
    println!("workers  cold jobs/s  warm jobs/s  speedup(warm)  exact%  cache-miss");
    for &workers in &sweep {
        let pass = run_closed_loop(workers, queue, cache, 1, &specs);
        let base = passes.first().map_or(pass.warm_jobs_per_sec, |p: &Pass| p.warm_jobs_per_sec);
        println!(
            "{:<8} {:<12.1} {:<12.1} {:<14.2} {:<7.1} {}",
            pass.workers,
            pass.cold_jobs_per_sec,
            pass.warm_jobs_per_sec,
            pass.warm_jobs_per_sec / base,
            100.0 * pass.exact_rate,
            pass.cache_misses,
        );
        passes.push(pass);
    }
    let deterministic = passes.iter().all(|p| p.fingerprint == passes[0].fingerprint);
    if !deterministic {
        eprintln!("engine_load: DETERMINISM VIOLATION — fingerprints differ across worker counts");
    }
    let speedup = passes.last().unwrap().warm_jobs_per_sec / passes[0].warm_jobs_per_sec;
    println!(
        "warm-cache speedup at {} workers: {speedup:.2}x  |  bit-identical across counts: {}",
        max_workers,
        if deterministic { "yes" } else { "NO" }
    );

    // --- 2. Batch-size sweep ---------------------------------------------
    // Same warm traffic at the top worker count, with the design-affinity
    // batch window swept; window 1 is the per-job baseline the speedups
    // are measured against, and every window must reproduce its
    // fingerprint exactly.
    let batch_windows = [1usize, 4, 8, 16];
    let mut batch_passes = Vec::new();
    println!("batch    warm jobs/s  speedup(vs per-job)  fingerprint-ok");
    for &window in &batch_windows {
        let pass = run_closed_loop(max_workers, queue, cache, window, &specs);
        let base =
            batch_passes.first().map_or(pass.warm_jobs_per_sec, |p: &Pass| p.warm_jobs_per_sec);
        println!(
            "{:<8} {:<12.1} {:<20.2} {}",
            window,
            pass.warm_jobs_per_sec,
            pass.warm_jobs_per_sec / base,
            if pass.fingerprint == passes[0].fingerprint { "yes" } else { "NO" },
        );
        batch_passes.push(pass);
    }
    let batch_deterministic = batch_passes.iter().all(|p| p.fingerprint == passes[0].fingerprint);
    if !batch_deterministic {
        eprintln!("engine_load: DETERMINISM VIOLATION — batching changed result fingerprints");
    }
    let batched_speedup =
        batch_passes.last().unwrap().warm_jobs_per_sec / batch_passes[0].warm_jobs_per_sec;
    println!(
        "batched speedup at window {}: {batched_speedup:.2}x  |  fingerprints identical: {}",
        batch_windows.last().unwrap(),
        if batch_deterministic { "yes" } else { "NO" }
    );

    // --- 3. Open-loop Poisson replay -------------------------------------
    let open = run_open_loop(max_workers, queue, cache, &profile, jobs, rate, seed);
    println!(
        "open-loop @ {rate:.0}/s: served {} shed {} | latency p50 {}µs p95 {}µs p99 {}µs",
        open.served, open.shed, open.p50, open.p95, open.p99
    );

    // --- 3b. TCP loopback replay (--transport tcp) ------------------------
    let mut tcp_passes = Vec::new();
    let mut tcp_deterministic = true;
    if transport == "tcp" {
        println!("tcp      jobs/s       fingerprint-ok  busy  queue-p95  service-p95  wire-p95");
        for &workers in &[1usize, max_workers] {
            let pass = run_tcp_loop(workers, queue, cache, &specs);
            let ok = pass.fingerprint == passes[0].fingerprint;
            tcp_deterministic &= ok;
            println!(
                "{:<8} {:<12.1} {:<15} {:<5} {:<10} {:<12} {}",
                pass.workers,
                pass.jobs_per_sec,
                if ok { "yes" } else { "NO" },
                pass.busy_retries,
                pass.queue_p95,
                pass.service_p95,
                pass.wire_p95,
            );
            tcp_passes.push(pass);
        }
        if !tcp_deterministic {
            eprintln!(
                "engine_load: DETERMINISM VIOLATION — TCP fingerprints differ from in-process"
            );
        } else {
            println!(
                "cross-wire fingerprints identical to in-process submission at 1 and \
                 {max_workers} workers"
            );
        }
    }

    // --- 3c. Cluster sweep (--cluster N) ----------------------------------
    // A design-sharded mix through the router tier: the same traffic on a
    // 1-node cluster, an N-node local cluster, and (with --transport tcp)
    // an N-node TCP loopback cluster. The single-node pass doubles as the
    // fingerprint baseline and the warm-hit-rate yardstick.
    let mut cluster_passes: Vec<ClusterPass> = Vec::new();
    let mut cluster_deterministic = true;
    let mut cluster_hit_rates_hold = true;
    let mut single_warm_hit_rate = 0.0f64;
    let mut cluster_designs = 0u64;
    if cluster > 0 {
        // Give each node a key slice to own: at least two distinct
        // designs per node, never fewer than the profile already has.
        cluster_designs = distinct_designs.max(2 * cluster as u64);
        let cluster_profile = LoadProfile { distinct_designs: cluster_designs, ..profile.clone() };
        let cluster_specs = cluster_profile.specs(jobs);
        let workers_per_node = (max_workers / cluster).max(1);
        println!(
            "cluster  nodes  jobs/s(warm)  fingerprint-ok  busy  min-node-hit%  q-p95  s-p95  w-p95"
        );
        let single = run_cluster_local("single", 1, max_workers, queue, cache, &cluster_specs);
        single_warm_hit_rate = single.min_warm_hit_rate;
        let mut passes = vec![single];
        passes.push(run_cluster_local(
            "local",
            cluster,
            workers_per_node,
            queue,
            cache,
            &cluster_specs,
        ));
        if transport == "tcp" {
            passes.push(run_cluster_tcp(cluster, workers_per_node, queue, cache, &cluster_specs));
        }
        let baseline = passes[0].fingerprint;
        for pass in &passes {
            let ok = pass.fingerprint == baseline;
            cluster_deterministic &= ok;
            // Every node that saw traffic must stay at least as warm as
            // the single-node baseline at equal total traffic.
            if pass.min_warm_hit_rate < single_warm_hit_rate - 1e-9 {
                cluster_hit_rates_hold = false;
            }
            println!(
                "{:<8} {:<6} {:<13.1} {:<15} {:<5} {:<14.1} {:<6} {:<6} {}",
                pass.label,
                pass.nodes.len(),
                pass.warm_jobs_per_sec,
                if ok { "yes" } else { "NO" },
                pass.busy_retries,
                100.0 * pass.min_warm_hit_rate,
                pass.queue_p95,
                pass.service_p95,
                pass.wire_p95,
            );
        }
        if !cluster_deterministic {
            eprintln!(
                "engine_load: DETERMINISM VIOLATION — cluster fingerprints differ from the \
                 1-node baseline"
            );
        } else {
            println!(
                "cluster fingerprints identical across 1-node, {cluster}-node local{} topologies",
                if transport == "tcp" { format!(" and {cluster}-node TCP") } else { String::new() }
            );
        }
        if !cluster_hit_rates_hold {
            eprintln!(
                "engine_load: AFFINITY REGRESSION — a node's warm hit rate fell below the \
                 single-node warm rate"
            );
        }
        cluster_passes = passes;
    }

    // --- 3d. Kill-node failover sweep (--kill-node) ------------------------
    // Degraded-mode serving: the cluster mix fault-free for a baseline,
    // then again on a chaos-wrapped cluster that loses a node halfway
    // through the stream. The headline check is bit-identity with the
    // fault-free run; the telemetry is the throughput dip, the recovery
    // gap, and the survivors' cold-miss count after the kill (zero when
    // the HRW top-2 standby prewarm kept them warm).
    let mut failover: Option<FailoverSweep> = None;
    let mut failover_ok = true;
    if kill_node {
        let fo_nodes = if cluster > 0 { cluster.max(2) } else { 3 };
        let fo_designs = distinct_designs.max(2 * fo_nodes as u64);
        let fo_profile = LoadProfile { distinct_designs: fo_designs, ..profile.clone() };
        let fo_specs = fo_profile.specs(jobs);
        let fo_workers = (max_workers / fo_nodes).max(1);
        let sweep = run_failover_sweep(fo_nodes, fo_workers, queue, cache, &fo_specs);
        failover_ok = sweep.fingerprints_match && sweep.failed_jobs == 0;
        println!(
            "failover: killed node {} at job {}/{} | pre-kill {:.1}/s post-kill {:.1}/s | \
             recovery {}µs | survivor cold misses {} | failed jobs {} | bit-identical: {}",
            sweep.killed_node,
            sweep.kill_at,
            jobs,
            sweep.pre_kill_jobs_per_sec,
            sweep.post_kill_jobs_per_sec,
            sweep.recovery_micros,
            sweep.survivor_cold_misses_after_kill,
            sweep.failed_jobs,
            if failover_ok { "yes" } else { "NO" },
        );
        if !failover_ok {
            eprintln!(
                "engine_load: FAILOVER VIOLATION — the kill run lost jobs or changed bits \
                 vs the fault-free run"
            );
        }
        failover = Some(sweep);
    }

    // --- 3e. Telemetry overhead (--metrics) --------------------------------
    // The observability plane's price tag: the same warm batch at the top
    // worker count with tracing off, then with every job traced at full
    // sampling into the flight recorder. Tracing must stay under 5%
    // throughput overhead and — the hard invariant — must not move a
    // single result bit. Also emits the Prometheus exposition so CI can
    // assert the scrape surface actually parses.
    let mut telemetry_sweep: Option<TelemetrySweep> = None;
    let mut telemetry_deterministic = true;
    if metrics_mode {
        let (off, full) = run_telemetry_sweep(max_workers, queue, cache, &specs);
        telemetry_deterministic =
            off.fingerprint == passes[0].fingerprint && full.fingerprint == passes[0].fingerprint;
        let overhead_pct = 100.0 * (1.0 - full.warm_jobs_per_sec / off.warm_jobs_per_sec);
        let within_5pct = overhead_pct <= 5.0;
        println!(
            "telemetry: off {:.1}/s  full-tracing {:.1}/s  overhead {:.2}%  within-5%: {}  \
             bit-identical: {}",
            off.warm_jobs_per_sec,
            full.warm_jobs_per_sec,
            overhead_pct,
            if within_5pct { "yes" } else { "NO" },
            if telemetry_deterministic { "yes" } else { "NO" },
        );
        if !telemetry_deterministic {
            eprintln!("engine_load: DETERMINISM VIOLATION — tracing changed result fingerprints");
        }
        // The flight-recorder dump must be real JSON, not JSON-shaped.
        serde_json::from_str(&full.recorder_json).expect("flight recorder dump must parse as JSON");
        println!("--- prometheus exposition (full tracing) ---");
        print!("{}", full.prometheus);
        println!("--- end prometheus exposition ---");
        telemetry_sweep = Some(TelemetrySweep {
            warm_jobs_per_sec_off: off.warm_jobs_per_sec,
            warm_jobs_per_sec_full_tracing: full.warm_jobs_per_sec,
            overhead_pct,
            within_5pct,
        });
    }

    // --- 3f. Durability restart sweep (--wal-dir <d>) ----------------------
    // Crash recovery end to end: ground-truth fingerprint from a fresh
    // engine, a durable incarnation that journals the traffic and then
    // crashes without a checkpoint, and a restart that must come back
    // warm from disk alone — zero cold misses over its first 100 jobs
    // and bit-identical results.
    let mut durability_sweep: Option<DurabilitySweep> = None;
    let mut durability_ok = true;
    if !wal_dir.is_empty() {
        let sweep = run_durability_sweep(max_workers, queue, cache, &specs, &wal_dir);
        durability_ok = sweep.fingerprints_match && sweep.restart_first_100_cold_misses == 0;
        println!(
            "durability: cold first-100 misses {} | incarnation-1 started {} ({} records) | \
             restart warm in {}µs, {} records, first-100 cold misses {} | bit-identical: {}",
            sweep.cold_first_100_misses,
            if sweep.incarnation_started_warm { "warm" } else { "cold" },
            sweep.incarnation_records_replayed,
            sweep.restart_recovery_micros,
            sweep.restart_records_replayed,
            sweep.restart_first_100_cold_misses,
            if sweep.fingerprints_match { "yes" } else { "NO" },
        );
        if !durability_ok {
            eprintln!(
                "engine_load: DURABILITY VIOLATION — the recovered engine served cold or \
                 changed bits vs the never-crashed run"
            );
        }
        durability_sweep = Some(sweep);
    }

    // --- 3g. Connection-front sweep (--connections N) -----------------------
    // The readiness-driven front under tenant fan-out: decade tiers of
    // concurrent loopback tenants up to N, each serving a disjoint slice
    // of one batch. Two headline checks ride every tier: the merged
    // per-tenant results are bit-identical to a single in-process
    // run_batch of the same jobs, and the peak process thread count is
    // O(event loops + workers + drivers) — the whole point of retiring
    // thread-per-connection.
    let mut connection_tiers: Vec<ConnectionTier> = Vec::new();
    let mut alternate_tiers: Vec<ConnectionTier> = Vec::new();
    let mut connection_fingerprints_ok = true;
    let mut connection_threads_bounded = true;
    let backend_resolved = backend_choice.resolve();
    if connections > 0 {
        // The headline tiers run on the requested backend; each tier
        // also reruns on the other backend (when the platform has one)
        // so the report can put epoll's delivered-events-per-tick next
        // to poll's scanned-set-per-tick on identical traffic.
        let alternate_choice = match backend_resolved {
            BackendKind::Epoll => Some(BackendChoice::Poll),
            BackendKind::Poll => cfg!(target_os = "linux").then_some(BackendChoice::Epoll),
        };
        let tiers: Vec<usize> = std::iter::successors(Some(10usize), |c| Some(c * 10))
            .take_while(|&c| c < connections)
            .chain(std::iter::once(connections))
            .collect();
        let mut truth = std::collections::HashMap::new();
        println!(
            "connection sweep backend: {} (requested {backend_requested})",
            backend_resolved.name()
        );
        println!(
            "conns    jobs     jobs/s       fingerprint-ok  threads  bound  busy   q-p95   \
             s-p95   w-p95   ready/tick"
        );
        for &tier_conns in &tiers {
            let tier = run_connection_tier(
                tier_conns,
                max_workers,
                queue,
                cache,
                &profile,
                jobs,
                backend_choice,
                &mut truth,
            );
            connection_fingerprints_ok &= tier.fingerprints_match;
            connection_threads_bounded &= tier.threads_bounded;
            println!(
                "{:<8} {:<8} {:<12.1} {:<15} {:<8} {:<6} {:<6} {:<7} {:<7} {:<7} {:.1}",
                tier.connections,
                tier.total_jobs,
                tier.jobs_per_sec,
                if tier.fingerprints_match { "yes" } else { "NO" },
                tier.peak_threads,
                tier.thread_bound,
                tier.busy_retries,
                tier.queue_p95,
                tier.service_p95,
                tier.wire_p95,
                tier.ready_fds_per_tick(),
            );
            if let Some(alt) = alternate_choice {
                let other = run_connection_tier(
                    tier_conns,
                    max_workers,
                    queue,
                    cache,
                    &profile,
                    jobs,
                    alt,
                    &mut truth,
                );
                connection_fingerprints_ok &= other.fingerprints_match;
                connection_threads_bounded &= other.threads_bounded;
                println!(
                    "backend-compare @ {}: {} {:.1}/s ({:.1} ready/tick over {} ticks) vs \
                     {} {:.1}/s ({:.1} ready/tick over {} ticks)",
                    tier.connections,
                    tier.backend,
                    tier.jobs_per_sec,
                    tier.ready_fds_per_tick(),
                    tier.ticks,
                    other.backend,
                    other.jobs_per_sec,
                    other.ready_fds_per_tick(),
                    other.ticks,
                );
                alternate_tiers.push(other);
            }
            connection_tiers.push(tier);
        }
        if !connection_fingerprints_ok {
            eprintln!(
                "engine_load: DETERMINISM VIOLATION — connection-sweep results differ from \
                 in-process submission"
            );
        }
        if !connection_threads_bounded {
            eprintln!(
                "engine_load: THREAD REGRESSION — server thread count scaled with connections"
            );
        }
        if connection_fingerprints_ok && connection_threads_bounded {
            println!(
                "connection front held to {} tenants: fingerprints bit-identical, threads \
                 O(event loops)",
                connection_tiers.last().map_or(0, |t| t.connections)
            );
        }
    }

    // --- 4. Emit BENCH_ENGINE.json ---------------------------------------
    let sweep_rows: Vec<serde_json::Value> = passes
        .iter()
        .map(|p| {
            serde_json::json!({
                "workers": p.workers,
                "cold_jobs_per_sec": p.cold_jobs_per_sec,
                "warm_jobs_per_sec": p.warm_jobs_per_sec,
                "exact_rate": p.exact_rate,
                "cache_misses": p.cache_misses,
                "fingerprint": p.fingerprint,
            })
        })
        .collect();
    let params = serde_json::json!({
        "jobs": jobs, "n": n, "k": k, "m": m,
        "distinct_designs": distinct_designs,
        "query_cost_micros": latency_micros,
        "queue_capacity": queue, "design_cache_capacity": cache,
    });
    let open_loop = serde_json::json!({
        "rate_per_sec": rate,
        "served": open.served,
        "shed": open.shed,
        "latency_p50_micros": open.p50,
        "latency_p95_micros": open.p95,
        "latency_p99_micros": open.p99,
    });
    let batch_rows: Vec<serde_json::Value> = batch_passes
        .iter()
        .map(|p| {
            serde_json::json!({
                "batch_window": p.batch_window,
                "warm_jobs_per_sec": p.warm_jobs_per_sec,
                "speedup_vs_per_job": p.warm_jobs_per_sec / batch_passes[0].warm_jobs_per_sec,
                "fingerprint": p.fingerprint,
            })
        })
        .collect();
    let tcp_rows: Vec<serde_json::Value> = tcp_passes
        .iter()
        .map(|p| {
            serde_json::json!({
                "workers": p.workers,
                "jobs_per_sec": p.jobs_per_sec,
                "fingerprint": p.fingerprint,
                "busy_retries": p.busy_retries,
                "queue_p95_micros": p.queue_p95,
                "service_p95_micros": p.service_p95,
                "wire_p95_micros": p.wire_p95,
            })
        })
        .collect();
    let mut report = serde_json::json!({
        "experiment": "engine_load",
        "seed": seed,
        "params": params,
        "closed_loop": sweep_rows,
        "warm_speedup_at_max_workers": speedup,
        "deterministic_across_worker_counts": deterministic,
        "batch_sweep": batch_rows,
        "batched_speedup_at_max_window": batched_speedup,
        "deterministic_across_batch_windows": batch_deterministic,
        "open_loop": open_loop,
    });
    if transport == "tcp" {
        if let serde_json::Value::Object(members) = &mut report {
            members.push(("transport".to_string(), serde_json::json!("tcp")));
            members.push(("tcp_loopback".to_string(), serde_json::Value::Array(tcp_rows)));
            members.push((
                "tcp_fingerprints_match_in_process".to_string(),
                serde_json::Value::Bool(tcp_deterministic),
            ));
        }
    }
    if cluster > 0 {
        let pass_rows: Vec<serde_json::Value> = cluster_passes
            .iter()
            .map(|p| {
                let node_rows: Vec<serde_json::Value> = p
                    .nodes
                    .iter()
                    .map(|n| {
                        serde_json::json!({
                            "node": n.id,
                            "jobs_completed": n.jobs_completed,
                            "warm_cache_hits": n.warm_hits,
                            "warm_cache_accesses": n.warm_accesses,
                            "warm_hit_rate": n.warm_hit_rate(),
                        })
                    })
                    .collect();
                serde_json::json!({
                    "topology": p.label,
                    "nodes": p.nodes.len(),
                    "warm_jobs_per_sec": p.warm_jobs_per_sec,
                    "fingerprint": p.fingerprint,
                    "busy_retries": p.busy_retries,
                    "min_node_warm_hit_rate": p.min_warm_hit_rate,
                    "queue_p95_micros": p.queue_p95,
                    "service_p95_micros": p.service_p95,
                    "wire_p95_micros": p.wire_p95,
                    "per_node": node_rows,
                })
            })
            .collect();
        if let serde_json::Value::Object(members) = &mut report {
            members.push((
                "cluster_sweep".to_string(),
                serde_json::json!({
                    "cluster_nodes": cluster,
                    "distinct_designs": cluster_designs,
                    "single_node_warm_hit_rate": single_warm_hit_rate,
                    "passes": pass_rows,
                }),
            ));
            members.push((
                "cluster_fingerprints_match_single_node".to_string(),
                serde_json::Value::Bool(cluster_deterministic),
            ));
            members.push((
                "cluster_node_hit_rates_at_least_single_node_warm_rate".to_string(),
                serde_json::Value::Bool(cluster_hit_rates_hold),
            ));
        }
    }
    if let Some(sweep) = &telemetry_sweep {
        if let serde_json::Value::Object(members) = &mut report {
            members.push((
                "telemetry_overhead".to_string(),
                serde_json::json!({
                    "warm_jobs_per_sec_off": sweep.warm_jobs_per_sec_off,
                    "warm_jobs_per_sec_full_tracing": sweep.warm_jobs_per_sec_full_tracing,
                    "overhead_pct": sweep.overhead_pct,
                    "telemetry_overhead_within_5pct": sweep.within_5pct,
                }),
            ));
            members.push((
                "telemetry_fingerprints_match_untraced".to_string(),
                serde_json::Value::Bool(telemetry_deterministic),
            ));
        }
    }
    if connections > 0 {
        let tier_rows: Vec<serde_json::Value> = connection_tiers
            .iter()
            .map(|t| {
                serde_json::json!({
                    "requested_connections": t.requested,
                    "connections": t.connections,
                    "backend": t.backend,
                    "total_jobs": t.total_jobs,
                    "jobs_per_sec": t.jobs_per_sec,
                    "fingerprints_match": t.fingerprints_match,
                    "peak_threads": t.peak_threads,
                    "thread_bound": t.thread_bound,
                    "threads_bounded": t.threads_bounded,
                    "busy_retries": t.busy_retries,
                    "queue_p95_micros": t.queue_p95,
                    "service_p95_micros": t.service_p95,
                    "wire_p95_micros": t.wire_p95,
                    "ticks": t.ticks,
                    "ready_fds": t.ready_fds,
                    "ready_fds_per_tick": t.ready_fds_per_tick(),
                    "writev_calls": t.writev_calls,
                    "partial_writes": t.partial_writes,
                    "fd_limit": t.fd_limit,
                })
            })
            .collect();
        // Side-by-side rows keyed by backend name: identical traffic,
        // the only variable is the readiness mechanism.
        let compare_rows: Vec<serde_json::Value> = connection_tiers
            .iter()
            .map(|t| {
                let mut row = vec![("connections".to_string(), serde_json::json!(t.connections))];
                let mut matched = t.fingerprints_match;
                row.push((t.backend.to_string(), backend_tier_json(t)));
                if let Some(o) = alternate_tiers.iter().find(|o| o.connections == t.connections) {
                    matched &= o.fingerprints_match;
                    row.push((o.backend.to_string(), backend_tier_json(o)));
                }
                row.push(("fingerprints_match".to_string(), serde_json::json!(matched)));
                serde_json::Value::Object(row)
            })
            .collect();
        if let serde_json::Value::Object(members) = &mut report {
            members.push(("backend_requested".to_string(), serde_json::json!(backend_requested)));
            members
                .push(("backend_resolved".to_string(), serde_json::json!(backend_resolved.name())));
            members.push((
                "connection_sweep".to_string(),
                serde_json::json!({
                    "requested_max": connections,
                    "backend": backend_resolved.name(),
                    "tiers": tier_rows,
                }),
            ));
            members.push(("backend_compare".to_string(), serde_json::Value::Array(compare_rows)));
            members.push((
                "connection_fingerprints_match_in_process".to_string(),
                serde_json::Value::Bool(connection_fingerprints_ok),
            ));
            members.push((
                "connection_threads_bounded".to_string(),
                serde_json::Value::Bool(connection_threads_bounded),
            ));
        }
    }
    if let Some(sweep) = &failover {
        if let serde_json::Value::Object(members) = &mut report {
            members.push((
                "failover_sweep".to_string(),
                serde_json::json!({
                    "cluster_nodes": sweep.nodes,
                    "killed_node": sweep.killed_node,
                    "killed_at_job": sweep.kill_at,
                    "jobs": jobs,
                    "baseline_warm_jobs_per_sec": sweep.baseline_jobs_per_sec,
                    "pre_kill_jobs_per_sec": sweep.pre_kill_jobs_per_sec,
                    "post_kill_jobs_per_sec": sweep.post_kill_jobs_per_sec,
                    "recovery_micros": sweep.recovery_micros,
                    "survivor_cold_misses_after_kill": sweep.survivor_cold_misses_after_kill,
                    "standby_kept_survivors_warm": sweep.survivor_cold_misses_after_kill == 0,
                    "failed_jobs": sweep.failed_jobs,
                }),
            ));
            members.push((
                "failover_fingerprints_match_fault_free".to_string(),
                serde_json::Value::Bool(failover_ok),
            ));
        }
    }
    if let Some(sweep) = &durability_sweep {
        if let serde_json::Value::Object(members) = &mut report {
            members.push((
                "durability_sweep".to_string(),
                serde_json::json!({
                    "wal_dir": sweep.wal_dir,
                    "cold_pass_micros": sweep.cold_pass_micros,
                    "cold_first_100_misses": sweep.cold_first_100_misses,
                    "incarnation_started_warm": sweep.incarnation_started_warm,
                    "incarnation_records_replayed": sweep.incarnation_records_replayed,
                    "incarnation_recovery_micros": sweep.incarnation_recovery_micros,
                    "incarnation_first_100_misses": sweep.incarnation_first_100_misses,
                    "restart_recovery_micros": sweep.restart_recovery_micros,
                    "restart_records_replayed": sweep.restart_records_replayed,
                    "restart_first_100_cold_misses": sweep.restart_first_100_cold_misses,
                    "restart_warm_jobs_per_sec": sweep.restart_warm_jobs_per_sec,
                }),
            ));
            members.push((
                "durability_fingerprints_match".to_string(),
                serde_json::Value::Bool(sweep.fingerprints_match),
            ));
        }
    }
    std::fs::write(&out_path, serde_json::to_string_pretty(&report).expect("serializable"))
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("engine_load: wrote {out_path}");
    if !deterministic
        || !batch_deterministic
        || !tcp_deterministic
        || !cluster_deterministic
        || !failover_ok
        || !telemetry_deterministic
        || !durability_ok
        || !connection_fingerprints_ok
        || !connection_threads_bounded
    {
        std::process::exit(1);
    }
}

/// What the durability restart sweep measured.
struct DurabilitySweep {
    wal_dir: String,
    cold_pass_micros: u64,
    cold_first_100_misses: u64,
    incarnation_started_warm: bool,
    incarnation_records_replayed: u64,
    incarnation_recovery_micros: u64,
    incarnation_first_100_misses: u64,
    restart_recovery_micros: u64,
    restart_records_replayed: u64,
    restart_first_100_cold_misses: u64,
    restart_warm_jobs_per_sec: f64,
    fingerprints_match: bool,
}

/// Crash-recovery sweep against a real durability directory. Three
/// incarnations: a fresh engine (no WAL) for the ground-truth
/// fingerprint and the cold-miss yardstick; a durable engine that
/// journals the same traffic into `wal_dir` and then **crashes** —
/// dropped without a shutdown checkpoint, so recovery has only the
/// per-admission WAL records and spilled snapshots to work with; and a
/// restart that recovers from disk alone. `Engine::start_durable`
/// returns only after replay + prewarm, so the restart's construction
/// time *is* its time-to-warm, and its first 100 jobs must take zero
/// cold misses. The directory is deliberately left populated (the
/// restart shuts down cleanly, checkpointing the log): running the
/// binary again with the same `--wal-dir` starts incarnation 1 warm,
/// which is the cross-process recovery CI pins by invoking this twice.
fn run_durability_sweep(
    workers: usize,
    queue: usize,
    cache: usize,
    specs: &[JobSpec],
    wal_dir: &str,
) -> DurabilitySweep {
    let first = &specs[..specs.len().min(100)];
    let mut results = Vec::with_capacity(specs.len());

    // Ground truth: a never-durable, never-crashed engine.
    let engine = Engine::start(node_config(workers, queue, cache));
    let started = Instant::now();
    engine.run_batch(first, &mut results);
    let cold_first_100_misses = engine.stats().cache_misses;
    results.clear();
    engine.run_batch(specs, &mut results);
    let cold_pass_micros = started.elapsed().as_micros() as u64;
    let fingerprint = batch_fingerprint(&results);
    engine.shutdown();

    // Incarnation 1: journal the traffic, then crash. Starts warm when
    // `wal_dir` already holds a previous process's log.
    let started = Instant::now();
    let durable =
        Engine::start_durable(node_config(workers, queue, cache), DurabilityConfig::new(wal_dir))
            .expect("open durability dir");
    let incarnation_recovery_micros = started.elapsed().as_micros() as u64;
    let incarnation_records_replayed = durable.metrics().get(Metric::RecoveryRecordsReplayed);
    let miss_base = durable.stats().cache_misses;
    results.clear();
    durable.run_batch(first, &mut results);
    let incarnation_first_100_misses = durable.stats().cache_misses - miss_base;
    results.clear();
    durable.run_batch(specs, &mut results);
    let mut fingerprints_match = batch_fingerprint(&results) == fingerprint;
    drop(durable); // the crash: no shutdown, no checkpoint

    // The restart: disk is all it has.
    let started = Instant::now();
    let recovered =
        Engine::start_durable(node_config(workers, queue, cache), DurabilityConfig::new(wal_dir))
            .expect("recover durability dir");
    let restart_recovery_micros = started.elapsed().as_micros() as u64;
    let restart_records_replayed = recovered.metrics().get(Metric::RecoveryRecordsReplayed);
    let miss_base = recovered.stats().cache_misses;
    results.clear();
    recovered.run_batch(first, &mut results);
    let restart_first_100_cold_misses = recovered.stats().cache_misses - miss_base;
    results.clear();
    let warm_start = Instant::now();
    recovered.run_batch(specs, &mut results);
    let warm_elapsed = warm_start.elapsed().as_secs_f64();
    fingerprints_match &= batch_fingerprint(&results) == fingerprint;
    recovered.shutdown(); // clean: checkpoints for the next process

    DurabilitySweep {
        wal_dir: wal_dir.to_string(),
        cold_pass_micros,
        cold_first_100_misses,
        incarnation_started_warm: incarnation_records_replayed > 0,
        incarnation_records_replayed,
        incarnation_recovery_micros,
        incarnation_first_100_misses,
        restart_recovery_micros,
        restart_records_replayed,
        restart_first_100_cold_misses,
        restart_warm_jobs_per_sec: specs.len() as f64 / warm_elapsed,
        fingerprints_match,
    }
}

/// What the telemetry-overhead sweep measured.
struct TelemetrySweep {
    warm_jobs_per_sec_off: f64,
    warm_jobs_per_sec_full_tracing: f64,
    overhead_pct: f64,
    within_5pct: bool,
}

/// One telemetry pass: cold warm-up, then a timed warm pass, under the
/// given tracing config. Captures the Prometheus exposition and the
/// flight-recorder JSON dump before shutdown.
struct TelemetryPass {
    warm_jobs_per_sec: f64,
    fingerprint: u64,
    prometheus: String,
    recorder_json: String,
}

/// Measure the tracing overhead with interleaved best-of-5 trials: one
/// engine with tracing off, one tracing every job, warm both, then
/// alternate timed passes between them. Interleaving means machine-load
/// drift hits both sides equally, and taking each side's fastest pass
/// discards scheduler-jitter outliers — the jobs are sleep-dominated, so
/// the true overhead is small and a single short pass is all noise.
fn run_telemetry_sweep(
    workers: usize,
    queue: usize,
    cache: usize,
    specs: &[JobSpec],
) -> (TelemetryPass, TelemetryPass) {
    let engine_off = Engine::start_with(node_config(workers, queue, cache), TelemetryConfig::off());
    let engine_full =
        Engine::start_with(node_config(workers, queue, cache), TelemetryConfig::full());
    let mut results = Vec::with_capacity(specs.len());
    engine_off.run_batch(specs, &mut results);
    let fingerprint_off = batch_fingerprint(&results);
    results.clear();
    engine_full.run_batch(specs, &mut results);
    let fingerprint_full = batch_fingerprint(&results);

    let mut elapsed_off = f64::INFINITY;
    let mut elapsed_full = f64::INFINITY;
    for _ in 0..5 {
        results.clear();
        let started = Instant::now();
        engine_off.run_batch(specs, &mut results);
        elapsed_off = elapsed_off.min(started.elapsed().as_secs_f64());
        assert_eq!(batch_fingerprint(&results), fingerprint_off, "untraced warm pass diverged");

        results.clear();
        let started = Instant::now();
        engine_full.run_batch(specs, &mut results);
        elapsed_full = elapsed_full.min(started.elapsed().as_secs_f64());
        assert_eq!(batch_fingerprint(&results), fingerprint_full, "traced warm pass diverged");
    }

    let snapshot = engine_full.metrics().snapshot();
    let prometheus = render_prometheus(&engine_full.stats(), Some(&snapshot));
    let recorder_json = engine_full.flight_recorder().dump_json();
    engine_off.shutdown();
    engine_full.shutdown();
    (
        TelemetryPass {
            warm_jobs_per_sec: specs.len() as f64 / elapsed_off,
            fingerprint: fingerprint_off,
            prometheus: String::new(),
            recorder_json: String::new(),
        },
        TelemetryPass {
            warm_jobs_per_sec: specs.len() as f64 / elapsed_full,
            fingerprint: fingerprint_full,
            prometheus,
            recorder_json,
        },
    )
}

/// One TCP loopback pass.
struct TcpPass {
    workers: usize,
    jobs_per_sec: f64,
    fingerprint: u64,
    busy_retries: u64,
    queue_p95: u64,
    service_p95: u64,
    wire_p95: u64,
}

/// Replay the batch through the transport front on an ephemeral loopback
/// port: engine + TCP server + pipelined client, with the queue/service/
/// wire latency split only the socket's client side can measure.
fn run_tcp_loop(workers: usize, queue: usize, cache: usize, specs: &[JobSpec]) -> TcpPass {
    let engine = Arc::new(Engine::start(EngineConfig {
        workers,
        queue_capacity: queue,
        results_capacity: queue,
        design_cache_capacity: cache,
        batch_window: 1,
    }));
    let server =
        TransportServer::bind(Arc::clone(&engine), "127.0.0.1:0", TransportConfig::default())
            .expect("bind loopback transport");
    let mut client = TransportClient::connect(server.local_addr()).expect("connect loopback");
    let mut results = Vec::with_capacity(specs.len());
    let mut split = LatencySplit::new();
    let started = Instant::now();
    client.run_batch_split(specs, &mut results, &mut split).expect("tcp replay failed");
    let elapsed = started.elapsed().as_secs_f64();
    let busy_retries = client.busy_retries();
    drop(client);
    server.stop();
    Arc::try_unwrap(engine).ok().expect("transport released the engine").shutdown();
    TcpPass {
        workers,
        jobs_per_sec: specs.len() as f64 / elapsed,
        fingerprint: batch_fingerprint(&results),
        busy_retries,
        queue_p95: split.queue.quantile_micros(0.95),
        service_p95: split.service.quantile_micros(0.95),
        wire_p95: split.wire.quantile_micros(0.95),
    }
}

/// One tier of the connection-front sweep.
struct ConnectionTier {
    requested: usize,
    connections: usize,
    /// The backend the server actually ran ("poll"/"epoll").
    backend: &'static str,
    total_jobs: usize,
    jobs_per_sec: f64,
    fingerprints_match: bool,
    peak_threads: usize,
    thread_bound: usize,
    threads_bounded: bool,
    busy_retries: u64,
    queue_p95: u64,
    service_p95: u64,
    wire_p95: u64,
    /// Event-loop ticks over the tier's whole lifetime (adopt + serve).
    ticks: u64,
    /// Backend-reported touched fds: events delivered under epoll, the
    /// registered set scanned under poll — so this column per tick is
    /// the O(active) vs O(connections) comparison in one number.
    ready_fds: u64,
    writev_calls: u64,
    partial_writes: u64,
    fd_limit: u64,
}

impl ConnectionTier {
    fn ready_fds_per_tick(&self) -> f64 {
        self.ready_fds as f64 / self.ticks.max(1) as f64
    }
}

/// The per-backend half of a `backend_compare` row.
fn backend_tier_json(t: &ConnectionTier) -> serde_json::Value {
    serde_json::json!({
        "jobs_per_sec": t.jobs_per_sec,
        "queue_p95_micros": t.queue_p95,
        "service_p95_micros": t.service_p95,
        "wire_p95_micros": t.wire_p95,
        "ticks": t.ticks,
        "ready_fds": t.ready_fds,
        "ready_fds_per_tick": t.ready_fds_per_tick(),
        "writev_calls": t.writev_calls,
        "partial_writes": t.partial_writes,
        "fingerprints_match": t.fingerprints_match,
    })
}

/// One fan-out tier: `requested` concurrent loopback tenants against a
/// single event-loop server, each replaying its own contiguous id slice
/// of one `total_jobs`-job batch (so the merged results compare 1:1
/// against a single in-process `run_batch`). At most 8 driver threads
/// own the tenants round-robin and serve them serially — tenant
/// concurrency lives in the server's event loops, not in the load
/// generator. The thread count is sampled while every tenant is
/// connected, *before* the serve phase, which is exactly when a
/// thread-per-connection design would be caught red-handed.
#[allow(clippy::too_many_arguments)]
fn run_connection_tier(
    requested: usize,
    workers: usize,
    queue: usize,
    cache: usize,
    profile: &LoadProfile,
    base_jobs: usize,
    backend: BackendChoice,
    truth: &mut std::collections::HashMap<usize, u64>,
) -> ConnectionTier {
    // Three fds per loopback connection — the client's stream, the
    // client's cloned read half, and the server's end — plus slack for
    // the engine, wake pipes, and whatever the process already holds. A
    // tier the fd limit cannot host is clamped — loudly, and recorded
    // in the report, never silently passed off as the full run.
    const FD_SLACK: u64 = 400;
    let fd_limit = raise_fd_limit(3 * requested as u64 + FD_SLACK);
    let conns = requested.min((fd_limit.saturating_sub(FD_SLACK) / 3) as usize).max(1);
    if conns < requested {
        eprintln!(
            "engine_load: fd limit {fd_limit} clamps the {requested}-connection tier to {conns}"
        );
    }
    let total_jobs = base_jobs.max(conns);
    let specs = profile.specs(total_jobs);
    let want = *truth.entry(total_jobs).or_insert_with(|| {
        let engine = Engine::start(node_config(workers, queue, cache));
        let mut results = Vec::with_capacity(total_jobs);
        engine.run_batch(&specs, &mut results);
        engine.shutdown();
        batch_fingerprint(&results)
    });

    let config =
        TransportConfig { max_connections: conns + 8, backend, ..TransportConfig::default() };
    let event_loops = config.event_loops;
    let engine = Arc::new(Engine::start(node_config(workers, queue, cache)));
    let server = TransportServer::bind(Arc::clone(&engine), "127.0.0.1:0", config)
        .expect("bind connection-sweep server");
    let addr = server.local_addr();

    // Tenant t's slice: total_jobs / conns jobs, the remainder spread
    // over the first tenants, ids contiguous.
    let per = total_jobs / conns;
    let extra = total_jobs % conns;
    let mut slices = Vec::with_capacity(conns);
    let mut at = 0usize;
    for t in 0..conns {
        let len = per + usize::from(t < extra);
        slices.push(specs[at..at + len].to_vec());
        at += len;
    }

    let drivers = conns.min(8);
    let barrier = Arc::new(std::sync::Barrier::new(drivers + 1));
    let mut handles = Vec::with_capacity(drivers);
    for d in 0..drivers {
        let mine: Vec<Vec<JobSpec>> = slices.iter().skip(d).step_by(drivers).cloned().collect();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            // A transient connect failure (listen backlog, fd pressure)
            // must not kill a driver thread — the barrier would deadlock
            // the whole sweep. Retry briefly before giving up.
            let connect = |t: usize| {
                let mut last = None;
                for attempt in 0..4 {
                    match TransportClient::connect(addr) {
                        Ok(client) => return client,
                        Err(err) => {
                            last = Some(err);
                            std::thread::sleep(Duration::from_millis(50 << attempt));
                        }
                    }
                }
                panic!("tenant {t} connect failed after retries: {:?}", last.unwrap());
            };
            let mut clients: Vec<TransportClient> = (0..mine.len()).map(connect).collect();
            barrier.wait(); // every driver's tenants are connected
            barrier.wait(); // main has sampled the thread count
            let mut results = Vec::new();
            let mut split = LatencySplit::new();
            for (client, batch) in clients.iter_mut().zip(&mine) {
                client.run_batch_split(batch, &mut results, &mut split).expect("tenant batch");
            }
            let busy = clients.iter().map(TransportClient::busy_retries).sum::<u64>();
            (results, split, busy)
        }));
    }
    barrier.wait(); // connect phase done from the drivers' side...
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.live_connections() < conns && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5)); // ...let the loops adopt
    }
    let live = server.live_connections();
    assert_eq!(live, conns, "only {live}/{conns} tenants came up");
    let peak_threads = thread_count().unwrap_or(0);
    let started = Instant::now();
    barrier.wait(); // release the serve phase
    let mut merged: Vec<JobResult> = Vec::with_capacity(total_jobs);
    let mut split = LatencySplit::new();
    let mut busy_retries = 0u64;
    for handle in handles {
        let (results, driver_split, busy) = handle.join().expect("driver panicked");
        merged.extend(results);
        split.queue.merge(&driver_split.queue);
        split.service.merge(&driver_split.service);
        split.wire.merge(&driver_split.wire);
        busy_retries += busy;
    }
    let elapsed = started.elapsed().as_secs_f64();
    // Read the readiness counters before `stop` tears the loops down:
    // the tick/touched-fd ratio is the backend-compare evidence.
    let snap = server.metrics().snapshot();
    let ran_backend = server.backend().name();
    server.stop();
    Arc::try_unwrap(engine).ok().expect("server released the engine").shutdown();

    merged.sort_unstable_by_key(|r| r.id);
    let fingerprints_match = batch_fingerprint(&merged) == want;
    // O(event loops), never O(connections): the loops, the accept
    // thread, the engine's workers, the sweep's own drivers, and a fixed
    // allowance for the runtime (main thread, telemetry, allocator...).
    let thread_bound = event_loops + 1 + workers + drivers + 16;
    let threads_bounded = peak_threads > 0 && peak_threads <= thread_bound;
    ConnectionTier {
        requested,
        connections: conns,
        backend: ran_backend,
        total_jobs,
        jobs_per_sec: total_jobs as f64 / elapsed,
        fingerprints_match,
        peak_threads,
        thread_bound,
        threads_bounded,
        busy_retries,
        queue_p95: split.queue.quantile_micros(0.95),
        service_p95: split.service.quantile_micros(0.95),
        wire_p95: split.wire.quantile_micros(0.95),
        ticks: snap.get(Metric::TransportTicks),
        ready_fds: snap.get(Metric::TransportReadyFds),
        writev_calls: snap.get(Metric::TransportWritevCalls),
        partial_writes: snap.get(Metric::TransportPartialWrites),
        fd_limit,
    }
}

/// One node's view of a cluster pass (warm-pass cache delta).
struct NodeReport {
    id: u64,
    jobs_completed: u64,
    warm_hits: u64,
    warm_accesses: u64,
}

impl NodeReport {
    /// Between-passes delta: cold stats subtracted from final stats.
    fn from_delta(id: u64, cold: &EngineStats, total: &EngineStats) -> Self {
        let warm_hits = total.cache_hits - cold.cache_hits;
        let warm_misses = total.cache_misses - cold.cache_misses;
        Self {
            id,
            jobs_completed: total.jobs_completed,
            warm_hits,
            warm_accesses: warm_hits + warm_misses,
        }
    }

    /// Warm-pass hit rate; an idle node (no accesses) is vacuously warm.
    fn warm_hit_rate(&self) -> f64 {
        if self.warm_accesses == 0 {
            1.0
        } else {
            self.warm_hits as f64 / self.warm_accesses as f64
        }
    }
}

/// One measured cluster topology (cold pass, then timed warm pass).
struct ClusterPass {
    label: &'static str,
    warm_jobs_per_sec: f64,
    fingerprint: u64,
    busy_retries: u64,
    min_warm_hit_rate: f64,
    queue_p95: u64,
    service_p95: u64,
    wire_p95: u64,
    nodes: Vec<NodeReport>,
}

impl ClusterPass {
    fn build(
        label: &'static str,
        warm_jobs_per_sec: f64,
        fingerprint: u64,
        busy_retries: u64,
        split: &LatencySplit,
        nodes: Vec<NodeReport>,
    ) -> Self {
        let min_warm_hit_rate = nodes
            .iter()
            .filter(|n| n.warm_accesses > 0)
            .map(NodeReport::warm_hit_rate)
            .fold(1.0f64, f64::min);
        Self {
            label,
            warm_jobs_per_sec,
            fingerprint,
            busy_retries,
            min_warm_hit_rate,
            queue_p95: split.queue.quantile_micros(0.95),
            service_p95: split.service.quantile_micros(0.95),
            wire_p95: split.wire.quantile_micros(0.95),
            nodes,
        }
    }
}

fn node_config(workers: usize, queue: usize, cache: usize) -> EngineConfig {
    EngineConfig {
        workers,
        queue_capacity: queue,
        results_capacity: queue,
        design_cache_capacity: cache,
        batch_window: 1,
    }
}

/// Per-node in-flight window for the router (pipelining depth).
const ROUTER_WINDOW: usize = 16;

/// Replay the batch through a router over `nodes` in-process engines:
/// cold pass, then a timed warm pass with the router-observed latency
/// split. Per-node warm hit rates come from the between-pass cache
/// delta.
fn run_cluster_local(
    label: &'static str,
    nodes: usize,
    workers_per_node: usize,
    queue: usize,
    cache: usize,
    specs: &[JobSpec],
) -> ClusterPass {
    let handles: Vec<(u64, Box<dyn NodeHandle>)> = (0..nodes as u64)
        .map(|id| {
            let node = LocalNode::start(node_config(workers_per_node, queue, cache));
            (id, Box::new(node) as Box<dyn NodeHandle>)
        })
        .collect();
    let mut router = Router::new(handles, ROUTER_WINDOW);
    let mut results = Vec::with_capacity(specs.len());
    router.run_batch(specs, &mut results);
    let fingerprint = batch_fingerprint(&results);
    let cold: Vec<(u64, EngineStats)> = router
        .stats()
        .nodes
        .into_iter()
        .map(|(id, s)| (id, s.expect("local nodes report stats")))
        .collect();

    results.clear();
    let mut split = LatencySplit::new();
    let started = Instant::now();
    router.run_batch_split(specs, &mut results, &mut split);
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(batch_fingerprint(&results), fingerprint, "{label}: warm pass diverged");

    let busy_retries = router.busy_retries();
    let final_stats = router.shutdown();
    let node_reports: Vec<NodeReport> = final_stats
        .nodes
        .iter()
        .zip(&cold)
        .map(|((id, total), (_, cold))| {
            NodeReport::from_delta(*id, cold, total.as_ref().expect("local nodes report stats"))
        })
        .collect();
    ClusterPass::build(
        label,
        specs.len() as f64 / elapsed,
        fingerprint,
        busy_retries,
        &split,
        node_reports,
    )
}

/// Replay the batch through a router over `nodes` TCP loopback nodes:
/// each node is an engine behind its own transport server, reached
/// through a [`RemoteNode`] connection — the full wire path per shard.
/// The engines stay in our hands, so per-node cache telemetry is read
/// directly even though the router only sees sockets.
fn run_cluster_tcp(
    nodes: usize,
    workers_per_node: usize,
    queue: usize,
    cache: usize,
    specs: &[JobSpec],
) -> ClusterPass {
    let engines: Vec<Arc<Engine>> = (0..nodes)
        .map(|_| Arc::new(Engine::start(node_config(workers_per_node, queue, cache))))
        .collect();
    let servers: Vec<TransportServer> = engines
        .iter()
        .map(|engine| {
            TransportServer::bind(Arc::clone(engine), "127.0.0.1:0", TransportConfig::default())
                .expect("bind loopback transport")
        })
        .collect();
    let handles: Vec<(u64, Box<dyn NodeHandle>)> = servers
        .iter()
        .enumerate()
        .map(|(id, server)| {
            let node = RemoteNode::connect(server.local_addr()).expect("connect loopback node");
            (id as u64, Box::new(node) as Box<dyn NodeHandle>)
        })
        .collect();
    let mut router = Router::new(handles, ROUTER_WINDOW);
    let mut results = Vec::with_capacity(specs.len());
    router.run_batch(specs, &mut results);
    let fingerprint = batch_fingerprint(&results);
    let cold: Vec<EngineStats> = engines.iter().map(|e| e.stats()).collect();

    results.clear();
    let mut split = LatencySplit::new();
    let started = Instant::now();
    router.run_batch_split(specs, &mut results, &mut split);
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(batch_fingerprint(&results), fingerprint, "tcp cluster: warm pass diverged");

    let busy_retries = router.busy_retries();
    router.shutdown();
    let node_reports: Vec<NodeReport> = engines
        .iter()
        .zip(&cold)
        .enumerate()
        .map(|(id, (engine, cold))| NodeReport::from_delta(id as u64, cold, &engine.stats()))
        .collect();
    for server in servers {
        server.stop();
    }
    for engine in engines {
        Arc::try_unwrap(engine).ok().expect("transport released the engine").shutdown();
    }
    ClusterPass::build(
        "tcp",
        specs.len() as f64 / elapsed,
        fingerprint,
        busy_retries,
        &split,
        node_reports,
    )
}

/// What the kill-node failover sweep measured.
struct FailoverSweep {
    nodes: usize,
    killed_node: u64,
    kill_at: usize,
    baseline_jobs_per_sec: f64,
    pre_kill_jobs_per_sec: f64,
    post_kill_jobs_per_sec: f64,
    recovery_micros: u64,
    survivor_cold_misses_after_kill: u64,
    failed_jobs: usize,
    fingerprints_match: bool,
}

/// Sum of design-cache misses over every live node except `victim` —
/// the survivors' cold-miss count. `DesignCache::prewarm` is telemetry-
/// silent, so a zero delta across the kill is direct evidence that the
/// HRW top-2 standby prewarm (not luck) kept the survivors warm.
fn survivor_misses(router: &Router, victim: u64) -> u64 {
    router
        .stats()
        .nodes
        .iter()
        .filter(|(id, _)| *id != victim)
        .filter_map(|(_, s)| s.as_ref().map(|s| s.cache_misses))
        .sum()
}

/// Degraded-mode sweep: a fault-free baseline pass over `nodes` local
/// engines, then the same stream on a chaos-wrapped cluster whose
/// victim node — the owner of the first spec's key — is killed after
/// half the completions have arrived. Completions are timestamped to
/// split throughput into pre/post-kill and to measure the recovery gap
/// (kill → next completion surfaced).
fn run_failover_sweep(
    nodes: usize,
    workers_per_node: usize,
    queue: usize,
    cache: usize,
    specs: &[JobSpec],
) -> FailoverSweep {
    assert!(nodes >= 2, "failover needs a survivor");
    assert!(specs.len() >= 2, "failover needs jobs on both sides of the kill");

    // Fault-free baseline on an identical topology: cold pass to warm
    // the caches, then a timed warm pass for the reference fingerprint
    // and throughput.
    let (baseline_fp, baseline_jps) = {
        let handles: Vec<(u64, Box<dyn NodeHandle>)> = (0..nodes as u64)
            .map(|id| {
                let node = LocalNode::start(node_config(workers_per_node, queue, cache));
                (id, Box::new(node) as Box<dyn NodeHandle>)
            })
            .collect();
        let mut router = Router::new(handles, ROUTER_WINDOW);
        let mut results = Vec::with_capacity(specs.len());
        router.run_batch(specs, &mut results);
        let fp = batch_fingerprint(&results);
        results.clear();
        let started = Instant::now();
        router.run_batch(specs, &mut results);
        let elapsed = started.elapsed().as_secs_f64();
        assert_eq!(batch_fingerprint(&results), fp, "failover baseline warm pass diverged");
        router.shutdown();
        (fp, specs.len() as f64 / elapsed)
    };

    // The kill cluster: every node behind a quiet chaos wrapper, so the
    // only fault in the run is the one explicit mid-stream kill.
    let mut controllers = Vec::with_capacity(nodes);
    let handles: Vec<(u64, Box<dyn NodeHandle>)> = (0..nodes as u64)
        .map(|id| {
            let node = LocalNode::start(node_config(workers_per_node, queue, cache));
            let (wrapped, controller) = chaos::wrap(Box::new(node), ChaosConfig::quiet(id));
            controllers.push(controller);
            (id, Box::new(wrapped) as Box<dyn NodeHandle>)
        })
        .collect();
    let mut router = Router::new(handles, ROUTER_WINDOW);
    // Cold pass: warms every owner's cache — and, through the router's
    // standby prewarm, every key's HRW runner-up.
    let mut results = Vec::with_capacity(specs.len());
    router.run_batch(specs, &mut results);
    assert_eq!(
        batch_fingerprint(&results),
        baseline_fp,
        "chaos-wrapped cold pass diverged before any fault"
    );
    let victim = router.membership().owner(&specs[0].design_key());

    // The measured stream: submit everything, timestamp completions,
    // pull the kill switch once half of them have surfaced.
    results.clear();
    let kill_at = (specs.len() / 2).max(1);
    let started = Instant::now();
    for &spec in specs {
        router.submit(spec);
    }
    let mut killed_at: Option<Instant> = None;
    let mut first_after_kill: Option<Instant> = None;
    let mut misses_at_kill = 0u64;
    loop {
        if let Some(result) = router.poll() {
            results.push(result);
            if killed_at.is_some() && first_after_kill.is_none() {
                first_after_kill = Some(Instant::now());
            }
            if results.len() == kill_at && killed_at.is_none() {
                misses_at_kill = survivor_misses(&router, victim);
                controllers[victim as usize].kill();
                killed_at = Some(Instant::now());
            }
        } else if router.outstanding() == 0 {
            break;
        } else {
            std::thread::park_timeout(Duration::from_micros(50));
        }
    }
    let finished = Instant::now();
    let killed_at = killed_at.expect("the kill point is inside the stream");

    let survivor_cold_misses = survivor_misses(&router, victim) - misses_at_kill;
    let failed_jobs = router.failed().len();
    // Poll order is completion order; fingerprints compare in id order.
    results.sort_by_key(|r| r.id);
    let fingerprints_match =
        results.len() == specs.len() && batch_fingerprint(&results) == baseline_fp;
    router.shutdown();

    let post_kill_jobs = results.len().saturating_sub(kill_at);
    FailoverSweep {
        nodes,
        killed_node: victim,
        kill_at,
        baseline_jobs_per_sec: baseline_jps,
        pre_kill_jobs_per_sec: kill_at as f64
            / killed_at.duration_since(started).as_secs_f64().max(f64::EPSILON),
        post_kill_jobs_per_sec: post_kill_jobs as f64
            / finished.duration_since(killed_at).as_secs_f64().max(f64::EPSILON),
        recovery_micros: first_after_kill
            .map_or(0, |t| t.duration_since(killed_at).as_micros() as u64),
        survivor_cold_misses_after_kill: survivor_cold_misses,
        failed_jobs,
        fingerprints_match,
    }
}

/// Two batch passes (cold cache, then warm) at a fixed worker count and
/// design-affinity batch window.
fn run_closed_loop(
    workers: usize,
    queue: usize,
    cache: usize,
    batch_window: usize,
    specs: &[JobSpec],
) -> Pass {
    let engine = Engine::start(EngineConfig {
        workers,
        queue_capacity: queue,
        results_capacity: queue,
        design_cache_capacity: cache,
        batch_window,
    });
    let mut results = Vec::with_capacity(specs.len());

    let cold_start = Instant::now();
    engine.run_batch(specs, &mut results);
    let cold = cold_start.elapsed().as_secs_f64();
    let fingerprint = batch_fingerprint(&results);
    let cache_misses = engine.stats().cache_misses;

    results.clear();
    let warm_start = Instant::now();
    engine.run_batch(specs, &mut results);
    let warm = warm_start.elapsed().as_secs_f64();
    assert_eq!(
        batch_fingerprint(&results),
        fingerprint,
        "cold and warm passes disagree at {workers} workers"
    );

    let exact = results.iter().filter(|r| r.exact).count() as f64 / results.len() as f64;
    engine.shutdown();
    Pass {
        workers,
        batch_window,
        cold_jobs_per_sec: specs.len() as f64 / cold,
        warm_jobs_per_sec: specs.len() as f64 / warm,
        exact_rate: exact,
        cache_misses,
        fingerprint,
    }
}

struct OpenLoopReport {
    served: u64,
    shed: u64,
    p50: u64,
    p95: u64,
    p99: u64,
}

/// Open-loop replay: submit on the Poisson schedule, never wait for
/// completions; full queue ⇒ the job is shed (load-shedding telemetry).
fn run_open_loop(
    workers: usize,
    queue: usize,
    cache: usize,
    profile: &LoadProfile,
    jobs: usize,
    rate: f64,
    seed: u64,
) -> OpenLoopReport {
    let engine = Engine::start(EngineConfig {
        workers,
        queue_capacity: queue,
        results_capacity: jobs.max(1),
        design_cache_capacity: cache,
        batch_window: 1,
    });
    let arrivals = poisson_arrivals(rate, jobs, &SeedSequence::new(seed ^ 0xA11));
    // Pregenerate the specs so spec-derivation cost never skews the
    // replayed arrival schedule.
    let specs = profile.specs(jobs);
    let started = Instant::now();
    let mut shed = 0u64;
    for (&spec, &at) in specs.iter().zip(&arrivals) {
        let wait = at - started.elapsed().as_secs_f64();
        if wait > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(wait));
        }
        if engine.try_submit(spec).is_err() {
            shed += 1;
        }
    }
    let mut leftovers = Vec::new();
    let stats = engine.shutdown_into(&mut leftovers);
    let (p50, p95, p99) = if stats.histogram.count() > 0 {
        (
            stats.histogram.quantile_micros(0.50),
            stats.histogram.quantile_micros(0.95),
            stats.histogram.quantile_micros(0.99),
        )
    } else {
        (0, 0, 0)
    };
    OpenLoopReport { served: stats.jobs_completed, shed, p50, p95, p99 }
}

/// Fingerprint of a batch: order-sensitive chaining over results, which
/// `run_batch` hands back sorted by id — so equal batches ⇔ equal values.
fn batch_fingerprint(results: &[JobResult]) -> u64 {
    let mut d = pooled_engine::job::Digest::new();
    for r in results {
        d.push(r.fingerprint());
    }
    d.finish()
}

fn parse_decoders(raw: &str) -> Vec<DecoderKind> {
    raw.split(',')
        .map(|name| {
            DecoderKind::from_name(name.trim())
                .unwrap_or_else(|| panic!("unknown decoder {name:?} (see DecoderKind::ALL)"))
        })
        .collect()
}
