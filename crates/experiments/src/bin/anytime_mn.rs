//! EXT-ANYTIME: certificate-driven early stopping on the paper's design.
//!
//! The design stays non-adaptive — only the *stopping time* adapts. For a
//! fixed worst-case cap `m_max = 1.5·m_MN(finite)`, the query stream is
//! released in `r` rounds; after each round the prefix is decoded, refined
//! and checked for the zero-residual certificate. More available rounds ⇒
//! earlier certificates ⇒ fewer queries consumed, at identical soundness.
//! `r = 1` is exactly the paper's fully-parallel design.

use pooled_adaptive::{anytime_mn, AnytimeConfig, CountOracle};
use pooled_core::refine::RefineConfig;
use pooled_core::Signal;
use pooled_experiments::{output_dir, write_artifacts, Scale, DEFAULT_SEED};
use pooled_io::csv::fmt_f64;
use pooled_io::{Args, GnuplotScript, Manifest};
use pooled_rng::SeedSequence;
use pooled_stats::replicate::run_trials;
use pooled_theory::thresholds::{k_of, m_information_theoretic, m_mn_finite};

const ROUND_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let scale = Scale::from_args(&args);
    let seed = args.get_u64("seed", DEFAULT_SEED);
    let trials = args.get_usize("trials", if scale == Scale::Full { 100 } else { 25 });
    let n = args.get_usize("n", if scale == Scale::Full { 10_000 } else { 1000 });
    let theta = args.get_f64("theta", 0.3);
    let k = k_of(n, theta);
    let m_max = (1.5 * m_mn_finite(n, theta)).ceil() as usize;

    let mut rows = Vec::new();
    for &r in &ROUND_COUNTS {
        let cfg =
            AnytimeConfig { m_round: m_max.div_ceil(r), m_max, refine: RefineConfig::default() };
        let master = SeedSequence::new(seed ^ ((r as u64) << 24));
        let outcomes = run_trials(&master, trials, |_, s| {
            let sigma = Signal::random(n, k, &mut s.child("signal", 0).rng());
            let mut oracle = CountOracle::new(&sigma);
            let res = anytime_mn(&mut oracle, k, &cfg, &s);
            (res.queries, res.certified, res.estimate == sigma, res.rounds)
        });
        let t = trials as f64;
        let mean_q = outcomes.iter().map(|o| o.0 as f64).sum::<f64>() / t;
        let certified = outcomes.iter().filter(|o| o.1).count() as f64 / t;
        let exact = outcomes.iter().filter(|o| o.2).count() as f64 / t;
        let mean_rounds = outcomes.iter().map(|o| o.3 as f64).sum::<f64>() / t;
        rows.push(vec![
            r.to_string(),
            cfg.m_round.to_string(),
            fmt_f64(mean_q),
            fmt_f64(mean_q / m_max as f64),
            fmt_f64(mean_rounds),
            fmt_f64(certified),
            fmt_f64(exact),
        ]);
        eprintln!(
            "anytime_mn: r={r}: mean {mean_q:.0}/{m_max} queries, certified {certified:.2}, \
             exact {exact:.2}"
        );
    }

    let dir = output_dir(&args);
    let manifest = Manifest::new(
        "anytime_mn",
        seed,
        scale.name(),
        serde_json::json!({
            "n": n, "theta": theta, "k": k, "trials": trials,
            "m_max": m_max, "m_it": m_information_theoretic(n, k),
            "rounds": ROUND_COUNTS,
        }),
    );
    let gp = GnuplotScript::new(
        &format!("EXT-ANYTIME — query consumption over round budget (n = {n}, θ = {theta})"),
        "available rounds r",
        "mean queries consumed / cap",
    )
    .logscale("x")
    .series("anytime_mn.csv", "1:4", "consumption fraction", "linespoints");
    let header = [
        "rounds_available",
        "m_per_round",
        "mean_queries",
        "consumption_fraction",
        "mean_rounds_used",
        "certified_rate",
        "exact_rate",
    ];
    let csv = write_artifacts(&dir, "anytime_mn", &header, &rows, &manifest, Some(&gp));
    println!("anytime_mn: wrote {}", csv.display());
}
