//! NOISE: robustness of the MN decoder under noisy query channels.
//!
//! The MN threshold proof leaves a score margin of order `(1−α)m/2`
//! (Corollary 6); this experiment measures how much of that margin survives
//! two realistic perturbations: symmetric integer jitter and one-entry
//! dilution (false-negative drop-out).

use pooled_core::metrics::{exact_recovery, overlap_fraction};
use pooled_core::mn::MnDecoder;
use pooled_core::noise::{execute_noisy, NoiseModel};
use pooled_core::refine::{refine, RefineConfig};
use pooled_core::signal::Signal;
use pooled_design::multigraph::RandomRegularDesign;
use pooled_experiments::{output_dir, write_artifacts, DEFAULT_SEED};
use pooled_io::csv::fmt_f64;
use pooled_io::{render_table, Args, Manifest};
use pooled_rng::SeedSequence;
use pooled_stats::replicate::run_trials;
use pooled_theory::thresholds::{k_of, m_mn_finite};

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let seed = args.get_u64("seed", DEFAULT_SEED);
    let n = args.get_usize("n", 1000);
    let theta = args.get_f64("theta", 0.3);
    let trials = args.get_usize("trials", 30);
    let factor = args.get_f64("m-factor", 1.5);
    let k = k_of(n, theta);
    let m = (factor * m_mn_finite(n, theta)).ceil() as usize;

    let mut models: Vec<(String, NoiseModel)> = vec![("exact".into(), NoiseModel::Exact)];
    for lambda in [1u32, 2, 4, 8, 16] {
        models.push((format!("jitter_l{lambda}"), NoiseModel::SymmetricBinomial { lambda }));
    }
    for p in [0.01, 0.02, 0.05, 0.1] {
        models.push((format!("dilution_p{p}"), NoiseModel::Dilution { p }));
    }

    let master = SeedSequence::new(seed);
    let header = ["model", "m", "success_rate", "mean_overlap", "refined_success"];
    let mut rows = Vec::new();
    for (mi, (name, model)) in models.iter().enumerate() {
        let node = master.child("model", mi as u64);
        let outs = run_trials(&node, trials, |_, seeds| {
            let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
            let design = RandomRegularDesign::sample(n, m, &seeds.child("design", 0));
            let y = execute_noisy(&design, &sigma, *model, &seeds.child("noise", 0));
            let out = MnDecoder::new(k).decode_design(&design, &y);
            // Refinement under noise: minimizes ‖y − ŷ‖₁ even when no
            // consistent vector exists (noisy y), acting as an ℓ1 denoiser.
            let refined_exact = match &design {
                RandomRegularDesign::Csr(csr) => {
                    let r = refine(csr, &y, &out.scores, &out.estimate, &RefineConfig::default());
                    exact_recovery(&sigma, &r.estimate)
                }
                _ => exact_recovery(&sigma, &out.estimate),
            };
            (
                exact_recovery(&sigma, &out.estimate),
                overlap_fraction(&sigma, &out.estimate),
                refined_exact,
            )
        });
        let success = outs.iter().filter(|(e, _, _)| *e).count() as f64 / trials as f64;
        let overlap = outs.iter().map(|(_, o, _)| o).sum::<f64>() / trials as f64;
        let refined = outs.iter().filter(|(_, _, r)| *r).count() as f64 / trials as f64;
        rows.push(vec![
            name.clone(),
            m.to_string(),
            fmt_f64(success),
            fmt_f64(overlap),
            fmt_f64(refined),
        ]);
    }
    println!("Noise robustness at n={n}, θ={theta} (k={k}), m={m} ({factor}×m_MN_finite):");
    println!("{}", render_table(&header, &rows));

    let dir = output_dir(&args);
    let manifest = Manifest::new(
        "noise_robustness",
        seed,
        "default",
        serde_json::json!({"n": n, "theta": theta, "m": m, "trials": trials,
                           "m_factor": factor}),
    );
    let csv = write_artifacts(&dir, "noise_robustness", &header, &rows, &manifest, None);
    println!("noise_robustness: wrote {}", csv.display());
}
