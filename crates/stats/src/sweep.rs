//! Success-rate and overlap sweeps over the query count (Figs. 3–4).
//!
//! For each `m` on a grid, run `trials` seeded MN reconstructions and record
//! the empirical success rate (exact recovery), its Wilson interval, and
//! the mean overlap. One [`SweepRow`] per grid point is exactly one plotted
//! point of Fig. 3 (success) and Fig. 4 (overlap).

use pooled_rng::SeedSequence;

use crate::replicate::run_mn_trials_batched;
use crate::summary::Summary;
use crate::wilson::wilson_interval;

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Signal length.
    pub n: usize,
    /// Signal weight.
    pub k: usize,
    /// Query counts to evaluate.
    pub m_grid: Vec<usize>,
    /// Independent trials per grid point (the paper uses 100).
    pub trials: usize,
    /// Master seed.
    pub master_seed: u64,
    /// Design-major batch width: how many trials share one sampled design
    /// (and therefore one design traversal, via
    /// [`crate::replicate::run_mn_trials_batched`]). `1` reproduces the
    /// classic fully-independent sweep bit for bit; larger batches trade
    /// a little sampling independence (signals stay independent; designs
    /// are shared within a batch) for a large cut in memory traffic. The
    /// success estimate stays unbiased, but [`SweepRow::success_ci`] is
    /// computed under independence and narrows optimistically as `batch`
    /// grows.
    pub batch: usize,
}

/// One grid point of a sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepRow {
    /// Query count.
    pub m: usize,
    /// Fraction of trials with exact recovery.
    pub success_rate: f64,
    /// 95% Wilson interval for the success rate, computed as if all
    /// trials were independent. With [`SweepConfig::batch`] > 1 trials
    /// inside a batch share a design and are positively correlated, so
    /// the interval under-covers (effective sample size shrinks toward
    /// `trials / batch` where design randomness dominates) — treat it as
    /// a lower bound on the uncertainty in batched sweeps.
    pub success_ci: (f64, f64),
    /// Mean overlap across trials.
    pub mean_overlap: f64,
    /// Std-dev of the overlap.
    pub overlap_stddev: f64,
    /// Trials evaluated.
    pub trials: usize,
}

/// Run the MN sweep. Trials are parallel; grid points sequential (each grid
/// point already saturates the pool).
pub fn run_mn_sweep(cfg: &SweepConfig) -> Vec<SweepRow> {
    assert!(cfg.trials > 0, "sweep needs at least one trial");
    assert!(cfg.k <= cfg.n, "k must not exceed n");
    assert!(cfg.batch > 0, "batch must be at least 1");
    let master = SeedSequence::new(cfg.master_seed);
    cfg.m_grid
        .iter()
        .map(|&m| {
            let node = master.child("m", m as u64);
            let outcomes = run_mn_trials_batched(&node, cfg.trials, cfg.batch, cfg.n, cfg.k, m);
            let successes = outcomes.iter().filter(|o| o.exact).count() as u64;
            let mut overlap = Summary::new();
            for o in &outcomes {
                overlap.push(o.overlap);
            }
            SweepRow {
                m,
                success_rate: successes as f64 / cfg.trials as f64,
                success_ci: wilson_interval(successes, cfg.trials as u64, 1.96),
                mean_overlap: overlap.mean(),
                overlap_stddev: overlap.stddev(),
                trials: cfg.trials,
            }
        })
        .collect()
}

/// Evenly spaced `points` query counts from `lo` to `hi` inclusive.
pub fn linear_grid(lo: usize, hi: usize, points: usize) -> Vec<usize> {
    assert!(points >= 2 && hi > lo, "need points ≥ 2 and hi > lo");
    (0..points).map(|i| lo + (hi - lo) * i / (points - 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_theory::thresholds::{k_of, m_mn_finite};

    #[test]
    fn grid_endpoints_and_monotonicity() {
        let g = linear_grid(0, 1000, 6);
        assert_eq!(g.first(), Some(&0));
        assert_eq!(g.last(), Some(&1000));
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sweep_shows_phase_transition_shape() {
        // Small but real: n=300, θ≈0.3 ⇒ k=6 (k_of(300,0.3)=5..6 range).
        let n = 300;
        let k = k_of(n, 0.3);
        let m_hi = (1.8 * m_mn_finite(n, 0.3)).ceil() as usize;
        let cfg = SweepConfig {
            n,
            k,
            m_grid: vec![5, m_hi / 3, m_hi],
            trials: 20,
            master_seed: 1905,
            batch: 1,
        };
        let rows = run_mn_sweep(&cfg);
        assert_eq!(rows.len(), 3);
        // Monotone trend: the top of the grid beats the bottom.
        assert!(rows[2].success_rate >= rows[0].success_rate);
        assert!(rows[2].mean_overlap > rows[0].mean_overlap);
        // The generous point should essentially always succeed.
        assert!(rows[2].success_rate >= 0.85, "rate {}", rows[2].success_rate);
        // CI sanity.
        for r in &rows {
            assert!(r.success_ci.0 <= r.success_rate && r.success_rate <= r.success_ci.1);
        }
    }

    #[test]
    fn sweep_is_reproducible() {
        let cfg = SweepConfig {
            n: 200,
            k: 4,
            m_grid: vec![30, 60],
            trials: 10,
            master_seed: 7,
            batch: 1,
        };
        let a = run_mn_sweep(&cfg);
        let b = run_mn_sweep(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.success_rate, y.success_rate);
            assert_eq!(x.mean_overlap, y.mean_overlap);
        }
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let cfg = SweepConfig { n: 10, k: 2, m_grid: vec![5], trials: 0, master_seed: 0, batch: 1 };
        let _ = run_mn_sweep(&cfg);
    }
}
