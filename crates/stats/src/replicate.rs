//! Seeded parallel trial execution.
//!
//! Every trial gets its own [`SeedSequence`] derived from the master seed,
//! so the set of trial results is a pure function of `(master, trials)` no
//! matter how rayon schedules them.

use rayon::prelude::*;

use pooled_rng::SeedSequence;

/// Run `trials` independent replicates of `trial_fn` in parallel.
///
/// `trial_fn` receives `(trial_index, seed_node)` and must be deterministic
/// given those inputs. Results come back in trial order.
pub fn run_trials<T, F>(master: &SeedSequence, trials: usize, trial_fn: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, SeedSequence) -> T + Sync,
{
    (0..trials)
        .into_par_iter()
        .map(|t| trial_fn(t, master.child("trial", t as u64)))
        .collect()
}

/// One MN reconstruction trial outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialOutcome {
    /// Whether `σ̃ = σ` exactly.
    pub exact: bool,
    /// Fraction of one-entries recovered.
    pub overlap: f64,
}

/// The canonical single trial every figure shares: sample `σ` and
/// `G(n, m, Γ=n/2)`, execute, decode with MN, compare.
pub fn mn_trial(n: usize, k: usize, m: usize, seeds: &SeedSequence) -> TrialOutcome {
    use pooled_core::metrics::{exact_recovery, overlap_fraction};
    use pooled_core::mn::MnDecoder;
    use pooled_core::query::execute_queries;
    use pooled_core::signal::Signal;
    use pooled_design::multigraph::RandomRegularDesign;

    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    let design = RandomRegularDesign::sample(n, m, &seeds.child("design", 0));
    let y = execute_queries(&design, &sigma);
    let out = MnDecoder::new(k).decode_design(&design, &y);
    TrialOutcome {
        exact: exact_recovery(&sigma, &out.estimate),
        overlap: overlap_fraction(&sigma, &out.estimate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_order_stable_and_deterministic() {
        let master = SeedSequence::new(42);
        let a = run_trials(&master, 32, |t, seeds| (t, seeds.seed()));
        let b = run_trials(&master, 32, |t, seeds| (t, seeds.seed()));
        assert_eq!(a, b);
        for (i, (t, _)) in a.iter().enumerate() {
            assert_eq!(i, *t);
        }
    }

    #[test]
    fn trials_get_distinct_seeds() {
        let master = SeedSequence::new(1);
        let seeds = run_trials(&master, 64, |_, s| s.seed());
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn mn_trial_is_deterministic() {
        let seeds = SeedSequence::new(7).child("x", 3);
        let a = mn_trial(300, 5, 120, &seeds);
        let b = mn_trial(300, 5, 120, &seeds);
        assert_eq!(a, b);
    }

    #[test]
    fn mn_trial_overlap_bounds() {
        let seeds = SeedSequence::new(9);
        for t in 0..8 {
            let out = mn_trial(200, 4, 40, &seeds.child("t", t));
            assert!((0.0..=1.0).contains(&out.overlap));
            if out.exact {
                assert_eq!(out.overlap, 1.0);
            }
        }
    }

    #[test]
    fn zero_trials_is_empty() {
        let master = SeedSequence::new(3);
        let v: Vec<u8> = run_trials(&master, 0, |_, _| 1);
        assert!(v.is_empty());
    }
}
