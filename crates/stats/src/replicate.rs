//! Seeded parallel trial execution.
//!
//! Every trial gets its own [`SeedSequence`] derived from the master seed,
//! so the set of trial results is a pure function of `(master, trials)` no
//! matter how rayon schedules them.
//!
//! Three execution paths:
//!
//! * [`run_trials`] — stateless closure per trial (the original API).
//! * [`run_trials_with`] — per-worker workspace threaded through the
//!   trials of each chunk, so sweeps reuse decode buffers instead of
//!   allocating per replicate. [`mn_trial_with`] is the canonical trial
//!   on that path: it decodes through the fused single-pass kernel
//!   (`pooled_design::fused`) and an [`MnTrialWorkspace`].
//! * [`run_mn_trials_batched`] — design-major batching: trials are
//!   grouped into batches of `B` lanes that share one sampled design, so
//!   a single traversal of the design serves all `B` decodes
//!   (`pooled_design::batched`). With `B = 1` this is bit-identical to
//!   [`mn_trial_with`] trial by trial; with `B > 1` each batch draws one
//!   design and `B` independent signals — still an unbiased estimate of
//!   the success probability (which averages over design *and* signal),
//!   at a fraction of the memory traffic.

use rayon::prelude::*;

use pooled_core::batch::BatchWorkspace;
use pooled_core::workspace::MnWorkspace;
use pooled_rng::SeedSequence;

/// Run `trials` independent replicates of `trial_fn` in parallel.
///
/// `trial_fn` receives `(trial_index, seed_node)` and must be deterministic
/// given those inputs. Results come back in trial order.
pub fn run_trials<T, F>(master: &SeedSequence, trials: usize, trial_fn: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, SeedSequence) -> T + Sync,
{
    (0..trials).into_par_iter().map(|t| trial_fn(t, master.child("trial", t as u64))).collect()
}

/// Workspace variant of [`run_trials`]: each parallel worker builds one
/// workspace via `init` and threads it through all its trials, so
/// per-replicate buffers are reused. Results are independent of the worker
/// count (trials stay seeded by index).
pub fn run_trials_with<T, W, INIT, F>(
    master: &SeedSequence,
    trials: usize,
    init: INIT,
    trial_fn: F,
) -> Vec<T>
where
    T: Send,
    W: Send,
    INIT: Fn() -> W + Sync + Send,
    F: Fn(usize, SeedSequence, &mut W) -> T + Sync + Send,
{
    (0..trials)
        .into_par_iter()
        .map_init(init, |ws, t| trial_fn(t, master.child("trial", t as u64), ws))
        .collect()
}

/// One MN reconstruction trial outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialOutcome {
    /// Whether `σ̃ = σ` exactly.
    pub exact: bool,
    /// Fraction of one-entries recovered.
    pub overlap: f64,
}

/// Reusable buffers for [`mn_trial_with`]: the decode workspace plus the
/// trial-local query-result and dense-signal vectors.
#[derive(Default)]
pub struct MnTrialWorkspace {
    /// Decode workspace (Ψ/Δ*/scores/selection/estimate + fused arena).
    pub mn: MnWorkspace,
    /// Query results `y` (filled by the fused kernel).
    pub y: Vec<u64>,
    /// The signal as dense `u64` (the fused kernel's input layout).
    pub x: Vec<u64>,
}

impl MnTrialWorkspace {
    /// Empty workspace; buffers grow on the first trial.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The canonical single trial every figure shares: sample `σ` and
/// `G(n, m, Γ=n/2)`, execute, decode with MN, compare.
///
/// Thin wrapper over [`mn_trial_with`] on a fresh workspace.
pub fn mn_trial(n: usize, k: usize, m: usize, seeds: &SeedSequence) -> TrialOutcome {
    mn_trial_with(n, k, m, seeds, &mut MnTrialWorkspace::new())
}

/// Workspace MN trial: identical outcome to [`mn_trial`], but query
/// execution and the decoder's Ψ/Δ* accumulation run in **one fused
/// traversal** of the design (`pooled_design::fused`), and every decode
/// buffer is reused from `ws` — replicate loops stop allocating per trial.
pub fn mn_trial_with(
    n: usize,
    k: usize,
    m: usize,
    seeds: &SeedSequence,
    ws: &mut MnTrialWorkspace,
) -> TrialOutcome {
    use pooled_core::mn::MnDecoder;
    use pooled_core::signal::Signal;
    use pooled_design::fused::{decode_sums_fused, decode_sums_fused_stream};
    use pooled_design::multigraph::RandomRegularDesign;

    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    let design = RandomRegularDesign::sample(n, m, &seeds.child("design", 0));
    // Dense u64 signal for the fused kernel.
    ws.x.clear();
    ws.x.extend(sigma.dense().iter().map(|&b| b as u64));
    ws.y.clear();
    ws.y.resize(m, 0);
    ws.mn.prepare(n);
    {
        let (psi, dstar, arena) = ws.mn.sums_mut();
        match &design {
            RandomRegularDesign::Csr(csr) => {
                decode_sums_fused(csr, &ws.x, &mut ws.y, psi, dstar, arena);
            }
            RandomRegularDesign::Streaming(stream) => {
                decode_sums_fused_stream(stream, &ws.x, &mut ws.y, psi, dstar, arena);
            }
        }
    }
    MnDecoder::new(k).finish_with(n, &mut ws.mn);
    let estimate = ws.mn.estimate_dense();
    TrialOutcome {
        exact: pooled_core::metrics::exact_recovery_dense(&sigma, estimate),
        overlap: pooled_core::metrics::overlap_fraction_dense(&sigma, estimate),
    }
}

/// Reusable planes for one batched-trial worker: lane-major signals and
/// query results, the batch decode workspace, and the streaming-design
/// pool scratch. Allocation-free after warm-up at a stable
/// `(lanes, n, m)` shape (signal/design sampling still allocates, as in
/// the single-trial path).
#[derive(Default)]
pub struct MnBatchTrialWorkspace {
    /// Hidden signals, lane-major `lanes × n` dense 0/1.
    truths: Vec<u8>,
    /// Query results, lane-major `lanes × m`.
    ys: Vec<u64>,
    /// Ψ lanes + shared Δ* + per-lane finish scratch.
    bw: BatchWorkspace,
    /// Streaming-design pool scratch (one regeneration per query serves
    /// every lane).
    pool: Vec<(u32, u32)>,
    /// The lane signals, kept for scoring.
    sigmas: Vec<pooled_core::signal::Signal>,
}

impl MnBatchTrialWorkspace {
    /// Empty workspace; buffers grow on the first batch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One batch of MN trials sharing a design: the trial indices in
/// `trials`, decoded in **one** design traversal. The design is drawn
/// from the first trial's `"design"` substream (so a 1-lane batch is
/// bit-identical to [`mn_trial_with`] on that trial); each lane's signal
/// comes from its own trial's `"signal"` substream. Outcomes are appended
/// to `out` in lane order.
pub fn mn_trial_batch_with(
    n: usize,
    k: usize,
    m: usize,
    master: &SeedSequence,
    trials: std::ops::Range<usize>,
    ws: &mut MnBatchTrialWorkspace,
    out: &mut Vec<TrialOutcome>,
) {
    let (first, lanes) = (trials.start, trials.len());
    use pooled_core::metrics::{exact_recovery_dense, overlap_fraction_dense};
    use pooled_core::mn::MnDecoder;
    use pooled_core::signal::Signal;
    use pooled_design::batched::{decode_sums_fused_batch, decode_sums_fused_batch_stream};
    use pooled_design::multigraph::RandomRegularDesign;

    let design =
        RandomRegularDesign::sample(n, m, &master.child("trial", first as u64).child("design", 0));
    ws.truths.clear();
    ws.truths.resize(lanes * n, 0);
    ws.sigmas.clear();
    for b in 0..lanes {
        let seeds = master.child("trial", (first + b) as u64);
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        ws.truths[b * n..(b + 1) * n].copy_from_slice(sigma.dense());
        ws.sigmas.push(sigma);
    }
    ws.ys.clear();
    ws.ys.resize(lanes * m, 0);
    ws.bw.prepare(lanes, n);
    {
        let (psis, dstar) = ws.bw.sums_mut();
        match &design {
            RandomRegularDesign::Csr(csr) => {
                decode_sums_fused_batch(csr, &ws.truths, lanes, &mut ws.ys, psis, dstar);
            }
            RandomRegularDesign::Streaming(stream) => {
                decode_sums_fused_batch_stream(
                    stream,
                    &ws.truths,
                    lanes,
                    &mut ws.ys,
                    psis,
                    dstar,
                    &mut ws.pool,
                );
            }
        }
    }
    let decoder = MnDecoder::new(k);
    for (b, sigma) in ws.sigmas.iter().enumerate() {
        let lane_ws = ws.bw.finish_lane(&decoder, b);
        let estimate = lane_ws.estimate_dense();
        out.push(TrialOutcome {
            exact: exact_recovery_dense(sigma, estimate),
            overlap: overlap_fraction_dense(sigma, estimate),
        });
    }
}

/// Run `trials` MN trials in design-major batches of up to `batch` lanes,
/// parallel across batches. Results come back in trial order and are a
/// pure function of `(master, trials, batch, shape)`; `batch = 1`
/// reproduces [`mn_trial_with`] over [`run_trials_with`] bit for bit.
///
/// # Panics
/// Panics if `batch == 0`.
pub fn run_mn_trials_batched(
    master: &SeedSequence,
    trials: usize,
    batch: usize,
    n: usize,
    k: usize,
    m: usize,
) -> Vec<TrialOutcome> {
    assert!(batch > 0, "batch must be at least 1");
    let batches = trials.div_ceil(batch);
    (0..batches)
        .into_par_iter()
        .map_init(MnBatchTrialWorkspace::new, |ws, j| {
            let first = j * batch;
            let last = (first + batch).min(trials);
            let mut out = Vec::with_capacity(last - first);
            mn_trial_batch_with(n, k, m, master, first..last, ws, &mut out);
            out
        })
        .collect::<Vec<Vec<TrialOutcome>>>()
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_order_stable_and_deterministic() {
        let master = SeedSequence::new(42);
        let a = run_trials(&master, 32, |t, seeds| (t, seeds.seed()));
        let b = run_trials(&master, 32, |t, seeds| (t, seeds.seed()));
        assert_eq!(a, b);
        for (i, (t, _)) in a.iter().enumerate() {
            assert_eq!(i, *t);
        }
    }

    #[test]
    fn trials_get_distinct_seeds() {
        let master = SeedSequence::new(1);
        let seeds = run_trials(&master, 64, |_, s| s.seed());
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn mn_trial_is_deterministic() {
        let seeds = SeedSequence::new(7).child("x", 3);
        let a = mn_trial(300, 5, 120, &seeds);
        let b = mn_trial(300, 5, 120, &seeds);
        assert_eq!(a, b);
    }

    #[test]
    fn mn_trial_overlap_bounds() {
        let seeds = SeedSequence::new(9);
        for t in 0..8 {
            let out = mn_trial(200, 4, 40, &seeds.child("t", t));
            assert!((0.0..=1.0).contains(&out.overlap));
            if out.exact {
                assert_eq!(out.overlap, 1.0);
            }
        }
    }

    #[test]
    fn fused_trial_matches_classic_pipeline() {
        use pooled_core::metrics::{exact_recovery, overlap_fraction};
        use pooled_core::mn::MnDecoder;
        use pooled_core::query::execute_queries;
        use pooled_core::signal::Signal;
        use pooled_design::multigraph::RandomRegularDesign;

        let mut ws = MnTrialWorkspace::new();
        for seed in 0..6u64 {
            let (n, k, m) = (300, 5, 110);
            let seeds = SeedSequence::new(seed).child("t", 0);
            let got = mn_trial_with(n, k, m, &seeds, &mut ws);
            // Classic path: separate execute + decode.
            let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
            let design = RandomRegularDesign::sample(n, m, &seeds.child("design", 0));
            let y = execute_queries(&design, &sigma);
            let out = MnDecoder::new(k).decode_design(&design, &y);
            assert_eq!(got.exact, exact_recovery(&sigma, &out.estimate), "seed {seed}");
            assert_eq!(got.overlap, overlap_fraction(&sigma, &out.estimate), "seed {seed}");
        }
    }

    #[test]
    fn run_trials_with_matches_run_trials() {
        let master = SeedSequence::new(77);
        let stateless = run_trials(&master, 24, |t, seeds| (t, seeds.seed()));
        let stateful = run_trials_with(&master, 24, || 0u64, |t, seeds, _ws| (t, seeds.seed()));
        assert_eq!(stateless, stateful);
    }

    #[test]
    fn zero_trials_is_empty() {
        let master = SeedSequence::new(3);
        let v: Vec<u8> = run_trials(&master, 0, |_, _| 1);
        assert!(v.is_empty());
    }

    #[test]
    fn batched_trials_at_lane_one_match_the_single_trial_path() {
        // B = 1 must reproduce the legacy per-trial executor bit for bit
        // (same design substream, same signal substream, same kernel sums).
        let master = SeedSequence::new(55);
        let (n, k, m, trials) = (300, 5, 120, 17);
        let legacy = run_trials_with(&master, trials, MnTrialWorkspace::new, |_, seeds, ws| {
            mn_trial_with(n, k, m, &seeds, ws)
        });
        let batched = run_mn_trials_batched(&master, trials, 1, n, k, m);
        assert_eq!(legacy, batched);
    }

    #[test]
    fn batched_trials_are_deterministic_and_order_stable() {
        let master = SeedSequence::new(56);
        let (n, k, m, trials) = (250, 4, 100, 23);
        let a = run_mn_trials_batched(&master, trials, 8, n, k, m);
        let b = run_mn_trials_batched(&master, trials, 8, n, k, m);
        assert_eq!(a, b);
        assert_eq!(a.len(), trials);
        for o in &a {
            assert!((0.0..=1.0).contains(&o.overlap));
            if o.exact {
                assert_eq!(o.overlap, 1.0);
            }
        }
    }

    #[test]
    fn batched_trials_estimate_the_same_success_rate() {
        // Shared-design batches change which (design, signal) pairs are
        // drawn, not the distribution being estimated: at a comfortably
        // above-threshold m both executors should succeed essentially
        // always, and far below both should essentially always fail.
        let master = SeedSequence::new(57);
        let (n, k, trials) = (300, 5, 40);
        let rate = |outcomes: &[TrialOutcome]| {
            outcomes.iter().filter(|o| o.exact).count() as f64 / outcomes.len() as f64
        };
        let easy = run_mn_trials_batched(&master, trials, 8, n, k, 200);
        assert!(rate(&easy) >= 0.9, "easy rate {}", rate(&easy));
        let hard = run_mn_trials_batched(&master, trials, 8, n, k, 5);
        assert!(rate(&hard) <= 0.1, "hard rate {}", rate(&hard));
    }

    #[test]
    fn partial_final_batch_is_served() {
        let master = SeedSequence::new(58);
        // 10 trials at batch 4 → batches of 4, 4, 2.
        let out = run_mn_trials_batched(&master, 10, 4, 150, 3, 60);
        assert_eq!(out.len(), 10);
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn zero_batch_rejected() {
        let _ = run_mn_trials_batched(&SeedSequence::new(1), 4, 0, 10, 2, 5);
    }
}
