//! Streaming summaries (Welford) and quantiles.

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm —
/// numerically stable for long streams).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator (parallel reduction support).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Raw accumulator state `(count, mean, m2, min, max)`, for wire
    /// encodings that must transport the accumulator losslessly (the
    /// `m2` term cannot be recovered from the public `variance()` view
    /// without rounding).
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuild an accumulator from [`Self::raw_parts`] output (wire
    /// decode). Round-trips bit-exactly, including the empty state's
    /// `±∞` sentinels.
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Self { count, mean, m2, min, max }
    }
}

/// Exact quantile of a sample by sorting (linear interpolation between
/// order statistics).
///
/// # Panics
/// Panics if the sample is empty or `q ∉ [0,1]`.
pub fn quantile(sample: &[f64], q: f64) -> f64 {
    assert!(!sample.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    let mut v: Vec<f64> = sample.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Summary::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset: 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &data[..400] {
            left.push(x);
        }
        for &x in &data[400..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-6);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.mean(), a.variance(), a.count());
        a.merge(&Summary::new());
        assert_eq!((a.mean(), a.variance(), a.count()), before);
    }

    #[test]
    fn quantiles_interpolate() {
        let sample = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&sample, 0.0), 1.0);
        assert_eq!(quantile(&sample, 1.0), 4.0);
        assert_eq!(quantile(&sample, 0.5), 2.5);
        assert!((quantile(&sample, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn raw_parts_round_trip_is_bit_exact() {
        let mut s = Summary::new();
        for x in [3.25, -1.5, 0.125, 9.75, 2.0] {
            s.push(x);
        }
        let (count, mean, m2, min, max) = s.raw_parts();
        let back = Summary::from_raw_parts(count, mean, m2, min, max);
        assert_eq!(back.count(), s.count());
        assert_eq!(back.mean().to_bits(), s.mean().to_bits());
        assert_eq!(back.variance().to_bits(), s.variance().to_bits());
        assert_eq!(back.min().to_bits(), s.min().to_bits());
        assert_eq!(back.max().to_bits(), s.max().to_bits());

        // The empty state's ±∞ sentinels survive too, so a merge into
        // the rebuilt accumulator behaves exactly like a fresh one.
        let (count, mean, m2, min, max) = Summary::new().raw_parts();
        let empty = Summary::from_raw_parts(count, mean, m2, min, max);
        let mut merged = empty;
        merged.merge(&s);
        assert_eq!(merged.mean().to_bits(), s.mean().to_bits());
    }
}
