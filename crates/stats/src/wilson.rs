//! Wilson score intervals for empirical success probabilities.
//!
//! Preferred over the normal (Wald) interval because success rates in the
//! phase-transition region sit near 0 or 1 where Wald collapses.

/// Two-sided Wilson interval for `successes` out of `trials` at confidence
/// `z` standard deviations (z = 1.96 for 95%).
///
/// Returns `(lo, hi)` clamped to `[0, 1]`; `(0, 1)` when `trials == 0`.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(successes <= trials, "successes cannot exceed trials");
    assert!(z > 0.0, "z must be positive");
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_point_estimate() {
        for &(s, t) in &[(0u64, 10u64), (5, 10), (10, 10), (50, 100)] {
            let (lo, hi) = wilson_interval(s, t, 1.96);
            let p = s as f64 / t as f64;
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "({s},{t}): [{lo},{hi}]");
        }
    }

    #[test]
    fn zero_successes_lower_bound_is_zero() {
        let (lo, hi) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.1);
    }

    #[test]
    fn full_successes_upper_bound_is_one() {
        let (lo, hi) = wilson_interval(100, 100, 1.96);
        assert!(hi > 1.0 - 1e-12, "hi={hi}");
        assert!(lo > 0.9);
    }

    #[test]
    fn interval_shrinks_with_trials() {
        let (lo1, hi1) = wilson_interval(5, 10, 1.96);
        let (lo2, hi2) = wilson_interval(500, 1000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn no_trials_is_vacuous() {
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn more_successes_than_trials_rejected() {
        let _ = wilson_interval(2, 1, 1.96);
    }
}
