#![warn(missing_docs)]

//! Experiment statistics: the machinery that turns decoder runs into the
//! rows and series of the paper's figures.
//!
//! * [`summary`] — streaming moments (Welford) and quantiles.
//! * [`wilson`] — Wilson score intervals for empirical success rates.
//! * [`replicate`] — seeded parallel trial execution (one substream per
//!   trial, bit-reproducible across thread counts).
//! * [`sweep`] — success-rate / overlap sweeps over the query count `m`
//!   (Figs. 3 and 4).
//! * [`transition`] — per-trial minimal-`m` search (exponential ramp +
//!   bisection) for the phase-transition plot (Fig. 2).

pub mod replicate;
pub mod summary;
pub mod sweep;
pub mod transition;
pub mod wilson;

pub use replicate::{
    mn_trial, mn_trial_batch_with, mn_trial_with, run_mn_trials_batched, run_trials,
    run_trials_with, MnBatchTrialWorkspace, MnTrialWorkspace, TrialOutcome,
};
pub use summary::Summary;
pub use sweep::{run_mn_sweep, SweepConfig, SweepRow};
pub use transition::{find_transition, TransitionConfig, TransitionStats};
pub use wilson::wilson_interval;
