//! Per-trial phase-transition search (Fig. 2).
//!
//! Fig. 2 plots “the required number of queries until σ can be exactly
//! reconstructed”. Per trial we search the smallest `m` at which the MN
//! decoder succeeds *for that trial's seed path*: an exponential ramp
//! brackets the transition, then bisection narrows it. Success at a probed
//! `m` uses a design freshly sampled from the trial's `(m)`-indexed
//! substream, so probes are independent but reproducible.

use pooled_rng::SeedSequence;

use crate::replicate::{mn_trial_with, run_trials_with, MnTrialWorkspace};
use crate::summary::{quantile, Summary};

/// Transition-search parameters.
#[derive(Clone, Debug)]
pub struct TransitionConfig {
    /// Signal length.
    pub n: usize,
    /// Signal weight.
    pub k: usize,
    /// Trials (the paper uses 100).
    pub trials: usize,
    /// Initial probe for the ramp (e.g. the theory value / 4).
    pub m_start: usize,
    /// Hard cap on probed `m` (panic-free failure bound).
    pub m_cap: usize,
    /// Master seed.
    pub master_seed: u64,
}

/// Aggregated minimal-`m` statistics across trials.
#[derive(Clone, Debug)]
pub struct TransitionStats {
    /// Per-trial minimal `m` values (trial order).
    pub per_trial: Vec<usize>,
    /// Mean minimal `m`.
    pub mean: f64,
    /// Standard deviation.
    pub stddev: f64,
    /// Median.
    pub median: f64,
    /// 25%/75% quantiles.
    pub quartiles: (f64, f64),
    /// Number of trials that hit the cap without succeeding.
    pub capped: usize,
}

/// Probe one `(trial, m)` cell: fresh design + signal from the trial's
/// m-indexed substream.
fn probe(
    n: usize,
    k: usize,
    m: usize,
    trial_node: &SeedSequence,
    ws: &mut MnTrialWorkspace,
) -> bool {
    mn_trial_with(n, k, m, &trial_node.child("probe", m as u64), ws).exact
}

/// Minimal `m` for one trial by ramp + bisection. Returns `m_cap` when even
/// the cap fails.
fn minimal_m(
    cfg: &TransitionConfig,
    trial_node: &SeedSequence,
    ws: &mut MnTrialWorkspace,
) -> usize {
    let mut hi = cfg.m_start.max(2);
    // Exponential ramp until success (or cap).
    while !probe(cfg.n, cfg.k, hi, trial_node, ws) {
        if hi >= cfg.m_cap {
            return cfg.m_cap;
        }
        hi = (hi * 2).min(cfg.m_cap);
    }
    let mut lo = hi / 2; // last known failure scale (or below start)
    if lo < 1 {
        return hi;
    }
    // Bisect the bracket [lo (fail-ish), hi (success)].
    while hi - lo > 1 + hi / 64 {
        let mid = lo + (hi - lo) / 2;
        if probe(cfg.n, cfg.k, mid, trial_node, ws) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Run the full transition search across trials (parallel). Each worker
/// reuses one [`MnTrialWorkspace`] across all its trials' probes.
pub fn find_transition(cfg: &TransitionConfig) -> TransitionStats {
    assert!(cfg.trials > 0, "need at least one trial");
    assert!(cfg.m_start >= 1 && cfg.m_cap >= cfg.m_start, "bad m bracket");
    let master = SeedSequence::new(cfg.master_seed);
    let per_trial = run_trials_with(&master, cfg.trials, MnTrialWorkspace::new, |_, node, ws| {
        minimal_m(cfg, &node, ws)
    });
    let capped = per_trial.iter().filter(|&&m| m >= cfg.m_cap).count();
    let mut summary = Summary::new();
    let as_f64: Vec<f64> = per_trial.iter().map(|&m| m as f64).collect();
    for &x in &as_f64 {
        summary.push(x);
    }
    TransitionStats {
        mean: summary.mean(),
        stddev: summary.stddev(),
        median: quantile(&as_f64, 0.5),
        quartiles: (quantile(&as_f64, 0.25), quantile(&as_f64, 0.75)),
        per_trial,
        capped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_theory::thresholds::{k_of, m_mn_finite};

    #[test]
    fn transition_sits_near_finite_size_theory() {
        // n=300, θ=0.3: the measured transition should land within a factor
        // ~[0.3, 1.6] of the finite-size MN threshold (small-n regime).
        let n = 300;
        let theta = 0.3;
        let k = k_of(n, theta);
        let theory = m_mn_finite(n, theta);
        let cfg = TransitionConfig {
            n,
            k,
            trials: 12,
            m_start: (theory / 8.0).ceil() as usize,
            m_cap: (theory * 8.0).ceil() as usize,
            master_seed: 1905,
        };
        let stats = find_transition(&cfg);
        assert_eq!(stats.capped, 0, "some trials never succeeded");
        let ratio = stats.mean / theory;
        assert!((0.2..1.8).contains(&ratio), "mean {} vs theory {theory}", stats.mean);
        // Quartiles ordered.
        assert!(stats.quartiles.0 <= stats.median && stats.median <= stats.quartiles.1);
    }

    #[test]
    fn deterministic_given_master_seed() {
        let cfg =
            TransitionConfig { n: 200, k: 4, trials: 6, m_start: 8, m_cap: 2000, master_seed: 3 };
        let a = find_transition(&cfg);
        let b = find_transition(&cfg);
        assert_eq!(a.per_trial, b.per_trial);
    }

    #[test]
    fn cap_is_reported() {
        // Absurd cap of 2 queries for k=4 in n=200: every trial caps.
        let cfg =
            TransitionConfig { n: 200, k: 4, trials: 4, m_start: 1, m_cap: 2, master_seed: 5 };
        let stats = find_transition(&cfg);
        assert_eq!(stats.capped, 4);
        assert!(stats.per_trial.iter().all(|&m| m == 2));
    }

    #[test]
    fn larger_theta_needs_more_queries() {
        let mk_cfg = |theta: f64| {
            let n = 300;
            let k = k_of(n, theta);
            let theory = m_mn_finite(n, theta);
            TransitionConfig {
                n,
                k,
                trials: 8,
                m_start: (theory / 8.0).ceil().max(2.0) as usize,
                m_cap: (theory * 8.0).ceil() as usize,
                master_seed: 11,
            }
        };
        let low = find_transition(&mk_cfg(0.2));
        let high = find_transition(&mk_cfg(0.5));
        assert!(
            high.mean > low.mean,
            "θ=0.5 mean {} should exceed θ=0.2 mean {}",
            high.mean,
            low.mean
        );
    }
}
