//! Threshold query channels.
//!
//! A pool's *load* is its number of **distinct** one-entries (a specimen
//! present twice in a pool is still one infected specimen — the wet-lab
//! semantics; multi-edges are collapsed, unlike the additive channel where
//! they count with multiplicity). The plain channel reports `load ≥ T`; the
//! gapped channel reports `0` below `L`, `1` at or above `U`, and an
//! undetermined (seeded pseudo-random) bit inside `[L, U)`.

use rayon::prelude::*;

use pooled_core::Signal;
use pooled_design::PoolingDesign;
use pooled_rng::SeedSequence;

/// The plain threshold channel: `bit_q = 1{load_q ≥ T}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThresholdChannel {
    t: u64,
}

impl ThresholdChannel {
    /// Channel with threshold `t ≥ 1`.
    ///
    /// # Panics
    /// Panics if `t == 0` (every pool would be positive).
    pub fn new(t: u64) -> Self {
        assert!(t >= 1, "threshold must be at least 1");
        Self { t }
    }

    /// The threshold `T`.
    pub fn t(&self) -> u64 {
        self.t
    }

    /// Execute all queries in parallel, returning one bit per query.
    pub fn execute<D: PoolingDesign + ?Sized>(&self, design: &D, sigma: &Signal) -> Vec<u8> {
        let loads = pool_loads(design, sigma);
        loads.into_iter().map(|c| u8::from(c >= self.t)).collect()
    }
}

/// The gapped threshold channel: `0` if `load < L`, `1` if `load ≥ U`, and
/// a seeded pseudo-random bit for loads in the gap `[L, U)`.
#[derive(Clone, Debug)]
pub struct GappedChannel {
    l: u64,
    u: u64,
    seeds: SeedSequence,
}

impl GappedChannel {
    /// Channel answering `0` below `l` and `1` at or above `u`; loads in
    /// `[l, u)` produce a deterministic-given-seed coin flip per query.
    ///
    /// # Panics
    /// Panics if `l == 0` or `l > u`.
    pub fn new(l: u64, u: u64, seeds: SeedSequence) -> Self {
        assert!(l >= 1 && l <= u, "need 1 ≤ L ≤ U, got L={l} U={u}");
        Self { l, u, seeds }
    }

    /// Lower edge `L` (first undetermined load).
    pub fn l(&self) -> u64 {
        self.l
    }

    /// Upper edge `U` (first certainly-positive load).
    pub fn u(&self) -> u64 {
        self.u
    }

    /// Execute all queries in parallel, returning one bit per query.
    pub fn execute<D: PoolingDesign + ?Sized>(&self, design: &D, sigma: &Signal) -> Vec<u8> {
        let loads = pool_loads(design, sigma);
        loads
            .into_iter()
            .enumerate()
            .map(|(q, c)| {
                if c < self.l {
                    0
                } else if c >= self.u {
                    1
                } else {
                    // Undetermined band: seeded per-query coin.
                    (self.seeds.child("gap", q as u64).rng().next_u64() & 1) as u8
                }
            })
            .collect()
    }
}

/// Distinct one-entry loads of every pool, in parallel.
pub fn pool_loads<D: PoolingDesign + ?Sized>(design: &D, sigma: &Signal) -> Vec<u64> {
    assert_eq!(design.n(), sigma.n(), "design and signal disagree on n");
    let dense = sigma.dense();
    (0..design.m())
        .into_par_iter()
        .map(|q| {
            let mut load = 0u64;
            design.for_each_distinct(q, &mut |e, _| {
                load += dense[e] as u64;
            });
            load
        })
        .collect()
}

// `Rng64` must be in scope for `next_u64` on the child generator.
use pooled_rng::Rng64;

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_design::CsrDesign;

    fn fig1() -> (Signal, CsrDesign) {
        let sigma = Signal::from_dense(&[1, 1, 0, 0, 1, 0, 0]);
        let pools = vec![
            vec![0, 1, 3],
            vec![1, 1, 2], // entry 1 twice: load counts it once
            vec![0, 1, 4],
            vec![4, 5],
            vec![4, 6],
        ];
        (sigma, CsrDesign::from_pools(7, &pools))
    }

    #[test]
    fn loads_collapse_multi_edges() {
        let (sigma, d) = fig1();
        // Additive results were (2,2,3,1,1); distinct loads are (2,1,3,1,1).
        assert_eq!(pool_loads(&d, &sigma), vec![2, 1, 3, 1, 1]);
    }

    #[test]
    fn t1_is_the_or_channel() {
        let (sigma, d) = fig1();
        let bits = ThresholdChannel::new(1).execute(&d, &sigma);
        assert_eq!(bits, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn t2_and_t3_bits() {
        let (sigma, d) = fig1();
        assert_eq!(ThresholdChannel::new(2).execute(&d, &sigma), vec![1, 0, 1, 0, 0]);
        assert_eq!(ThresholdChannel::new(3).execute(&d, &sigma), vec![0, 0, 1, 0, 0]);
        assert_eq!(ThresholdChannel::new(4).execute(&d, &sigma), vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn positives_monotone_decreasing_in_t() {
        let seeds = SeedSequence::new(3);
        let d = CsrDesign::sample(300, 60, 80, &seeds);
        let sigma = Signal::random(300, 20, &mut seeds.child("sig", 0).rng());
        let mut last = u32::MAX;
        for t in 1..=6 {
            let pos: u32 =
                ThresholdChannel::new(t).execute(&d, &sigma).iter().map(|&b| b as u32).sum();
            assert!(pos <= last, "T={t}");
            last = pos;
        }
    }

    #[test]
    fn zero_signal_all_negative() {
        let seeds = SeedSequence::new(4);
        let d = CsrDesign::sample(100, 20, 50, &seeds);
        let sigma = Signal::from_support(100, vec![]);
        assert!(ThresholdChannel::new(1).execute(&d, &sigma).iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_threshold() {
        let _ = ThresholdChannel::new(0);
    }

    #[test]
    fn gapped_is_certain_outside_the_band() {
        let (sigma, d) = fig1();
        // Loads (2,1,3,1,1); L=2, U=3: query 2 (load 3) certain positive,
        // queries 1,3,4 (load 1) certain negative, query 0 (load 2) in-gap.
        let ch = GappedChannel::new(2, 3, SeedSequence::new(5));
        let bits = ch.execute(&d, &sigma);
        assert_eq!(bits[2], 1);
        assert_eq!(bits[1], 0);
        assert_eq!(bits[3], 0);
        assert_eq!(bits[4], 0);
    }

    #[test]
    fn gapped_bits_are_deterministic_given_seed() {
        let (sigma, d) = fig1();
        let a = GappedChannel::new(1, 3, SeedSequence::new(6)).execute(&d, &sigma);
        let b = GappedChannel::new(1, 3, SeedSequence::new(6)).execute(&d, &sigma);
        assert_eq!(a, b);
    }

    #[test]
    fn gapped_with_l_equals_u_is_plain_threshold() {
        let (sigma, d) = fig1();
        let plain = ThresholdChannel::new(2).execute(&d, &sigma);
        let gapped = GappedChannel::new(2, 2, SeedSequence::new(7)).execute(&d, &sigma);
        assert_eq!(plain, gapped);
    }

    #[test]
    #[should_panic(expected = "1 ≤ L ≤ U")]
    fn gapped_rejects_inverted_band() {
        let _ = GappedChannel::new(3, 2, SeedSequence::new(8));
    }
}
