//! The Threshold-MN decoder: the paper's Algorithm 1 transferred to the
//! one-bit threshold channel.
//!
//! For each entry `i` let `Ψ⁺_i` be the number of *positive* distinct
//! queries containing it and `Δ*_i` its distinct-query degree. Conditioned
//! on membership, a query is positive with probability `p1` for one-entries
//! and `p0 < p1` for zero-entries ([`pooled_theory::threshold_gt`]), so the
//! positive *fraction* `Ψ⁺_i/Δ*_i` concentrates on `p1` or `p0` and ranking
//! by it recovers the support once the degrees are large enough — the same
//! thresholding argument as Corollary 6 with separation `p1 − p0`.
//!
//! The degree-normalized comparison is evaluated in exact integers as
//! `score_i = m·Ψ⁺_i − P·Δ*_i` where `P = Σ_q bit_q` (subtracting the
//! global positive rate removes the common drift, and cross-multiplying by
//! `m` clears the fraction), so ranking has no float ties.

use pooled_core::Signal;
use pooled_design::matvec::scatter_distinct_u64;
use pooled_design::PoolingDesign;
use pooled_par::topk::top_k_indices;

/// Decoder configuration: the target support size.
#[derive(Clone, Copy, Debug)]
pub struct ThresholdMnDecoder {
    k: usize,
}

/// Decoder output: the estimate plus the per-entry evidence.
#[derive(Clone, Debug)]
pub struct ThresholdOutput {
    /// The reconstructed signal (weight exactly `min(k, n)`).
    pub estimate: Signal,
    /// Integer scores `m·Ψ⁺_i − P·Δ*_i`.
    pub scores: Vec<i64>,
    /// Positive-neighborhood counts `Ψ⁺_i`.
    pub psi_pos: Vec<u64>,
    /// Distinct-query degrees `Δ*_i`.
    pub delta_star: Vec<u64>,
}

impl ThresholdMnDecoder {
    /// Decoder for signals of known (or upper-bounded) weight `k`.
    pub fn new(k: usize) -> Self {
        Self { k }
    }

    /// The target weight `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Decode the threshold bits `bits` (one per query).
    ///
    /// # Panics
    /// Panics if `bits.len() != design.m()` or any bit exceeds 1.
    pub fn decode<D: PoolingDesign + ?Sized>(&self, design: &D, bits: &[u8]) -> ThresholdOutput {
        assert_eq!(bits.len(), design.m(), "bit vector length must equal m");
        let weights: Vec<u64> = bits
            .iter()
            .map(|&b| {
                assert!(b <= 1, "threshold bits must be 0 or 1, got {b}");
                b as u64
            })
            .collect();
        let (psi_pos, delta_star) = scatter_distinct_u64(design, &weights);
        let m = design.m() as i64;
        let positives: i64 = weights.iter().sum::<u64>() as i64;
        let scores: Vec<i64> = psi_pos
            .iter()
            .zip(&delta_star)
            .map(|(&p, &d)| m * p as i64 - positives * d as i64)
            .collect();
        let chosen = top_k_indices(&scores, self.k);
        ThresholdOutput {
            estimate: Signal::from_support(design.n(), chosen),
            scores,
            psi_pos,
            delta_star,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ThresholdChannel;
    use crate::design_choice::recommended_design;
    use pooled_rng::SeedSequence;
    use pooled_theory::threshold_gt::{m_threshold_estimate, recommended_gamma};

    fn run(n: usize, k: usize, t: u64, m: usize, seed: u64) -> (Signal, ThresholdOutput) {
        let seeds = SeedSequence::new(seed);
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let design = recommended_design(n, k, t, m, &seeds.child("design", 0));
        let bits = ThresholdChannel::new(t).execute(&design, &sigma);
        let out = ThresholdMnDecoder::new(k).decode(&design, &bits);
        (sigma, out)
    }

    #[test]
    fn recovers_at_t1_binary_group_testing() {
        let (n, k, t) = (1000usize, 8usize, 1u64);
        let (g, _) = recommended_gamma(n, k, t);
        let m = (1.2 * m_threshold_estimate(n, k, g, t)).ceil() as usize;
        let mut ok = 0;
        for seed in 0..10 {
            let (sigma, out) = run(n, k, t, m, seed);
            ok += (out.estimate == sigma) as u32;
        }
        assert!(ok >= 8, "only {ok}/10 at T=1, m={m}");
    }

    #[test]
    fn recovers_at_higher_thresholds() {
        for t in [2u64, 4] {
            let (n, k) = (800usize, 10usize);
            let (g, _) = recommended_gamma(n, k, t);
            let m = (1.2 * m_threshold_estimate(n, k, g, t)).ceil() as usize;
            let mut ok = 0;
            for seed in 0..8 {
                let (sigma, out) = run(n, k, t, m, 50 + seed);
                ok += (out.estimate == sigma) as u32;
            }
            assert!(ok >= 6, "only {ok}/8 at T={t}, m={m}");
        }
    }

    #[test]
    fn fails_with_too_few_queries() {
        let mut ok = 0;
        for seed in 0..8 {
            let (sigma, out) = run(1000, 8, 2, 12, 100 + seed);
            ok += (out.estimate == sigma) as u32;
        }
        assert!(ok <= 1, "{ok} lucky recoveries at m=12");
    }

    #[test]
    fn one_entries_outscore_zero_entries_on_average() {
        let (sigma, out) = run(600, 6, 2, 500, 7);
        let avg = |keep: &dyn Fn(usize) -> bool| {
            let v: Vec<f64> = (0..600).filter(|&i| keep(i)).map(|i| out.scores[i] as f64).collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let one = avg(&|i| sigma.is_one(i));
        let zero = avg(&|i| !sigma.is_one(i));
        assert!(one > zero, "one-avg {one} ≤ zero-avg {zero}");
    }

    #[test]
    fn estimate_weight_is_k() {
        let (_, out) = run(300, 5, 2, 200, 9);
        assert_eq!(out.estimate.weight(), 5);
    }

    #[test]
    fn all_negative_bits_give_nonpositive_scores() {
        let seeds = SeedSequence::new(10);
        let design = recommended_design(200, 4, 2, 50, &seeds);
        let bits = vec![0u8; 50];
        let out = ThresholdMnDecoder::new(4).decode(&design, &bits);
        assert!(out.scores.iter().all(|&s| s == 0), "P=0 makes every score 0");
        assert!(out.psi_pos.iter().all(|&p| p == 0));
    }

    #[test]
    #[should_panic(expected = "must be 0 or 1")]
    fn rejects_non_binary_bits() {
        let seeds = SeedSequence::new(11);
        let design = recommended_design(100, 4, 2, 20, &seeds);
        let _ = ThresholdMnDecoder::new(4).decode(&design, &[2u8; 20]);
    }

    #[test]
    #[should_panic(expected = "length must equal m")]
    fn rejects_wrong_length() {
        let seeds = SeedSequence::new(12);
        let design = recommended_design(100, 4, 2, 20, &seeds);
        let _ = ThresholdMnDecoder::new(4).decode(&design, &[0u8; 19]);
    }
}
