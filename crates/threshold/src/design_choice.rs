//! Pool-size selection for threshold queries.
//!
//! The additive channel is happiest with huge pools (every draw carries
//! information); a threshold channel saturates — once a pool's load is far
//! above or below `T` its bit is predictable and worthless. The efficiency
//! optimum `Γ*(n, k, T)` from [`pooled_theory::threshold_gt`] maximizes
//! `Γ·(p1−p0)²`, balancing per-query coverage against bit informativeness;
//! this module materializes it as a without-replacement design (threshold
//! semantics collapse multi-edges anyway, so with-replacement draws would
//! only shrink effective pools).

use pooled_design::noreplace::NoReplaceDesign;
use pooled_rng::SeedSequence;
use pooled_theory::threshold_gt::recommended_gamma;

/// Sample the recommended design for threshold-`t` queries: `m` pools of
/// the efficiency-optimal size `Γ*(n, k, t)`, each a uniform subset.
///
/// # Panics
/// Panics if `n == 0` or `k ∉ [1, n]`.
pub fn recommended_design(
    n: usize,
    k: usize,
    t: u64,
    m: usize,
    seeds: &SeedSequence,
) -> NoReplaceDesign {
    let (gamma, _) = recommended_gamma(n, k, t);
    NoReplaceDesign::sample(n, m, gamma, seeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_design::PoolingDesign;
    use pooled_theory::threshold_gt::separation;

    #[test]
    fn design_uses_the_recommended_pool_size() {
        let seeds = SeedSequence::new(1);
        let d = recommended_design(1000, 8, 2, 40, &seeds);
        let (want, _) = recommended_gamma(1000, 8, 2);
        assert_eq!(d.gamma(), want);
        assert_eq!(d.m(), 40);
    }

    #[test]
    fn recommended_size_has_healthy_separation_and_best_efficiency() {
        for t in [1u64, 2, 4] {
            let (g, s) = recommended_gamma(1000, 8, t);
            // High thresholds are intrinsically harder (T=4 needs half the
            // k=8 support in one pool), so the floor is modest.
            assert!(s > 0.1, "T={t}: separation {s} at Γ*={g}");
            // Γ* maximizes efficiency Γ·(p1−p0)², not raw separation: it
            // must beat both a tiny and an oversized pool on that measure.
            let eff = |gamma: usize| gamma as f64 * separation(1000, 8, gamma, t).powi(2);
            assert!(eff(g) >= eff(10), "T={t}: Γ*={g} loses to Γ=10");
            assert!(eff(g) >= eff(900), "T={t}: Γ*={g} loses to Γ=900");
        }
    }

    #[test]
    fn pools_are_distinct_subsets() {
        let seeds = SeedSequence::new(2);
        let d = recommended_design(500, 6, 3, 20, &seeds);
        for q in 0..d.m() {
            d.for_each_distinct(q, &mut |_, c| assert_eq!(c, 1));
        }
    }
}
