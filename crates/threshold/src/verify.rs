//! Consistency checking for threshold estimates.
//!
//! The additive model has a residual norm; the threshold model only has
//! agreement bits. An estimate is *consistent* when every pool's threshold
//! bit matches the bit its estimated load implies. Unlike the additive
//! case, consistency is weaker evidence here (each query only constrains
//! one bit), so the report also exposes the two error directions — pools
//! the estimate over-fills and pools it under-fills — which the tests use
//! to characterize *how* sub-threshold decoding fails.

use pooled_core::Signal;
use pooled_design::PoolingDesign;

use crate::channel::pool_loads;

/// Agreement between observed threshold bits and an estimate's implied bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Queries whose observed and implied bits agree.
    pub agreements: usize,
    /// Observed `1`, implied `0`: the estimate under-fills these pools.
    pub missed_positives: usize,
    /// Observed `0`, implied `1`: the estimate over-fills these pools.
    pub false_positives: usize,
}

impl ConsistencyReport {
    /// Whether every query agrees.
    pub fn is_consistent(&self) -> bool {
        self.missed_positives == 0 && self.false_positives == 0
    }

    /// Total queries covered by the report.
    pub fn total(&self) -> usize {
        self.agreements + self.missed_positives + self.false_positives
    }
}

/// Compare observed bits against the bits implied by `estimate` at
/// threshold `t`.
///
/// # Panics
/// Panics if `bits.len() != design.m()`.
pub fn consistency_report<D: PoolingDesign + ?Sized>(
    design: &D,
    bits: &[u8],
    estimate: &Signal,
    t: u64,
) -> ConsistencyReport {
    assert_eq!(bits.len(), design.m(), "bit vector length must equal m");
    let implied = pool_loads(design, estimate);
    let mut report = ConsistencyReport { agreements: 0, missed_positives: 0, false_positives: 0 };
    for (&observed, load) in bits.iter().zip(implied) {
        let implied_bit = u8::from(load >= t);
        match (observed, implied_bit) {
            (1, 0) => report.missed_positives += 1,
            (0, 1) => report.false_positives += 1,
            _ => report.agreements += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ThresholdChannel;
    use pooled_design::CsrDesign;
    use pooled_rng::SeedSequence;

    #[test]
    fn truth_is_always_consistent() {
        let seeds = SeedSequence::new(1);
        let d = CsrDesign::sample(200, 50, 60, &seeds);
        let sigma = Signal::random(200, 10, &mut seeds.child("sig", 0).rng());
        for t in [1u64, 2, 3] {
            let bits = ThresholdChannel::new(t).execute(&d, &sigma);
            let rep = consistency_report(&d, &bits, &sigma, t);
            assert!(rep.is_consistent(), "T={t}: {rep:?}");
            assert_eq!(rep.total(), 50);
        }
    }

    #[test]
    fn wrong_estimate_shows_both_error_directions() {
        let d = CsrDesign::from_pools(6, &[vec![0, 1], vec![2, 3], vec![4, 5]]);
        let sigma = Signal::from_support(6, vec![0, 1]);
        let bits = ThresholdChannel::new(1).execute(&d, &sigma); // (1,0,0)
                                                                 // Estimate puts the ones in pool 1 instead of pool 0.
        let wrong = Signal::from_support(6, vec![2, 3]);
        let rep = consistency_report(&d, &bits, &wrong, 1);
        assert_eq!(rep.missed_positives, 1); // pool 0 observed 1, implied 0
        assert_eq!(rep.false_positives, 1); // pool 1 observed 0, implied 1
        assert_eq!(rep.agreements, 1); // pool 2 agrees (both 0)
        assert!(!rep.is_consistent());
    }

    #[test]
    fn empty_design_is_trivially_consistent() {
        let d = CsrDesign::sample(10, 0, 5, &SeedSequence::new(2));
        let sigma = Signal::from_support(10, vec![1]);
        let rep = consistency_report(&d, &[], &sigma, 1);
        assert!(rep.is_consistent());
        assert_eq!(rep.total(), 0);
    }
}
