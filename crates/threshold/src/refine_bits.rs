//! Disagreement-guided local search for threshold estimates.
//!
//! The one-bit analogue of `pooled_core::refine`: starting from the
//! Threshold-MN estimate, greedily swap a weak in-support entry for a
//! strong out-of-support entry whenever the swap reduces the number of
//! queries whose observed bit disagrees with the bit implied by the
//! estimate's pool loads. Stops at zero disagreements (a consistent
//! estimate) or a local minimum.
//!
//! Each bit constrains far less than an exact count, so consistency is a
//! weaker certificate than in the additive model — the `threshold_gt`
//! experiment's refined column measures how much working range the search
//! still buys.

use rayon::prelude::*;

use pooled_core::Signal;
use pooled_design::csr::CsrDesign;
use pooled_design::PoolingDesign;

use crate::channel::pool_loads;

/// Tuning knobs for the bit-level local search.
#[derive(Clone, Copy, Debug)]
pub struct BitRefineConfig {
    /// Candidates per side (weakest in-support × strongest out-of-support).
    pub window: usize,
    /// Hard cap on applied swaps.
    pub max_swaps: usize,
}

impl Default for BitRefineConfig {
    fn default() -> Self {
        Self { window: 24, max_swaps: 256 }
    }
}

/// Result of the bit-level refinement.
#[derive(Clone, Debug)]
pub struct BitRefineOutput {
    /// The (possibly improved) estimate; weight equals the input weight.
    pub estimate: Signal,
    /// Disagreeing queries before refinement.
    pub initial_disagreements: usize,
    /// Disagreeing queries after refinement.
    pub final_disagreements: usize,
    /// Swaps applied.
    pub swaps: usize,
    /// Whether every query's implied bit matches the observed bit.
    pub consistent: bool,
}

/// Greedily swap support entries to reduce observed-vs-implied bit
/// disagreements at threshold `t`.
///
/// `scores` shortlist the candidates (`ThresholdOutput::scores`); they
/// steer the search only — correctness comes from exact disagreement
/// recomputation per candidate pair.
///
/// # Panics
/// Panics if `bits`, `scores`, or `estimate` disagree with the design's
/// dimensions.
pub fn refine_bits(
    design: &CsrDesign,
    bits: &[u8],
    t: u64,
    scores: &[i64],
    estimate: &Signal,
    cfg: &BitRefineConfig,
) -> BitRefineOutput {
    assert_eq!(bits.len(), design.m(), "bit vector length must equal m");
    assert_eq!(scores.len(), design.n(), "score vector length must equal n");
    assert_eq!(estimate.n(), design.n(), "estimate length must equal n");
    let n = design.n();
    let mut loads = pool_loads(design, estimate);
    let disagree = |load: u64, q: usize| (u8::from(load >= t) != bits[q]) as i64;
    let mut total: i64 = loads.iter().enumerate().map(|(q, &l)| disagree(l, q)).sum();
    let initial = total as usize;
    let mut dense = estimate.dense().to_vec();
    let mut swaps = 0usize;

    while total > 0 && swaps < cfg.max_swaps {
        let mut ins: Vec<usize> = (0..n).filter(|&i| dense[i] == 1).collect();
        let mut outs: Vec<usize> = (0..n).filter(|&i| dense[i] == 0).collect();
        if ins.is_empty() || outs.is_empty() {
            break;
        }
        ins.sort_by_key(|&i| (scores[i], i));
        outs.sort_by_key(|&i| (std::cmp::Reverse(scores[i]), i));
        ins.truncate(cfg.window);
        outs.truncate(cfg.window);
        let pairs: Vec<(usize, usize)> =
            ins.iter().flat_map(|&i| outs.iter().map(move |&j| (i, j))).collect();
        let best = pairs
            .par_iter()
            .map(|&(i, j)| (swap_delta(design, &loads, bits, t, i, j), i, j))
            .min_by_key(|&(d, i, j)| (d, i, j))
            .expect("candidate set is nonempty");
        let (delta, i, j) = best;
        if delta >= 0 {
            break;
        }
        for &q in design.entry_row(i).0 {
            loads[q as usize] -= 1;
        }
        for &q in design.entry_row(j).0 {
            loads[q as usize] += 1;
        }
        dense[i] = 0;
        dense[j] = 1;
        total += delta;
        swaps += 1;
    }

    BitRefineOutput {
        estimate: Signal::from_dense(&dense),
        initial_disagreements: initial,
        final_disagreements: total as usize,
        swaps,
        consistent: total == 0,
    }
}

/// Exact change in disagreements if `i` leaves the support and `j` joins:
/// loads change by −1 on `∂*x_i`, +1 on `∂*x_j` (distinct membership; a
/// pool member counts once regardless of multi-edges).
fn swap_delta(design: &CsrDesign, loads: &[u64], bits: &[u8], t: u64, i: usize, j: usize) -> i64 {
    let (qi, _) = design.entry_row(i);
    let (qj, _) = design.entry_row(j);
    let eval = |q: u32, load_delta: i64| -> i64 {
        let q = q as usize;
        let old = loads[q];
        let new = old.saturating_add_signed(load_delta);
        let old_bad = (u8::from(old >= t) != bits[q]) as i64;
        let new_bad = (u8::from(new >= t) != bits[q]) as i64;
        new_bad - old_bad
    };
    let mut delta = 0i64;
    let (mut a, mut b) = (0usize, 0usize);
    while a < qi.len() || b < qj.len() {
        match (qi.get(a), qj.get(b)) {
            (Some(&x), Some(&y)) if x == y => {
                a += 1;
                b += 1; // load unchanged: −1 + 1
            }
            (Some(&x), Some(&y)) if x < y => {
                delta += eval(x, -1);
                a += 1;
            }
            (Some(_), Some(&y)) => {
                delta += eval(y, 1);
                b += 1;
            }
            (Some(&x), None) => {
                delta += eval(x, -1);
                a += 1;
            }
            (None, Some(&y)) => {
                delta += eval(y, 1);
                b += 1;
            }
            (None, None) => unreachable!("loop guard"),
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ThresholdChannel;
    use crate::decoder::ThresholdMnDecoder;
    use pooled_rng::SeedSequence;
    use pooled_theory::threshold_gt::recommended_gamma;

    fn setup(n: usize, k: usize, t: u64, m: usize, seed: u64) -> (Signal, CsrDesign, Vec<u8>) {
        let seeds = SeedSequence::new(seed);
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let (gamma, _) = recommended_gamma(n, k, t);
        // Materialize a without-replacement design as CSR pools.
        let nr = pooled_design::NoReplaceDesign::sample(n, m, gamma, &seeds.child("design", 0));
        let bits = ThresholdChannel::new(t).execute(&nr, &sigma);
        (sigma, nr.csr().clone(), bits)
    }

    #[test]
    fn consistent_estimate_is_left_untouched() {
        let (sigma, design, bits) = setup(500, 6, 2, 600, 1);
        let out = ThresholdMnDecoder::new(6).decode(&design, &bits);
        assert_eq!(out.estimate, sigma, "pick m high enough for this test");
        let r = refine_bits(&design, &bits, 2, &out.scores, &out.estimate, &Default::default());
        assert!(r.consistent);
        assert_eq!(r.swaps, 0);
        assert_eq!(r.initial_disagreements, 0);
    }

    #[test]
    fn fixes_a_planted_single_swap_error() {
        let (sigma, design, bits) = setup(500, 8, 2, 700, 2);
        let mut dense = sigma.dense().to_vec();
        let out_i = sigma.support()[2];
        let in_j = (0..500).find(|&i| dense[i] == 0).unwrap();
        dense[out_i] = 0;
        dense[in_j] = 1;
        let corrupted = Signal::from_dense(&dense);
        let scores = ThresholdMnDecoder::new(8).decode(&design, &bits).scores;
        let r = refine_bits(&design, &bits, 2, &scores, &corrupted, &Default::default());
        assert_eq!(r.estimate, sigma, "one swap should repair the plant");
        assert_eq!(r.swaps, 1);
    }

    #[test]
    fn never_increases_disagreements() {
        for seed in 10..16 {
            let (_, design, bits) = setup(600, 8, 2, 120, seed);
            let out = ThresholdMnDecoder::new(8).decode(&design, &bits);
            let r = refine_bits(&design, &bits, 2, &out.scores, &out.estimate, &Default::default());
            assert!(r.final_disagreements <= r.initial_disagreements, "seed {seed}");
        }
    }

    #[test]
    fn improves_success_below_threshold() {
        let (n, k, t, m) = (800usize, 7usize, 2u64, 190usize);
        let (mut plain_ok, mut refined_ok) = (0, 0);
        for seed in 20..40 {
            let (sigma, design, bits) = setup(n, k, t, m, seed);
            let out = ThresholdMnDecoder::new(k).decode(&design, &bits);
            let r = refine_bits(&design, &bits, t, &out.scores, &out.estimate, &Default::default());
            plain_ok += (out.estimate == sigma) as u32;
            refined_ok += (r.estimate == sigma) as u32;
        }
        assert!(refined_ok >= plain_ok, "refined {refined_ok}/20 below plain {plain_ok}/20");
    }

    #[test]
    fn weight_and_determinism() {
        let (_, design, bits) = setup(400, 5, 2, 100, 50);
        let out = ThresholdMnDecoder::new(5).decode(&design, &bits);
        let a = refine_bits(&design, &bits, 2, &out.scores, &out.estimate, &Default::default());
        let b = refine_bits(&design, &bits, 2, &out.scores, &out.estimate, &Default::default());
        assert_eq!(a.estimate.weight(), 5);
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.swaps, b.swaps);
    }

    #[test]
    fn consistency_flag_matches_report() {
        use crate::verify::consistency_report;
        for seed in 60..66 {
            let (_, design, bits) = setup(500, 6, 2, 260, seed);
            let out = ThresholdMnDecoder::new(6).decode(&design, &bits);
            let r = refine_bits(&design, &bits, 2, &out.scores, &out.estimate, &Default::default());
            let rep = consistency_report(&design, &bits, &r.estimate, 2);
            assert_eq!(r.consistent, rep.is_consistent(), "seed {seed}");
            assert_eq!(
                r.final_disagreements,
                rep.missed_positives + rep.false_positives,
                "seed {seed}"
            );
        }
    }
}
