#![warn(missing_docs)]

//! Threshold group testing — the reconstruction problem the paper's §VI
//! singles out as the natural next target for its techniques.
//!
//! In the additive model a query returns the exact number of one-entries in
//! its pool; in the **threshold model** it returns a single bit: `1` iff
//! that count reaches a threshold `T ≥ 1`. (`T = 1` is classical binary
//! group testing; a *gapped* variant leaves a band `[L, U)` where the
//! outcome is adversarially/randomly undetermined.) The paper conjectures
//! that its score-and-rank approach transfers; this crate is that transfer:
//!
//! * [`channel`] — threshold and gapped-threshold query execution over any
//!   [`pooled_design::PoolingDesign`] (distinct-membership counting, the
//!   wet-lab semantics).
//! * [`decoder`] — the **Threshold-MN decoder**: score each entry by the
//!   degree-normalized count of positive queries in its neighborhood, keep
//!   the `k` best. One-entries tilt their queries positive with probability
//!   `p1 > p0` ([`pooled_theory::threshold_gt`]), so the scores separate
//!   exactly as in Corollary 6 with `(p1 − p0)` playing the role of the
//!   additive separation.
//! * [`design_choice`] — pool-size selection: the separation-efficiency
//!   optimum `Γ*(n, k, T)` from `pooled-theory`, materialized as a
//!   without-replacement design.
//! * [`verify`] — consistency checking of an estimate against observed
//!   threshold bits (the analogue of a zero residual).
//! * [`refine_bits`] — disagreement-guided swap search after decoding
//!   (the one-bit analogue of `pooled_core::refine`).
//!
//! ```
//! use pooled_threshold::{channel::ThresholdChannel, decoder::ThresholdMnDecoder};
//! use pooled_threshold::design_choice::recommended_design;
//! use pooled_core::Signal;
//! use pooled_rng::SeedSequence;
//!
//! let seeds = SeedSequence::new(7);
//! let (n, k, t) = (600, 6, 2);
//! let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
//! let design = recommended_design(n, k, t, 700, &seeds.child("design", 0));
//! let bits = ThresholdChannel::new(t).execute(&design, &sigma);
//! let out = ThresholdMnDecoder::new(k).decode(&design, &bits);
//! assert_eq!(out.estimate, sigma);
//! ```

pub mod channel;
pub mod decoder;
pub mod design_choice;
pub mod refine_bits;
pub mod verify;

pub use channel::{GappedChannel, ThresholdChannel};
pub use decoder::{ThresholdMnDecoder, ThresholdOutput};
pub use design_choice::recommended_design;
pub use refine_bits::{refine_bits, BitRefineConfig, BitRefineOutput};
pub use verify::{consistency_report, ConsistencyReport};
