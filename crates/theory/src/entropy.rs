//! Entropy and divergence in natural logarithms.
//!
//! The paper's rate-function computation (Lemma 9) uses the natural-log
//! entropy `H(p) = −p ln p − (1−p) ln(1−p)` through the standard asymptotic
//! `n⁻¹ ln C(n, np) → H(p)`. We also expose the exact normalized log
//! binomial so tests can quantify how fast that asymptotic kicks in.

use crate::special::ln_choose;

/// Natural-log binary entropy `H(p)`, with the convention `0 ln 0 = 0`.
///
/// Inputs outside `[0, 1]` are a caller bug; the function panics to surface
/// it rather than silently returning NaN.
pub fn h(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "entropy argument {p} outside [0,1]");
    let mut acc = 0.0;
    if p > 0.0 {
        acc -= p * p.ln();
    }
    if p < 1.0 {
        acc -= (1.0 - p) * (1.0 - p).ln();
    }
    acc
}

/// KL divergence `D(p‖q)` in nats (with the usual 0-conventions).
///
/// # Panics
/// Panics when the divergence is infinite (`p > 0` where `q = 0`).
pub fn kl(p: f64, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p) && (0.0..=1.0).contains(&q));
    let term = |a: f64, b: f64| {
        if a == 0.0 {
            0.0
        } else {
            assert!(b > 0.0, "infinite divergence: mass {a} where q is 0");
            a * (a / b).ln()
        }
    };
    term(p, q) + term(1.0 - p, 1.0 - q)
}

/// Exact `n⁻¹ ln C(n, k)` — the finite-`n` quantity `H(k/n)` approximates.
pub fn normalized_ln_choose(n: u64, k: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    ln_choose(n, k) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_endpoints_are_zero() {
        assert_eq!(h(0.0), 0.0);
        assert_eq!(h(1.0), 0.0);
    }

    #[test]
    fn entropy_max_at_half() {
        assert!((h(0.5) - std::f64::consts::LN_2).abs() < 1e-15);
        for p in [0.1, 0.3, 0.49, 0.7, 0.99] {
            assert!(h(p) <= h(0.5));
        }
    }

    #[test]
    fn entropy_symmetry() {
        for p in [0.0, 0.1, 0.25, 0.4] {
            assert!((h(p) - h(1.0 - p)).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn entropy_rejects_invalid_input() {
        let _ = h(1.5);
    }

    #[test]
    fn kl_zero_iff_equal() {
        for p in [0.2, 0.5, 0.9] {
            assert!(kl(p, p).abs() < 1e-15);
        }
        assert!(kl(0.3, 0.6) > 0.0);
        assert!(kl(0.6, 0.3) > 0.0);
    }

    #[test]
    fn kl_asymmetry_example() {
        assert!((kl(0.1, 0.5) - kl(0.5, 0.1)).abs() > 1e-3);
    }

    #[test]
    #[should_panic(expected = "infinite divergence")]
    fn kl_detects_support_mismatch() {
        let _ = kl(0.5, 0.0);
    }

    #[test]
    fn normalized_choose_converges_to_entropy() {
        // |n⁻¹ ln C(n, pn) − H(p)| = O(ln n / n).
        let p = 0.3;
        let mut last_err = f64::INFINITY;
        for n in [100u64, 1_000, 10_000, 100_000] {
            let k = (p * n as f64).round() as u64;
            let err = (normalized_ln_choose(n, k) - h(k as f64 / n as f64)).abs();
            assert!(err < last_err, "error not shrinking at n={n}");
            last_err = err;
        }
        assert!(last_err < 1e-4);
    }
}
