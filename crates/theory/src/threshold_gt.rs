//! Design guidance for **threshold group testing**, the open problem the
//! paper's §VI singles out: a query returns `1` iff the number of one-entries
//! in its pool reaches a threshold `T ≥ 1` (additive counts degrade to one
//! bit per query; `T = 1` is classical binary group testing).
//!
//! The paper conjectures that its score-and-threshold technique transfers.
//! The `pooled-threshold` crate implements that transfer; this module
//! supplies the probabilistic quantities the transferred decoder needs:
//!
//! * `p1` / `p0` — the probability that a pool containing a specific one-
//!   entry (resp. zero-entry) triggers the threshold, under the binomial
//!   pool model `count ≈ Bin(Γ−1, k/n) + 1{entry is one}`.
//! * the **separation** `p1 − p0`, which plays the role of the score gap of
//!   Corollary 6: an entry's positive-neighborhood fraction concentrates at
//!   `p1` or `p0`, so top-k selection succeeds once the per-entry degree
//!   satisfies a Hoeffding condition in `(p1 − p0)²`.
//! * the separation-maximizing pool size `Γ*(n, k, T)` — the analogue of the
//!   paper's `Γ = n/2` convention. For `T = 1` it lands near the classical
//!   `n·ln2/k`; for larger `T` it grows like `(T − ½)·n/k`.
//!
//! These are heuristic design formulas (Hoeffding + union bound), not sharp
//! constants: the experiment harness measures where the empirical transition
//! actually sits relative to them.

use crate::special::ln_choose;

/// `P(Bin(n, p) ≥ t)`, numerically stable across the whole range.
///
/// Sums the probability mass from the side of `t` that avoids catastrophic
/// underflow: upward from `t` when `t` is above the mean (terms decay), and
/// as `1 − P(Bin < t)` with a downward sum otherwise.
pub fn binomial_tail_geq(n: u64, p: f64, t: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
    if t == 0 {
        return 1.0;
    }
    if t > n {
        return 0.0;
    }
    if p <= 0.0 {
        return 0.0; // t ≥ 1 mass impossible
    }
    if p >= 1.0 {
        return 1.0; // all mass at n ≥ t
    }
    let q = 1.0 - p;
    let ln_pmf = |j: u64| ln_choose(n, j) + j as f64 * p.ln() + (n - j) as f64 * q.ln();
    let mean = n as f64 * p;
    if t as f64 > mean {
        // Sum upward: terms decrease past the mode.
        let mut term = ln_pmf(t).exp();
        let mut acc = 0.0f64;
        let mut j = t;
        while j <= n {
            acc += term;
            if term < acc * 1e-17 && j as f64 > mean {
                break;
            }
            if j == n {
                break;
            }
            term *= (n - j) as f64 / (j + 1) as f64 * (p / q);
            j += 1;
        }
        acc.min(1.0)
    } else {
        // 1 − P(Bin ≤ t−1), summing downward from t−1 (terms decrease).
        let mut term = ln_pmf(t - 1).exp();
        let mut acc = 0.0f64;
        let mut j = t - 1;
        loop {
            acc += term;
            if term < acc * 1e-17 || j == 0 {
                break;
            }
            term *= j as f64 / (n - j + 1) as f64 * (q / p);
            j -= 1;
        }
        (1.0 - acc).clamp(0.0, 1.0)
    }
}

/// `p1`: probability that a pool of `gamma` draws containing a specific
/// **one**-entry reaches threshold `t` — `P(1 + Bin(Γ−1, (k−1)/(n−1)) ≥ t)`.
///
/// # Panics
/// Panics if `gamma == 0`, `k == 0` or `k > n`.
pub fn p_trigger_one(n: usize, k: usize, gamma: usize, t: u64) -> f64 {
    assert!(gamma >= 1 && k >= 1 && k <= n, "need 1 ≤ k ≤ n and Γ ≥ 1");
    let p = (k - 1) as f64 / (n - 1).max(1) as f64;
    binomial_tail_geq((gamma - 1) as u64, p, t.saturating_sub(1))
}

/// `p0`: probability that a pool of `gamma` draws containing a specific
/// **zero**-entry reaches threshold `t` — `P(Bin(Γ−1, k/(n−1)) ≥ t)`.
pub fn p_trigger_zero(n: usize, k: usize, gamma: usize, t: u64) -> f64 {
    assert!(gamma >= 1 && k >= 1 && k <= n, "need 1 ≤ k ≤ n and Γ ≥ 1");
    let p = k as f64 / (n - 1).max(1) as f64;
    binomial_tail_geq((gamma - 1) as u64, p, t)
}

/// The score separation `p1 − p0 ∈ [0, 1]` at pool size `gamma`.
pub fn separation(n: usize, k: usize, gamma: usize, t: u64) -> f64 {
    (p_trigger_one(n, k, gamma, t) - p_trigger_zero(n, k, gamma, t)).max(0.0)
}

/// The pool size minimizing the Hoeffding query estimate — equivalently,
/// maximizing the *efficiency* `Γ·(p1−p0)²`. (Maximizing the raw separation
/// alone is degenerate: at `T = 1` it favours single-entry pools, which
/// separate perfectly but carry almost no coverage per query.)
///
/// Found by a log-spaced scan around the `(T − ½)·n/k` heuristic center
/// with a linear refine. Returns `(Γ*, separation(Γ*))`.
pub fn recommended_gamma(n: usize, k: usize, t: u64) -> (usize, f64) {
    assert!(k >= 1 && k <= n, "need 1 ≤ k ≤ n");
    let efficiency = |gamma: usize| {
        let s = separation(n, k, gamma, t);
        gamma as f64 * s * s
    };
    let center = ((t as f64 - 0.5) * n as f64 / k as f64).max(1.0);
    let lo = ((center / 8.0) as usize).max(1);
    let hi = ((center * 8.0) as usize).min(n).max(lo + 1);
    let mut best = (lo, efficiency(lo));
    // Coarse multiplicative scan …
    let steps = 96usize;
    let ratio = (hi as f64 / lo as f64).powf(1.0 / steps as f64);
    let mut g = lo as f64;
    for _ in 0..=steps {
        let gamma = (g.round() as usize).clamp(1, n);
        let e = efficiency(gamma);
        if e > best.1 {
            best = (gamma, e);
        }
        g *= ratio;
    }
    // … then a local linear refine around the coarse winner.
    let span = ((best.0 as f64 * (ratio - 1.0)).ceil() as usize).max(2);
    for gamma in best.0.saturating_sub(span).max(1)..=(best.0 + span).min(n) {
        let e = efficiency(gamma);
        if e > best.1 {
            best = (gamma, e);
        }
    }
    (best.0, separation(n, k, best.0, t))
}

/// Hoeffding estimate of the queries a score decoder needs at pool size
/// `gamma`: per-entry degree `d = Γm/n` must satisfy
/// `d·(p1−p0)²/2 > ln n` (midpoint test + union bound), so
/// `m ≈ 2·n·ln n / (Γ·(p1−p0)²)`.
///
/// Returns `f64::INFINITY` when the separation vanishes.
pub fn m_threshold_estimate(n: usize, k: usize, gamma: usize, t: u64) -> f64 {
    let s = separation(n, k, gamma, t);
    if s <= 0.0 {
        return f64::INFINITY;
    }
    2.0 * n as f64 * (n as f64).ln() / (gamma as f64 * s * s)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact tail by direct summation in log space (small n only).
    fn naive_tail(n: u64, p: f64, t: u64) -> f64 {
        (t..=n)
            .map(|j| (ln_choose(n, j) + j as f64 * p.ln() + (n - j) as f64 * (1.0 - p).ln()).exp())
            .sum()
    }

    #[test]
    fn tail_matches_naive_summation() {
        for n in [1u64, 5, 20, 100] {
            for p in [0.01, 0.3, 0.5, 0.9] {
                for t in [0u64, 1, n / 2, n] {
                    let got = binomial_tail_geq(n, p, t);
                    let want = naive_tail(n, p, t).min(1.0);
                    assert!((got - want).abs() < 1e-10, "n={n} p={p} t={t}: {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn tail_edge_cases() {
        assert_eq!(binomial_tail_geq(10, 0.5, 0), 1.0);
        assert_eq!(binomial_tail_geq(10, 0.5, 11), 0.0);
        assert_eq!(binomial_tail_geq(10, 0.0, 1), 0.0);
        assert_eq!(binomial_tail_geq(10, 1.0, 10), 1.0);
    }

    #[test]
    fn tail_is_stable_for_huge_n() {
        // t far below the mean: tail ≈ 1 without underflow.
        let tail = binomial_tail_geq(500_000, 0.5, 1);
        assert!((tail - 1.0).abs() < 1e-12, "tail={tail}");
        // t far above the mean: tail ≈ 0 without overflow.
        assert!(binomial_tail_geq(500_000, 0.001, 5_000) < 1e-12);
        // Near the mean: a sane middle value.
        let mid = binomial_tail_geq(1_000_000, 0.5, 500_000);
        assert!((0.4..0.6).contains(&mid), "mid={mid}");
    }

    #[test]
    fn tail_monotone_in_t() {
        let mut last = 1.0f64;
        for t in 0..=60 {
            let v = binomial_tail_geq(60, 0.4, t);
            assert!(v <= last + 1e-15, "t={t}");
            last = v;
        }
    }

    #[test]
    fn one_entry_triggers_more_often_than_zero_entry() {
        let (n, k) = (10_000usize, 16usize);
        for t in [1u64, 2, 4, 8] {
            for gamma in [100usize, 500, 2000, 5000] {
                let p1 = p_trigger_one(n, k, gamma, t);
                let p0 = p_trigger_zero(n, k, gamma, t);
                assert!(p1 >= p0, "t={t} Γ={gamma}: p1={p1} < p0={p0}");
            }
        }
    }

    #[test]
    fn t_equals_one_matches_binary_group_testing() {
        // For T = 1, a pool containing a one-entry is always positive.
        let p1 = p_trigger_one(1000, 8, 200, 1);
        assert!((p1 - 1.0).abs() < 1e-12, "p1={p1}");
        // A pool with a zero-entry is positive iff it caught another one.
        let p0 = p_trigger_zero(1000, 8, 200, 1);
        let want = 1.0 - (1.0 - 8.0 / 999.0f64).powi(199);
        assert!((p0 - want).abs() < 1e-9, "{p0} vs {want}");
    }

    #[test]
    fn recommended_gamma_t1_near_classical_scale() {
        // Binary GT pools are classically sized at Γ ≈ n·ln2/k (so that
        // P(positive) ≈ ½); the Hoeffding-efficiency optimum Γ = n/(2k)
        // sits at the same n/k scale, a factor ~1.4 below. Accept the
        // window [¼, 2]× the classical rule.
        let (n, k) = (10_000usize, 16usize);
        let (g, s) = recommended_gamma(n, k, 1);
        let classical = n as f64 * std::f64::consts::LN_2 / k as f64;
        assert!(
            (g as f64) > 0.25 * classical && (g as f64) < 2.0 * classical,
            "Γ*={g} vs classical {classical}"
        );
        // Closed form for T=1: maximize Γ·q^{2(Γ−1)} ⇒ Γ* ≈ −1/(2 ln q).
        let q = 1.0 - k as f64 / (n as f64 - 1.0);
        let closed = -1.0 / (2.0 * q.ln());
        assert!(((g as f64) - closed).abs() / closed < 0.25, "Γ*={g} vs closed-form {closed}");
        assert!(s > 0.3, "separation {s} too small at the optimum");
    }

    #[test]
    fn recommended_gamma_grows_with_t() {
        let (n, k) = (10_000usize, 16usize);
        let g1 = recommended_gamma(n, k, 1).0;
        let g4 = recommended_gamma(n, k, 4).0;
        let g8 = recommended_gamma(n, k, 8).0;
        assert!(g1 < g4 && g4 < g8, "Γ* sequence {g1}, {g4}, {g8}");
    }

    #[test]
    fn m_estimate_finite_at_optimum_and_infinite_at_zero_separation() {
        let (n, k) = (1000usize, 8usize);
        let (g, _) = recommended_gamma(n, k, 2);
        assert!(m_threshold_estimate(n, k, g, 2).is_finite());
        // Tiny pools at high threshold never trigger: zero separation.
        assert!(m_threshold_estimate(n, k, 1, 5).is_infinite());
    }
}
