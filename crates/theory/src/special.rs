//! Special functions: log-gamma and friends.
//!
//! Rust's standard library does not expose `lgamma` on stable, and the
//! binomial-coefficient magnitudes in the first-moment computation
//! (`ln C(10⁶, 10³)`) overflow direct evaluation, so we implement the
//! Lanczos approximation (g = 7, 9 coefficients — the classic Numerical
//! Recipes parameterization, |rel. err| < 2·10⁻¹⁰ on the real axis).

/// Lanczos coefficients for g = 7.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.5203681218851,
    -1259.1392167224028,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507343278686905,
    -0.13857109526572012,
    9.984_369_578_019_572e-6,
    1.5056327351493116e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// # Panics
/// Panics if `x <= 0` (the reflection branch is not needed in this
/// workspace and keeping the domain positive removes a pole hazard).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain is x > 0, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` for integer `n ≥ 0`.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0)
}

/// `ln C(n, k)`; zero when `k > n` is nonsensical, so that case panics.
///
/// # Panics
/// Panics if `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose: k={k} > n={n}");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn gamma_at_integers_matches_factorials() {
        // Γ(n) = (n−1)!
        let facts: [(f64, f64); 6] =
            [(1.0, 1.0), (2.0, 1.0), (3.0, 2.0), (4.0, 6.0), (5.0, 24.0), (10.0, 362_880.0)];
        for (x, fact) in facts {
            assert!(
                close(ln_gamma(x), fact.ln(), 1e-12),
                "ln_gamma({x}) = {} want {}",
                ln_gamma(x),
                fact.ln()
            );
        }
    }

    #[test]
    fn gamma_at_half() {
        // Γ(1/2) = √π.
        assert!(close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12));
    }

    #[test]
    fn gamma_large_argument_stirling_regime() {
        // ln Γ(171) = ln(170!) — compare against exact ln factorial via sum.
        let exact: f64 = (2..=170u64).map(|i| (i as f64).ln()).sum();
        assert!(close(ln_gamma(171.0), exact, 1e-12));
    }

    #[test]
    fn ln_factorial_small_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!(close(ln_factorial(5), 120f64.ln(), 1e-12));
        assert!(close(ln_factorial(20), 2.43290200817664e18f64.ln(), 1e-10));
    }

    #[test]
    fn ln_choose_matches_pascal() {
        assert!(close(ln_choose(10, 3), 120f64.ln(), 1e-12));
        assert!(close(ln_choose(52, 5), 2_598_960f64.ln(), 1e-12));
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
    }

    #[test]
    fn ln_choose_symmetry() {
        for k in 0..=30u64 {
            assert!(close(ln_choose(30, k), ln_choose(30, 30 - k), 1e-12));
        }
    }

    #[test]
    fn ln_choose_huge_arguments_are_finite() {
        let v = ln_choose(1_000_000, 1000);
        assert!(v.is_finite() && v > 0.0);
        // Sanity: k ln(n/k) < ln C(n,k) < k (ln(n/k) + 1).
        let k = 1000f64;
        let lo = k * (1_000_000f64 / k).ln();
        let hi = k * ((1_000_000f64 / k).ln() + 1.0);
        assert!(v > lo && v < hi, "v={v} not in ({lo}, {hi})");
    }

    #[test]
    #[should_panic(expected = "k=4 > n=3")]
    fn ln_choose_rejects_k_above_n() {
        let _ = ln_choose(3, 4);
    }
}
