//! Every query-count threshold the paper states, as executable formulas.
//!
//! All counts are returned as `f64` — the experiment harness decides how to
//! round. Thresholds follow the paper's parameterization `k = n^θ` but also
//! accept explicit `k` so that the simulator's integer rounding (the source
//! of the visible discontinuities in Fig. 2's theory curves) is reproduced
//! faithfully.

use crate::special::ln_choose;

/// `γ = 1 − e^{−1/2} = 1 − 1/√e ≈ 0.3935`, the distinct-query fraction of
/// the design, appearing in every algorithmic constant.
pub const GAMMA_STAR: f64 = 0.393_469_340_287_366_6;

/// Number of non-zero entries `k = n^θ`, rounded to the nearest integer and
/// clamped into `[1, n]` (the paper rounds k to the closest integer).
pub fn k_of(n: usize, theta: f64) -> usize {
    assert!(n > 0, "n must be positive");
    assert!((0.0..=1.0).contains(&theta), "θ={theta} outside [0,1]");
    let k = (n as f64).powf(theta).round() as usize;
    k.clamp(1, n)
}

/// Eq. (1): the sequential counting lower bound
/// `m ≥ (1−o(1)) · k·ln(n/k)/ln k` (asymptotic form; `ln k` guarded).
pub fn m_counting_bound(n: usize, k: usize) -> f64 {
    let (n_f, k_f) = (n as f64, k as f64);
    k_f * (n_f / k_f).ln() / k_f.ln().max(f64::MIN_POSITIVE)
}

/// Exact counting bound `ln C(n,k) / ln(k+1)`: a pooling design with `m`
/// queries distinguishes at most `(k+1)^m` outcomes, which must reach
/// `C(n,k)`. Well-defined for every `n, k ≥ 1` (unlike the asymptotic form
/// at `k = 1`).
pub fn m_counting_bound_exact(n: usize, k: usize) -> f64 {
    ln_choose(n as u64, k as u64) / ((k as f64) + 1.0).ln()
}

/// Eq. (2) / Theorem 2: the **parallel** information-theoretic threshold
/// `m_IT = 2·k·ln(n/k)/ln k`; in the `k = n^θ` parameterization this equals
/// `2(1−θ)/θ · k`.
pub fn m_information_theoretic(n: usize, k: usize) -> f64 {
    2.0 * m_counting_bound(n, k)
}

/// Theorem 2's threshold in the θ-parameterization: `2(1−θ)/θ · k`.
pub fn m_information_theoretic_theta(n: usize, theta: f64) -> f64 {
    let k = k_of(n, theta) as f64;
    2.0 * (1.0 - theta) / theta * k
}

/// Theorem 1: the MN-algorithm threshold
/// `m_MN = 4(1 − 1/√e) · (1+√θ)/(1−√θ) · k·ln(n/k)`.
///
/// # Panics
/// Panics if `θ ∉ (0, 1)` (the prefactor diverges at θ = 1).
pub fn m_mn(n: usize, theta: f64) -> f64 {
    assert!(theta > 0.0 && theta < 1.0, "Theorem 1 needs 0 < θ < 1, got {theta}");
    let k = k_of(n, theta) as f64;
    let prefactor = 4.0 * GAMMA_STAR * (1.0 + theta.sqrt()) / (1.0 - theta.sqrt());
    prefactor * k * (n as f64 / k).ln()
}

/// Theorem 1's threshold with the finite-size correction of the §V Remark:
/// `m ≥ m_MN · (1 + √(2 ln n)·(4γ·m·k)^{−1/2})`, solved by fixed-point
/// iteration (the correction depends on `m` itself).
pub fn m_mn_finite(n: usize, theta: f64) -> f64 {
    let base = m_mn(n, theta);
    let k = k_of(n, theta) as f64;
    let ln_n = (n as f64).ln();
    let mut m = base;
    for _ in 0..64 {
        let correction = 1.0 + (2.0 * ln_n).sqrt() / (4.0 * GAMMA_STAR * m * k).sqrt();
        let next = base * correction;
        if (next - m).abs() < 1e-9 * m {
            return next;
        }
        m = next;
    }
    m
}

/// Karimi et al. (2019a), graph-code construction: `1.72·k·ln(n/k)`.
pub fn m_karimi_a(n: usize, k: usize) -> f64 {
    1.72 * k as f64 * (n as f64 / k as f64).ln()
}

/// Karimi et al. (2019b), improved construction: `1.515·k·ln(n/k)`.
pub fn m_karimi_b(n: usize, k: usize) -> f64 {
    1.515 * k as f64 * (n as f64 / k as f64).ln()
}

/// Optimal *binary* group testing (Coja-Oghlan et al.), quoted in the
/// Discussion: `m_GT ∼ ln⁻¹(2)·k·ln(n/k)`, efficient for
/// `θ ≤ ln 2/(1+ln 2) ≈ 0.409`.
pub fn m_binary_gt(n: usize, k: usize) -> f64 {
    k as f64 * (n as f64 / k as f64).ln() / std::f64::consts::LN_2
}

/// θ-range where the binary group-testing comparison applies.
pub fn binary_gt_theta_limit() -> f64 {
    std::f64::consts::LN_2 / (1.0 + std::f64::consts::LN_2)
}

/// Basis Pursuit (Foucart–Rauhut, quoted in §I-B): `(2+o(1))·k·ln n`,
/// i.e. `2/(1−θ)·k·ln(n/k)` in the sparse parameterization.
pub fn m_basis_pursuit(n: usize, k: usize) -> f64 {
    2.0 * k as f64 * (n as f64).ln()
}

/// ℓ1-minimization / Donoho–Tanner (quoted in §I-B): `(2+o(1))·k·ln(n/k)`.
pub fn m_l1(n: usize, k: usize) -> f64 {
    2.0 * k as f64 * (n as f64 / k as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_star_value() {
        assert!((GAMMA_STAR - (1.0 - (-0.5f64).exp())).abs() < 1e-15);
        assert!((GAMMA_STAR - (1.0 - 1.0 / std::f64::consts::E.sqrt())).abs() < 1e-15);
    }

    #[test]
    fn k_of_matches_paper_examples() {
        // §I-D: n = 10⁴, θ = 0.3 “describes the situation quite well”
        // with ≈16 positives.
        assert_eq!(k_of(10_000, 0.3), 16);
        assert_eq!(k_of(1000, 0.3), 8);
        assert_eq!(k_of(100, 0.5), 10);
    }

    #[test]
    fn k_of_clamps_to_valid_range() {
        assert_eq!(k_of(10, 0.0), 1);
        assert_eq!(k_of(10, 1.0), 10);
        assert_eq!(k_of(1, 0.5), 1);
    }

    #[test]
    fn theorem2_theta_form_matches_general_form() {
        // 2k·ln(n/k)/ln k = 2(1−θ)/θ·k when k = n^θ exactly.
        let n = 1_000_000usize; // k = 1000 at θ = 0.5 exactly
        let theta = 0.5;
        let k = k_of(n, theta);
        let a = m_information_theoretic(n, k);
        let b = m_information_theoretic_theta(n, theta);
        assert!((a - b).abs() / b < 1e-12, "a={a} b={b}");
    }

    #[test]
    fn parallel_threshold_is_twice_sequential() {
        let (n, k) = (10_000, 16);
        assert!((m_information_theoretic(n, k) - 2.0 * m_counting_bound(n, k)).abs() < 1e-9);
    }

    #[test]
    fn exact_counting_bound_close_to_asymptotic() {
        let (n, k) = (1_000_000, 1000);
        let exact = m_counting_bound_exact(n, k);
        let asym = m_counting_bound(n, k);
        assert!((exact - asym).abs() / asym < 0.2, "exact={exact} asym={asym}");
    }

    #[test]
    fn mn_threshold_reference_values() {
        // Hand-evaluated: n=1000, θ=0.3 ⇒ k=8, ln(n/k)=ln 125≈4.828,
        // prefactor = 4γ(1+√0.3)/(1−√0.3) ≈ 1.5739·3.4094 ≈ 5.3661,
        // m_MN ≈ 5.3661·8·4.828 ≈ 207.3.
        let m = m_mn(1000, 0.3);
        assert!((m - 207.3).abs() < 1.0, "m_MN={m}");
    }

    #[test]
    fn mn_threshold_monotone_in_theta() {
        let mut last = 0.0;
        for theta in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6] {
            let m = m_mn(100_000, theta);
            assert!(m > last, "m_MN should grow with θ (more positives)");
            last = m;
        }
    }

    #[test]
    #[should_panic(expected = "Theorem 1 needs")]
    fn mn_threshold_rejects_theta_one() {
        let _ = m_mn(1000, 1.0);
    }

    #[test]
    fn finite_size_correction_exceeds_asymptotic() {
        for n in [100usize, 1000, 10_000, 100_000] {
            let base = m_mn(n, 0.3);
            let fin = m_mn_finite(n, 0.3);
            assert!(fin > base, "n={n}");
        }
    }

    #[test]
    fn finite_size_correction_vanishes_asymptotically() {
        let ratio_small = m_mn_finite(1_000, 0.3) / m_mn(1_000, 0.3);
        let ratio_large = m_mn_finite(10_000_000, 0.3) / m_mn(10_000_000, 0.3);
        assert!(ratio_small > ratio_large, "{ratio_small} vs {ratio_large}");
        assert!(ratio_large < 1.2);
    }

    #[test]
    fn related_work_ordering_at_small_theta() {
        // For θ < 0.409: binary GT (1.44) < Karimi-b (1.515) < Karimi-a
        // (1.72) < ℓ1 (2.0) < MN; IT threshold is far below all of them.
        let (n, theta) = (100_000usize, 0.3);
        let k = k_of(n, theta);
        let gt = m_binary_gt(n, k);
        let kb = m_karimi_b(n, k);
        let ka = m_karimi_a(n, k);
        let l1 = m_l1(n, k);
        let mn = m_mn(n, theta);
        let it = m_information_theoretic(n, k);
        assert!(it < gt && gt < kb && kb < ka && ka < l1 && l1 < mn);
    }

    #[test]
    fn theta_limit_value() {
        assert!((binary_gt_theta_limit() - 0.4093).abs() < 1e-3);
    }

    #[test]
    fn basis_pursuit_dominates_l1_form() {
        // (2+o(1))k ln n ≥ (2+o(1))k ln(n/k).
        let (n, k) = (10_000, 16);
        assert!(m_basis_pursuit(n, k) > m_l1(n, k));
    }
}
