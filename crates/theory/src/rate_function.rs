//! Lemma 9's annealed rate function and Lemma 10's critical constant.
//!
//! For `m = c·k·ln(n/k)/ln k` queries, the expected number of consistent
//! impostor vectors with overlap `ℓ` satisfies
//! `n⁻¹·ln E[Z_{k,ℓ}] ≤ f_{n,k}(ℓ)` with
//!
//! ```text
//! f_{n,k}(ℓ) = (k/n)·H(ℓ/k) + (1−k/n)·H((k−ℓ)/(n−k))
//!              − (c·k/n·ln(n/k) / (2·ln k)) · ln(2π·(1−ℓ/k)·k)
//! ```
//!
//! Reconstruction is unique w.h.p. when `sup_ℓ f < 0` over the small-overlap
//! regime `0 ≤ ℓ ≤ k − γ·ln k` (large overlaps are excluded separately by
//! the coupon-collector argument, Proposition 11). Lemma 10 shows the sup
//! turns negative exactly when `c > 2 + o(1)` — the Theorem 2 threshold.

use crate::entropy::h;
use crate::thresholds::GAMMA_STAR;

/// Convert a query count `m` into the paper's constant
/// `c = m·ln k / (k·ln(n/k))`.
///
/// # Panics
/// Panics unless `2 ≤ k < n` (the parameterization needs `ln k > 0`).
pub fn c_of_m(n: usize, k: usize, m: f64) -> f64 {
    assert!(k >= 2 && k < n, "need 2 ≤ k < n, got k={k}, n={n}");
    m * (k as f64).ln() / (k as f64 * (n as f64 / k as f64).ln())
}

/// Inverse of [`c_of_m`].
pub fn m_of_c(n: usize, k: usize, c: f64) -> f64 {
    assert!(k >= 2 && k < n, "need 2 ≤ k < n, got k={k}, n={n}");
    c * k as f64 * (n as f64 / k as f64).ln() / (k as f64).ln()
}

/// Largest overlap covered by the first-moment regime:
/// `ℓ_max = k − γ·ln k` (clamped to `[0, k−1]`).
pub fn l_max(k: usize) -> usize {
    let cut = k as f64 - GAMMA_STAR * (k as f64).ln();
    (cut.floor().max(0.0) as usize).min(k.saturating_sub(1))
}

/// Evaluate `f_{n,k}(ℓ)` at overlap `ℓ` for `m` queries.
///
/// # Panics
/// Panics unless `2 ≤ k < n` and `ℓ < k`.
pub fn rate(n: usize, k: usize, m: f64, l: usize) -> f64 {
    assert!(l < k, "rate function needs ℓ < k, got ℓ={l}, k={k}");
    let c = c_of_m(n, k, m);
    let (n_f, k_f, l_f) = (n as f64, k as f64, l as f64);
    let kn = k_f / n_f;
    let entropy_terms = kn * h(l_f / k_f) + (1.0 - kn) * h((k_f - l_f) / (n_f - k_f));
    let penalty = c * kn * (n_f / k_f).ln() / (2.0 * k_f.ln())
        * (2.0 * std::f64::consts::PI * (1.0 - l_f / k_f) * k_f).ln();
    entropy_terms - penalty
}

/// Maximize `f_{n,k}` over the valid overlap range; returns `(ℓ*, f(ℓ*))`.
///
/// The proof of Lemma 10 shows `f` is unimodal with maximizer at
/// `ℓ = Θ(k²/n)`; we scan a logarithmic grid around that scale plus the
/// boundary points, then refine with a local integer hill-climb. Exact
/// enough for the harness overlays (and cheap at any `n`).
pub fn sup_rate(n: usize, k: usize, m: f64) -> (usize, f64) {
    let lmax = l_max(k);
    let mut candidates: Vec<usize> = vec![0, lmax];
    // Logarithmic grid over [1, lmax].
    let mut x = 1.0f64;
    while (x as usize) <= lmax {
        candidates.push(x as usize);
        x *= 1.5;
    }
    // The analytic maximizer scale.
    let hat = (k as f64 * k as f64 / n as f64).round() as usize;
    for delta in 0..4 {
        candidates.push((hat + delta).min(lmax));
        candidates.push(hat.saturating_sub(delta).min(lmax));
    }
    candidates.sort_unstable();
    candidates.dedup();
    let mut best = (0usize, f64::NEG_INFINITY);
    for &l in &candidates {
        let v = rate(n, k, m, l);
        if v > best.1 {
            best = (l, v);
        }
    }
    // Local refinement.
    loop {
        let (l, v) = best;
        let mut improved = false;
        for cand in [l.saturating_sub(1), l + 1] {
            if cand <= lmax && cand != l {
                let w = rate(n, k, m, cand);
                if w > v {
                    best = (cand, w);
                    improved = true;
                }
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Whether the annealed bound predicts unique reconstruction at `m` queries.
pub fn predicts_unique(n: usize, k: usize, m: f64) -> bool {
    sup_rate(n, k, m).1 < 0.0
}

/// The critical constant `c*(n, k)`: smallest `c` with `sup_ℓ f < 0`,
/// found by bisection. Lemma 10: `c*(n,k) → 2` as `n → ∞`.
pub fn critical_c(n: usize, k: usize) -> f64 {
    let (mut lo, mut hi) = (1e-3, 64.0);
    debug_assert!(!predicts_unique(n, k, m_of_c(n, k, lo)));
    debug_assert!(predicts_unique(n, k, m_of_c(n, k, hi)));
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if predicts_unique(n, k, m_of_c(n, k, mid)) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thresholds::k_of;

    #[test]
    fn c_and_m_are_inverse() {
        let (n, k) = (100_000, 32);
        for c in [0.5, 1.0, 2.0, 3.7] {
            let m = m_of_c(n, k, c);
            assert!((c_of_m(n, k, m) - c).abs() < 1e-12);
        }
    }

    #[test]
    fn rate_decreases_with_m() {
        let (n, k) = (100_000, 32);
        for l in [0usize, 4, 16, 25] {
            let lo = rate(n, k, 200.0, l);
            let hi = rate(n, k, 400.0, l);
            assert!(hi < lo, "ℓ={l}");
        }
    }

    #[test]
    fn sup_is_at_least_every_grid_point() {
        let (n, k) = (10_000, 100);
        let m = 500.0;
        let (_, sup) = sup_rate(n, k, m);
        for l in 0..l_max(k) {
            assert!(rate(n, k, m, l) <= sup + 1e-12, "ℓ={l} beats the sup");
        }
    }

    #[test]
    fn critical_c_near_two_and_converging() {
        // Lemma 10: c* → 2. The finite-size c* differs; it must approach 2
        // as n grows with θ fixed.
        let theta = 0.5;
        let c_small = critical_c(10_000, k_of(10_000, theta));
        let c_large = critical_c(10_000_000_000, k_of(10_000_000_000, theta));
        assert!(
            (c_large - 2.0).abs() < (c_small - 2.0).abs() + 1e-9,
            "c*(10^4)={c_small}, c*(10^10)={c_large}"
        );
        assert!((0.8..4.0).contains(&c_small), "c_small={c_small}");
        assert!((1.2..3.0).contains(&c_large), "c_large={c_large}");
    }

    #[test]
    fn uniqueness_monotone_in_m() {
        let (n, k) = (1_000_000, 1000);
        let mstar = m_of_c(n, k, critical_c(n, k));
        assert!(!predicts_unique(n, k, mstar * 0.9));
        assert!(predicts_unique(n, k, mstar * 1.1));
    }

    #[test]
    fn l_max_leaves_headroom_below_k() {
        for k in [2usize, 8, 100, 10_000] {
            let lm = l_max(k);
            assert!(lm < k);
        }
        // γ ln k below k.
        assert_eq!(l_max(100), (100.0 - GAMMA_STAR * 100f64.ln()).floor() as usize);
    }

    #[test]
    #[should_panic(expected = "ℓ < k")]
    fn rate_rejects_l_equal_k() {
        let _ = rate(1000, 10, 100.0, 10);
    }

    #[test]
    fn predicts_failure_at_counting_bound() {
        // At m just above the *sequential* counting bound (half the parallel
        // threshold), the annealed bound must still see impostors.
        let (n, k) = (1_000_000, 1000);
        let m_seq = crate::thresholds::m_counting_bound(n, k);
        assert!(!predicts_unique(n, k, m_seq));
    }
}
