//! First-moment curves for the Theorem 2 machinery.
//!
//! `E[Z_{k,ℓ}]` — the expected number of impostor vectors at overlap `ℓ`
//! consistent with all `m` query results — is bounded by (Lemma 8 with the
//! Jensen-gap simplification of Lemma 13):
//!
//! ```text
//! E[Z_{k,ℓ}] ≤ C(k,ℓ)·C(n−k, k−ℓ)·(2π·(k−ℓ))^{−m/2}
//! ```
//!
//! using that a query stays consistent with probability
//! `≈ (2π·E[X])^{−1/2}` where `X ~ Bin(Γ, 2(1−ℓ/k)k/n)` has mean exactly
//! `k − ℓ` at the paper's `Γ = n/2`. These exact finite-`n` curves are what
//! the `it_threshold` experiment overlays on simulated uniqueness
//! frequencies; their zero crossing converges to Theorem 2's `m_IT` as
//! `n → ∞` (the `ln 2π` slack shrinks like `1/ln k`).

use crate::rate_function::l_max;
use crate::special::ln_choose;

/// `ln` of the first-moment bound on `E[Z_{k,ℓ}]`.
///
/// # Panics
/// Panics unless `1 ≤ k ≤ n − 1` and `ℓ < k`.
pub fn ln_first_moment(n: usize, k: usize, m: f64, l: usize) -> f64 {
    assert!(k >= 1 && k < n, "need 1 ≤ k < n");
    assert!(l < k, "overlap must satisfy ℓ < k");
    let vectors = ln_choose(k as u64, l as u64) + ln_choose((n - k) as u64, (k - l) as u64);
    let per_query = -0.5 * (2.0 * std::f64::consts::PI * (k - l) as f64).ln();
    vectors + m * per_query
}

/// `ln Σ_ℓ E[Z_{k,ℓ}]` over the first-moment regime `ℓ ≤ ℓ_max(k)`
/// (log-sum-exp; large overlaps are handled by Proposition 11 instead).
pub fn ln_total_first_moment(n: usize, k: usize, m: f64) -> f64 {
    let lmax = l_max(k);
    let terms: Vec<f64> = (0..=lmax).map(|l| ln_first_moment(n, k, m, l)).collect();
    log_sum_exp(&terms)
}

/// Whether the first moment predicts a unique consistent vector
/// (`Σ E[Z] < 1`, i.e. Markov gives failure probability < Σ E[Z]).
pub fn predicts_unique(n: usize, k: usize, m: f64) -> bool {
    ln_total_first_moment(n, k, m) < 0.0
}

/// The query count where the first moment crosses 1, by bisection — the
/// exact finite-`n` analogue of Theorem 2's threshold.
pub fn first_moment_threshold(n: usize, k: usize) -> f64 {
    let mut lo = 1.0f64;
    let mut hi = 16.0 * crate::thresholds::m_information_theoretic(n, k).max(8.0);
    debug_assert!(predicts_unique(n, k, hi), "upper bracket too small");
    if predicts_unique(n, k, lo) {
        return lo;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if predicts_unique(n, k, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

fn log_sum_exp(xs: &[f64]) -> f64 {
    let mx = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !mx.is_finite() {
        return mx;
    }
    mx + xs.iter().map(|x| (x - mx).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thresholds::{k_of, m_information_theoretic};

    #[test]
    fn moment_decreases_in_m() {
        let (n, k) = (100_000, 32);
        for l in [0usize, 5, 20] {
            assert!(ln_first_moment(n, k, 300.0, l) < ln_first_moment(n, k, 150.0, l));
        }
    }

    #[test]
    fn total_dominates_each_term() {
        let (n, k, m) = (10_000, 50, 400.0);
        let total = ln_total_first_moment(n, k, m);
        for l in 0..=l_max(k) {
            assert!(ln_first_moment(n, k, m, l) <= total + 1e-12);
        }
    }

    #[test]
    fn threshold_brackets_behaviour() {
        let (n, k) = (100_000, 32);
        let t = first_moment_threshold(n, k);
        assert!(predicts_unique(n, k, t * 1.05));
        assert!(!predicts_unique(n, k, t * 0.95));
    }

    #[test]
    fn threshold_converges_to_theorem2_scale() {
        // Ratio first-moment-threshold / m_IT must lie below ~1.1 and climb
        // toward 1 as n grows (the ln 2π slack decays like 1/ln k).
        let theta = 0.4;
        let mut last_ratio = 0.0;
        for &n in &[10_000usize, 10_000_000, 10_000_000_000] {
            let k = k_of(n, theta);
            let ratio = first_moment_threshold(n, k) / m_information_theoretic(n, k);
            assert!(ratio < 1.15, "n={n}: ratio={ratio}");
            assert!(ratio > last_ratio * 0.98, "ratio should trend upward");
            last_ratio = ratio;
        }
        assert!(last_ratio > 0.6, "ratio={last_ratio} too far from 1");
    }

    #[test]
    fn log_sum_exp_stability() {
        let xs = [-1000.0, -1001.0, -999.5];
        let lse = log_sum_exp(&xs);
        assert!(lse > -999.5 && lse < -998.0);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn small_k_edge_case() {
        // k = 1: only ℓ = 0 valid; should still evaluate.
        let v = ln_first_moment(100, 1, 10.0, 0);
        assert!(v.is_finite());
        assert!(ln_total_first_moment(100, 1, 10.0).is_finite());
    }

    #[test]
    #[should_panic(expected = "ℓ < k")]
    fn rejects_full_overlap() {
        let _ = ln_first_moment(100, 5, 10.0, 5);
    }
}
