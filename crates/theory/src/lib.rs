#![warn(missing_docs)]

//! Closed-form theory from *“On the Parallel Reconstruction from Pooled
//! Data”*: every threshold, bound and rate function the paper derives,
//! evaluated numerically so the experiment harness can overlay theory on
//! simulation and cross-check the phase-transition locations.
//!
//! Contents map directly onto the paper:
//!
//! * [`thresholds`] — Eq. (1) sequential counting bound, Eq. (2) / Theorem 2
//!   parallel information-theoretic threshold, Theorem 1's MN threshold with
//!   the finite-size Remark of §V, plus the related-work constants (Karimi
//!   et al., binary group testing, Basis Pursuit).
//! * [`entropy`] — natural-log entropy `H(p)`, KL divergence, and exact
//!   `ln C(n,k)` via a Lanczos log-gamma ([`special`]).
//! * [`rate_function`] — Lemma 9's annealed rate `f_{n,k}(ℓ)`, its maximizer
//!   and the critical constant `c` of Lemma 10 (→ 2 as `n → ∞`).
//! * [`alpha`] — Corollary 6's score-threshold optimization: conditions (6)
//!   and (7), the optimal `α`, and the minimal query constant `d(θ)`.
//! * [`chernoff`] — Lemma 12 tail bounds and union-bound helpers.
//! * [`moments`] — first-moment curves `E[Z_{k,ℓ}]` (Lemma 8/9) used by the
//!   Theorem 2 empirical check.
//!
//! Two modules extend the analysis to the paper's own §VI open problems:
//!
//! * [`gamma_opt`] — Theorem 1 redone for an arbitrary pool fraction
//!   `c = Γ/n`: the generalized constant `d(c,θ) = (2γ(c)/c)·(1+√θ)/(1−√θ)`
//!   and the (monotone) pool-size trade-off behind the `gamma_sweep`
//!   experiment.
//! * [`threshold_gt`] — trigger probabilities, score separation and
//!   pool-size/query-count design formulas for threshold group testing.
//!
//! The crate is dependency-free and entirely deterministic, so every other
//! crate can call into it from tests.

pub mod alpha;
pub mod chernoff;
pub mod entropy;
pub mod gamma_opt;
pub mod moments;
pub mod rate_function;
pub mod special;
pub mod threshold_gt;
pub mod thresholds;

pub use thresholds::{k_of, m_information_theoretic, m_mn, m_mn_finite, GAMMA_STAR};
