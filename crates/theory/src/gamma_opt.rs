//! Pool-size generalization of Theorem 1 — and a correction the
//! generalization surfaces.
//!
//! The paper fixes the pool size at `Γ = n/2` "for concreteness"; nothing in
//! the Chernoff analysis of §III requires that choice. Redoing Corollary 6
//! for an arbitrary pool fraction `c = Γ/n` (so `γ(c) = 1 − e^{−c}` replaces
//! `1 − 1/√e` and `E[Δ_i] = c·m` replaces `m/2`) gives the **verbatim
//! extension** of the paper's constant,
//!
//! ```text
//! d_ext(c, θ) = (2γ(c)/c) · (1+√θ)/(1−√θ),          (paper's route)
//! ```
//!
//! which recovers Theorem 1's `4(1−1/√e)(1+√θ)/(1−√θ)` at `c = 1/2` and is
//! *decreasing* in `c` — it predicts that bigger pools always help.
//!
//! Simulation says the opposite (see the `gamma_sweep` experiment and the
//! `pooled-core::mn_general` tests): at fixed `m`, recovery degrades
//! monotonically as `c` grows. The discrepancy sits in the paper's Eq. (5),
//! which assigns one- and zero-entries a *common* conditional mean
//! `(1±δ)γkm/2`. By the paper's own Corollary 4 the means differ — a
//! one-entry's neighborhood draws aim at `k−1` remaining one-entries, not
//! `k` — which shifts the usable score separation from `c·m` down to
//!
//! ```text
//! separation = c·m·(1 − γ(c)),
//! ```
//!
//! a `Θ(m)` correction that the `(1+o(1))` in Eq. (5) silently absorbs. It
//! is harmless at small `c` (the regime the paper simulates: `1−γ(1/2) ≈
//! 0.61`) but dominant for `c ≥ 1`. Propagating it through the same
//! Chernoff optimization yields the **shift-corrected constant**
//!
//! ```text
//! d_cor(c, θ) = (2γ(c) / (c·(1−γ(c))²)) · (1+√θ)/(1−√θ),
//! ```
//!
//! which is *increasing* in `c`: per query, smaller pools are never worse
//! in this model, and the paper's `c = 1/2` costs ≈ 2.1× more queries than
//! the `c → 0` limit while `c = 1` costs ≈ 2.2× more than `c = 1/2`.
//! Both formulas come from upper-bound arguments (Chernoff + union bound),
//! so their absolute level is conservative; what simulation can and does
//! verify is the **shape** `m*(c)/m*(1/2)`, which follows `d_cor`, not
//! `d_ext`.

/// Distinct-query fraction `γ(c) = 1 − e^{−c}` at pool fraction `c = Γ/n`:
/// the probability that a given entry lands in a given query at least once.
pub fn gamma_of(c: f64) -> f64 {
    assert!(c > 0.0, "pool fraction must be positive, got {c}");
    -(-c).exp_m1()
}

/// The verbatim pool-size extension of Theorem 1's constant,
/// `d_ext(c, θ) = (2γ(c)/c)·(1+√θ)/(1−√θ)` — the paper's own derivation
/// with `1/2` replaced by `c`. Decreasing in `c`; known-optimistic for
/// large `c` (see the module docs).
///
/// # Panics
/// Panics if `θ ∉ (0, 1)` or `c ≤ 0`.
pub fn d_paper_extension(c: f64, theta: f64) -> f64 {
    assert!(theta > 0.0 && theta < 1.0, "need 0 < θ < 1, got {theta}");
    2.0 * gamma_of(c) / c * (1.0 + theta.sqrt()) / (1.0 - theta.sqrt())
}

/// The mean-shift-corrected constant
/// `d_cor(c, θ) = (2γ(c)/(c·(1−γ(c))²))·(1+√θ)/(1−√θ)`, obtained by using
/// Corollary 4's exact conditional means (separation `c·m·(1−γ(c))`)
/// instead of Eq. (5)'s common approximation. Increasing in `c`.
///
/// # Panics
/// Panics if `θ ∉ (0, 1)` or `c ≤ 0`.
pub fn d_shift_corrected(c: f64, theta: f64) -> f64 {
    assert!(theta > 0.0 && theta < 1.0, "need 0 < θ < 1, got {theta}");
    let g = gamma_of(c);
    2.0 * g / (c * (1.0 - g) * (1.0 - g)) * (1.0 + theta.sqrt()) / (1.0 - theta.sqrt())
}

/// Query threshold from the paper-extension constant:
/// `m = d_ext(c,θ)·k·ln(n/k)`. Recovers `thresholds::m_mn` at `c = 1/2`.
pub fn m_mn_extension(n: usize, theta: f64, c: f64) -> f64 {
    let k = crate::thresholds::k_of(n, theta) as f64;
    d_paper_extension(c, theta) * k * (n as f64 / k).ln()
}

/// The empirically testable *shape*: predicted query-count ratio
/// `m*(c)/m*(1/2) = d_cor(c,θ)/d_cor(1/2,θ)` at matched `(n, θ)`.
pub fn relative_cost_vs_half(c: f64, theta: f64) -> f64 {
    d_shift_corrected(c, theta) / d_shift_corrected(0.5, theta)
}

/// The optimal score-split point of the generalized Corollary 6 at
/// separation budget `d`: `α = (d − d₀/ (1+√θ)·…)`… evaluated directly as
/// `α = √θ/(1+√θ)` at the minimal `d` and clamped linear interpolation
/// otherwise: `α(c, d) = (d − d_min·(1−√θ)/(1+√θ))/(2d)·(1+√θ)²/…`.
///
/// In practice the decoder never needs `α` (it ranks, it does not
/// threshold); this is exposed for the threshold-visualization experiment.
/// At `d = d_cor(c, θ)` it returns exactly `√θ/(1+√θ)`.
pub fn alpha_general(c: f64, theta: f64, d: f64) -> f64 {
    // Both Chernoff conditions use A = (1−θ)·d/d_unit with d_unit(c) the
    // θ-free part of d_cor; equality of the two conditions gives
    // α = (1 − √(θ_eff))-style split. Solve the same quadratic as the
    // paper: α²·A = θ, (1−α)²·A = 1 ⇒ at the critical A, α = √θ/(1+√θ);
    // above it, α can sit anywhere in the feasible window — return the
    // midpoint of that window.
    let g = gamma_of(c);
    let unit = 2.0 * g / (c * (1.0 - g) * (1.0 - g));
    let a_cap = (1.0 - theta) * d / unit;
    let lo = (theta / a_cap).sqrt().min(1.0); // smallest feasible α
    let hi = 1.0 - (1.0 / a_cap).sqrt().max(0.0); // largest feasible α
    ((lo + hi) / 2.0).clamp(0.0, 1.0)
}

/// Grid-search the pool fraction minimizing `d_cor(c, θ)` over
/// `[c_min, c_max]`. Returns `(c*, d_cor(c*, θ))`.
///
/// Because `d_cor` is strictly increasing, the minimizer is always `c_min`
/// — the function exists so experiments *demonstrate* the monotonicity
/// (and its direction, which contradicts the naive extension) rather than
/// assume it.
pub fn optimal_pool_fraction(theta: f64, c_min: f64, c_max: f64, grid: usize) -> (f64, f64) {
    assert!(c_min > 0.0 && c_max >= c_min && grid >= 2, "bad pool-fraction grid");
    let mut best = (c_min, d_shift_corrected(c_min, theta));
    for i in 0..=grid {
        let c = c_min + (c_max - c_min) * i as f64 / grid as f64;
        let d = d_shift_corrected(c, theta);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thresholds::{m_mn, GAMMA_STAR};

    #[test]
    fn gamma_of_half_is_gamma_star() {
        assert!((gamma_of(0.5) - GAMMA_STAR).abs() < 1e-15);
    }

    #[test]
    fn gamma_of_limits() {
        assert!(gamma_of(1e-9) < 2e-9); // γ(c) ≈ c for small c
        assert!((gamma_of(50.0) - 1.0).abs() < 1e-15); // saturates at 1
    }

    #[test]
    fn extension_recovers_theorem_1_at_half() {
        for theta in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let d = d_paper_extension(0.5, theta);
            let want = 4.0 * GAMMA_STAR * (1.0 + theta.sqrt()) / (1.0 - theta.sqrt());
            assert!((d - want).abs() < 1e-12, "θ={theta}: {d} vs {want}");
        }
        let (a, b) = (m_mn_extension(1000, 0.3, 0.5), m_mn(1000, 0.3));
        assert!((a - b).abs() / b < 1e-12);
    }

    #[test]
    fn extension_is_decreasing_but_corrected_is_increasing() {
        let mut ext_last = f64::INFINITY;
        let mut cor_last = 0.0f64;
        for i in 1..=40 {
            let c = i as f64 / 10.0; // 0.1 … 4.0
            let ext = d_paper_extension(c, 0.3);
            let cor = d_shift_corrected(c, 0.3);
            assert!(ext < ext_last, "d_ext({c}) = {ext} not below {ext_last}");
            assert!(cor > cor_last, "d_cor({c}) = {cor} not above {cor_last}");
            ext_last = ext;
            cor_last = cor;
        }
    }

    #[test]
    fn corrected_exceeds_extension_by_inverse_shift_factor() {
        for c in [0.1, 0.5, 1.0, 2.0] {
            let ratio = d_shift_corrected(c, 0.3) / d_paper_extension(c, 0.3);
            let want = 1.0 / ((1.0 - gamma_of(c)) * (1.0 - gamma_of(c)));
            assert!((ratio - want).abs() < 1e-12, "c={c}");
        }
    }

    #[test]
    fn relative_cost_matches_simulation_direction() {
        // The mn_general tests measure: c = 1 clearly worse than c = 1/2,
        // c = 1/4 slightly better, c = 1/8 better still.
        assert!(relative_cost_vs_half(1.0, 0.3) > 2.0);
        assert!(relative_cost_vs_half(0.25, 0.3) < 0.75);
        assert!(relative_cost_vs_half(0.125, 0.3) < relative_cost_vs_half(0.25, 0.3));
        assert!((relative_cost_vs_half(0.5, 0.3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_pool_limit_of_corrected_constant() {
        // c → 0: γ(c)/c → 1 and (1−γ)² → 1, so the θ-free unit → 2.
        let unit = d_shift_corrected(1e-6, 0.3) / ((1.0 + 0.3f64.sqrt()) / (1.0 - 0.3f64.sqrt()));
        assert!((unit - 2.0).abs() < 1e-4, "unit={unit}");
    }

    #[test]
    fn optimal_pool_fraction_is_the_floor() {
        let (c_star, d_star) = optimal_pool_fraction(0.3, 0.05, 2.0, 200);
        assert!((c_star - 0.05).abs() < 1e-12);
        assert!((d_star - d_shift_corrected(0.05, 0.3)).abs() < 1e-12);
    }

    #[test]
    fn alpha_at_critical_d_is_sqrt_theta_split() {
        for theta in [0.1, 0.3, 0.5] {
            for c in [0.25, 0.5, 1.0] {
                let d = d_shift_corrected(c, theta);
                let a = alpha_general(c, theta, d);
                let want = theta.sqrt() / (1.0 + theta.sqrt());
                assert!((a - want).abs() < 1e-9, "θ={theta} c={c}: α={a} vs {want}");
            }
        }
    }

    #[test]
    fn alpha_window_widens_above_critical_d() {
        let d_crit = d_shift_corrected(0.5, 0.3);
        let a_crit = alpha_general(0.5, 0.3, d_crit);
        let a_wide = alpha_general(0.5, 0.3, 4.0 * d_crit);
        // Midpoint moves but stays in (0, 1).
        assert!(a_wide > 0.0 && a_wide < 1.0);
        assert!((a_crit - a_wide).abs() > 1e-3);
    }

    #[test]
    #[should_panic(expected = "0 < θ < 1")]
    fn rejects_theta_out_of_range() {
        let _ = d_paper_extension(0.5, 1.0);
    }
}
