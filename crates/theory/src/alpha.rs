//! Corollary 6: the score-threshold optimization behind Theorem 1.
//!
//! With `m = d·k·ln(n/k)` queries, the MN proof separates one-entry scores
//! from zero-entry scores with a threshold placed at `(1−α)m/2` above the
//! conditional mean. Separation holds w.h.p. when both
//!
//! ```text
//! (θ−1)·α²·d / (4γ) + θ < 0        (one-entries stay above)      — (6)
//! (θ−1)·(1−α)²·d / (4γ) + 1 < 0    (zero-entries stay below)     — (7)
//! ```
//!
//! The first is decreasing in α, the second increasing; equalizing them
//! gives `α = (d − 4γ)/(2d)` … wait — solving the paper's balance equation
//! yields `α*` below, and the minimal feasible `d` is
//! `d(θ) = 4γ·(1+√θ)/(1−√θ)`, which is exactly Theorem 1's constant.

use crate::thresholds::GAMMA_STAR;

/// Exponent of condition (6): negative ⇔ all one-entries clear the
/// threshold w.h.p.
pub fn one_entry_exponent(theta: f64, alpha: f64, d: f64) -> f64 {
    (theta - 1.0) * alpha * alpha * d / (4.0 * GAMMA_STAR) + theta
}

/// Exponent of condition (7): negative ⇔ all zero-entries stay below the
/// threshold w.h.p.
pub fn zero_entry_exponent(theta: f64, alpha: f64, d: f64) -> f64 {
    (theta - 1.0) * (1.0 - alpha) * (1.0 - alpha) * d / (4.0 * GAMMA_STAR) + 1.0
}

/// The balancing `α` that makes the two exponents equal:
/// from `(θ−1)α²d/(4γ) + θ = (θ−1)(1−α)²d/(4γ) + 1` one gets
/// `α = (d − 4γ)/(2d)` … in the paper's `o(1)`-free form
/// `α* = (d − 4γ)/(2d)`.
pub fn optimal_alpha(d: f64) -> f64 {
    (d - 4.0 * GAMMA_STAR) / (2.0 * d)
}

/// The minimal query constant `d(θ) = 4γ(1+√θ)/(1−√θ)` of Theorem 1.
///
/// # Panics
/// Panics if `θ ∉ (0, 1)`.
pub fn d_min(theta: f64) -> f64 {
    assert!(theta > 0.0 && theta < 1.0, "need 0 < θ < 1, got {theta}");
    4.0 * GAMMA_STAR * (1.0 + theta.sqrt()) / (1.0 - theta.sqrt())
}

/// Whether any `α ∈ (0,1)` satisfies both separation conditions at `(θ, d)`.
pub fn separation_feasible(theta: f64, d: f64) -> bool {
    let alpha = optimal_alpha(d);
    if !(0.0..1.0).contains(&alpha) {
        return false;
    }
    one_entry_exponent(theta, alpha, d) < 0.0 && zero_entry_exponent(theta, alpha, d) < 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponents_balance_at_optimal_alpha() {
        for theta in [0.1, 0.3, 0.5, 0.7] {
            let d = d_min(theta) * 1.3;
            let a = optimal_alpha(d);
            let e1 = one_entry_exponent(theta, a, d);
            let e0 = zero_entry_exponent(theta, a, d);
            assert!((e1 - e0).abs() < 1e-12, "θ={theta}: {e1} vs {e0}");
        }
    }

    #[test]
    fn feasible_just_above_threshold() {
        for theta in [0.1, 0.2, 0.3, 0.4, 0.6, 0.8] {
            let d = d_min(theta) * 1.01;
            assert!(separation_feasible(theta, d), "θ={theta}");
        }
    }

    #[test]
    fn infeasible_below_threshold() {
        for theta in [0.1, 0.2, 0.3, 0.4, 0.6, 0.8] {
            let d = d_min(theta) * 0.99;
            // Not just the balanced α — *no* α may work below d(θ).
            let works = (1..100).map(|i| i as f64 / 100.0).any(|a| {
                one_entry_exponent(theta, a, d) < 0.0 && zero_entry_exponent(theta, a, d) < 0.0
            });
            assert!(!works, "θ={theta}: separation should fail below d_min");
        }
    }

    #[test]
    fn d_min_matches_theorem1_prefactor() {
        // Theorem 1: m_MN = d(θ)·k·ln(n/k) with d(θ) = 4γ(1+√θ)/(1−√θ).
        let theta = 0.3;
        let d = d_min(theta);
        let expect = 4.0 * GAMMA_STAR * (1.0 + theta.sqrt()) / (1.0 - theta.sqrt());
        assert!((d - expect).abs() < 1e-15);
        assert!((d - 5.386).abs() < 1e-2, "d(0.3)={d}");
    }

    #[test]
    fn d_min_diverges_toward_theta_one() {
        assert!(d_min(0.99) > d_min(0.9));
        assert!(d_min(0.999) > 1000.0 * GAMMA_STAR);
    }

    #[test]
    fn optimal_alpha_in_unit_interval_when_d_large() {
        for theta in [0.1, 0.5, 0.9] {
            let d = d_min(theta) * 1.5;
            let a = optimal_alpha(d);
            assert!((0.0..1.0).contains(&a), "θ={theta} α={a}");
        }
    }
}
