//! Lemma 12: multiplicative Chernoff bounds, plus the union-bound helpers
//! the proofs of Lemma 3 and Corollary 6 chain them with.

/// Upper-tail bound: `P[X > (1+δ)np] ≤ exp(−npδ²/(2+δ))` for
/// `X ~ Bin(n, p)` and `δ > 0`.
pub fn upper_tail(np: f64, delta: f64) -> f64 {
    assert!(delta > 0.0, "upper tail needs δ > 0");
    (-np * delta * delta / (2.0 + delta)).exp()
}

/// Lower-tail bound: `P[X < (1−δ)np] ≤ exp(−npδ²/2)` for `δ ∈ (0, 1)`.
pub fn lower_tail(np: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "lower tail needs δ ∈ (0,1)");
    (-np * delta * delta / 2.0).exp()
}

/// Two-sided bound via both tails.
pub fn two_sided(np: f64, delta: f64) -> f64 {
    (upper_tail(np, delta) + lower_tail(np, delta)).min(1.0)
}

/// The deviation `δ` that makes the union bound over `count` events vanish
/// at rate `n^{−extra}`: solves `count · exp(−np·δ²/2) = n^{−extra}`.
pub fn union_bound_delta(np: f64, count: f64, n: f64, extra: f64) -> f64 {
    assert!(np > 0.0 && count >= 1.0 && n > 1.0);
    ((2.0 / np) * (count.ln() + extra * n.ln())).sqrt()
}

/// Lemma 3's concrete instantiation: the `O(√(m ln n))` deviation window for
/// the degrees `Δ_i ~ Bin(mΓ, 1/n)` that fails with probability `n^{−ω(1)}`.
pub fn degree_window(m: f64, n: f64, c: f64) -> f64 {
    (c * m * n.ln()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_probabilities() {
        for np in [1.0, 10.0, 1000.0] {
            for delta in [0.1, 0.5, 0.9] {
                assert!((0.0..=1.0).contains(&upper_tail(np, delta)));
                assert!((0.0..=1.0).contains(&lower_tail(np, delta)));
                assert!((0.0..=1.0).contains(&two_sided(np, delta)));
            }
        }
    }

    #[test]
    fn tails_shrink_with_mean_and_delta() {
        assert!(upper_tail(100.0, 0.5) < upper_tail(10.0, 0.5));
        assert!(upper_tail(100.0, 0.9) < upper_tail(100.0, 0.1));
        assert!(lower_tail(100.0, 0.5) < lower_tail(10.0, 0.5));
    }

    #[test]
    fn lower_tail_is_tighter_than_upper() {
        // exp(−npδ²/2) ≤ exp(−npδ²/(2+δ)).
        for delta in [0.1, 0.5, 0.9] {
            assert!(lower_tail(50.0, delta) <= upper_tail(50.0, delta));
        }
    }

    #[test]
    fn union_bound_delta_suffices() {
        let np = 10_000.0;
        let n = 1_000_000.0;
        let delta = union_bound_delta(np, n, n, 1.0);
        let failure = n * lower_tail(np, delta.min(0.999));
        assert!(failure <= 1.0 / n * 1.001, "union bound failed: {failure}");
    }

    #[test]
    fn degree_window_matches_lemma3_shape() {
        // Window grows like √m and √ln n.
        let w1 = degree_window(100.0, 1000.0, 1.0);
        let w2 = degree_window(400.0, 1000.0, 1.0);
        assert!((w2 / w1 - 2.0).abs() < 1e-12);
        let w3 = degree_window(100.0, 1000.0 * 1000.0, 1.0);
        assert!((w3 / w1 - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empirical_binomial_respects_chernoff() {
        // Monte-Carlo check: frequency of exceeding (1+δ)np never beats the
        // bound by more than statistical noise.
        use pooled_rng_test_support::simple_binomial;
        let (n_trials, p, delta) = (2000u64, 0.05, 0.5);
        let np = n_trials as f64 * p;
        let bound = upper_tail(np, delta);
        let mut exceed = 0u32;
        let reps = 2000;
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..reps {
            let x = simple_binomial(n_trials, p, &mut state);
            if (x as f64) > (1.0 + delta) * np {
                exceed += 1;
            }
        }
        let freq = exceed as f64 / reps as f64;
        assert!(freq <= bound * 3.0 + 0.01, "freq={freq} bound={bound}");
    }

    /// Tiny self-contained binomial sampler so this dependency-free crate
    /// can Monte-Carlo its own bounds in tests.
    mod pooled_rng_test_support {
        pub fn simple_binomial(n: u64, p: f64, state: &mut u64) -> u64 {
            let mut count = 0;
            for _ in 0..n {
                // xorshift64*
                *state ^= *state >> 12;
                *state ^= *state << 25;
                *state ^= *state >> 27;
                let u = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
                if u < p {
                    count += 1;
                }
            }
            count
        }
    }
}
