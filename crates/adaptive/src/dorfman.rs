//! Counting Dorfman: the classic two-stage screen with additive queries.
//!
//! Dorfman's 1943 scheme (the paper's reference [13], the origin of the
//! whole field) pools blood samples in groups and retests members of
//! positive groups individually. With *additive* queries the scheme gets
//! two quantitative upgrades: a group whose count equals its size needs no
//! stage-2 at all, and within a flagged group the last member's value is
//! inferred from the group count minus the first `s−1` individual results.
//!
//! Query count in expectation: `⌈n/g⌉ + E[#unresolved groups]·(g−1)`,
//! minimized near `g ≈ √(n/k)·…` — [`optimal_group_size`] scans the exact
//! hypergeometric expectation. Two rounds always; exact recovery always.

use pooled_core::Signal;
use pooled_theory::special::ln_choose;

use crate::oracle::CountOracle;

/// Outcome of a counting-Dorfman run.
#[derive(Clone, Debug)]
pub struct DorfmanResult {
    /// The exactly reconstructed signal.
    pub estimate: Signal,
    /// Total additive queries issued.
    pub queries: usize,
    /// Parallel rounds used (always ≤ 2).
    pub rounds: usize,
    /// Queries per round.
    pub per_round: Vec<usize>,
    /// The group size used in stage 1.
    pub group_size: usize,
}

/// Reconstruct the oracle's signal with group size `g`.
///
/// # Panics
/// Panics if `g == 0`.
pub fn counting_dorfman(oracle: &mut CountOracle, g: usize) -> DorfmanResult {
    assert!(g >= 1, "group size must be positive");
    let n = oracle.n();
    let start = oracle.queries();
    // Stage 1: group counts.
    let mut groups: Vec<(usize, usize, u64)> = Vec::with_capacity(n.div_ceil(g));
    let mut lo = 0;
    while lo < n {
        let hi = (lo + g).min(n);
        let c = oracle.count_range(lo, hi);
        groups.push((lo, hi, c));
        lo = hi;
    }
    oracle.next_round();
    // Stage 2: resolve groups with 0 < count < size.
    let mut ones: Vec<usize> = Vec::new();
    for (lo, hi, c) in groups {
        let size = (hi - lo) as u64;
        if c == 0 {
            continue;
        }
        if c == size {
            ones.extend(lo..hi);
            continue;
        }
        let mut found = 0u64;
        for i in lo..hi - 1 {
            if oracle.count_range(i, i + 1) == 1 {
                ones.push(i);
                found += 1;
            }
        }
        if found < c {
            ones.push(hi - 1); // the last member is inferred, not queried
        }
    }
    oracle.next_round();
    ones.sort_unstable();
    DorfmanResult {
        estimate: Signal::from_support(n, ones),
        queries: oracle.queries() - start,
        rounds: oracle.rounds(),
        per_round: oracle.per_round(),
        group_size: g,
    }
}

/// Exact expected query count of counting Dorfman on a uniform weight-`k`
/// signal: `⌈n/g⌉ + Σ_groups P(0 < count < size)·(size−1)` with the count
/// hypergeometric.
pub fn expected_dorfman_queries(n: usize, k: usize, g: usize) -> f64 {
    assert!(g >= 1 && k <= n, "need g ≥ 1 and k ≤ n");
    let ln_total = ln_choose(n as u64, k as u64);
    let mut expected = 0.0f64;
    let mut lo = 0usize;
    while lo < n {
        let s = g.min(n - lo);
        // P(count = 0) = C(n−s, k)/C(n, k); P(count = s) = C(n−s, k−s)/C(n,k).
        let p0 =
            if k <= n - s { (ln_choose((n - s) as u64, k as u64) - ln_total).exp() } else { 0.0 };
        let ps =
            if k >= s { (ln_choose((n - s) as u64, (k - s) as u64) - ln_total).exp() } else { 0.0 };
        expected += 1.0 + (1.0 - p0 - ps) * (s as f64 - 1.0);
        lo += s;
    }
    expected
}

/// Group size minimizing [`expected_dorfman_queries`], by scanning
/// `g ∈ [1, n]` on a log grid with local refinement.
pub fn optimal_group_size(n: usize, k: usize) -> usize {
    assert!(n >= 1, "need a nonempty signal");
    let mut best = (1usize, expected_dorfman_queries(n, k, 1));
    // Coarse log-spaced scan …
    let mut g = 1f64;
    while g <= n as f64 {
        let gi = g.round() as usize;
        let e = expected_dorfman_queries(n, k, gi);
        if e < best.1 {
            best = (gi, e);
        }
        g *= 1.25;
    }
    // … linear refine around the winner.
    let span = (best.0 / 4).max(2);
    for gi in best.0.saturating_sub(span).max(1)..=(best.0 + span).min(n) {
        let e = expected_dorfman_queries(n, k, gi);
        if e < best.1 {
            best = (gi, e);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_rng::SeedSequence;

    fn run(n: usize, k: usize, g: usize, seed: u64) -> (Signal, DorfmanResult) {
        let seeds = SeedSequence::new(seed);
        let sigma = Signal::random(n, k, &mut seeds.rng());
        let mut oracle = CountOracle::new(&sigma);
        let res = counting_dorfman(&mut oracle, g);
        (sigma, res)
    }

    #[test]
    fn always_exact() {
        for (n, k, g, seed) in [
            (100usize, 5usize, 10usize, 1u64),
            (1000, 8, 11, 2),
            (1000, 0, 25, 3),
            (50, 50, 7, 4),
            (97, 13, 10, 5), // ragged final group
            (10, 3, 1, 6),   // individual testing
            (10, 3, 10, 7),  // single group
        ] {
            let (sigma, res) = run(n, k, g, seed);
            assert_eq!(res.estimate, sigma, "n={n} k={k} g={g}");
        }
    }

    #[test]
    fn two_rounds_at_most() {
        let (_, res) = run(1000, 8, 11, 10);
        assert!(res.rounds <= 2);
        assert_eq!(res.per_round.iter().sum::<usize>(), res.queries);
    }

    #[test]
    fn all_zero_signal_needs_only_stage_one() {
        let (_, res) = run(300, 0, 20, 11);
        assert_eq!(res.queries, 300usize.div_ceil(20));
        assert_eq!(res.rounds, 1);
    }

    #[test]
    fn group_size_one_is_individual_testing() {
        let (_, res) = run(64, 9, 1, 12);
        assert_eq!(res.queries, 64);
        assert_eq!(res.rounds, 1, "every group resolved in stage 1");
    }

    #[test]
    fn expected_queries_matches_simulation() {
        let (n, k, g) = (600usize, 12usize, 8usize);
        let want = expected_dorfman_queries(n, k, g);
        let trials = 300;
        let mut total = 0usize;
        for seed in 0..trials {
            let (_, res) = run(n, k, g, 1000 + seed);
            total += res.queries;
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - want).abs() / want < 0.05, "simulated {mean} vs expected {want}");
    }

    #[test]
    fn optimal_group_size_near_sqrt_rule() {
        // Classical Dorfman: g* ≈ √(n/k) up to constants.
        let g = optimal_group_size(10_000, 100);
        let sqrt_rule = (10_000f64 / 100.0).sqrt();
        assert!(
            (g as f64) > 0.5 * sqrt_rule && (g as f64) < 3.0 * sqrt_rule,
            "g*={g} vs √(n/k)={sqrt_rule}"
        );
    }

    #[test]
    fn optimal_group_size_beats_neighbors() {
        let (n, k) = (5000usize, 50usize);
        let g = optimal_group_size(n, k);
        let e = expected_dorfman_queries(n, k, g);
        for other in [g.saturating_sub(1).max(1), g + 1, 2 * g, (g / 2).max(1)] {
            assert!(
                e <= expected_dorfman_queries(n, k, other) + 1e-9,
                "g*={g} beaten by g={other}"
            );
        }
    }

    #[test]
    fn saturated_groups_skip_stage_two() {
        // k = n: every group is saturated, stage 2 is empty.
        let (_, res) = run(40, 40, 8, 13);
        assert_eq!(res.queries, 5);
        assert_eq!(res.rounds, 1);
    }

    #[test]
    fn dorfman_beats_individual_testing_when_sparse() {
        let (n, k) = (2000usize, 10usize);
        let g = optimal_group_size(n, k);
        assert!(expected_dorfman_queries(n, k, g) < 0.25 * n as f64);
    }
}
