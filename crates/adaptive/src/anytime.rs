//! Anytime MN: the paper's design, streamed over rounds with early
//! stopping.
//!
//! The fully-parallel design must budget for the worst case; an `r`-round
//! laboratory can stop paying as soon as the answer is certain. This
//! strategy releases the *same* non-adaptive query stream in batches of
//! `m_round`, and after each round decodes (MN on everything seen so far),
//! refines, and stops when the refined estimate **reproduces every
//! observed result** — the zero-residual certificate that is sound w.h.p.
//! above the Theorem 2 threshold.
//!
//! Two properties make this "free" relative to the one-round design:
//!
//! * the query pools are fixed a priori (the design stays non-adaptive —
//!   only the *stopping time* adapts), so any prefix of the stream is
//!   exactly the paper's design with a smaller `m`;
//! * stopping is certificate-driven, so easy instances pay `≈ m_IT`-scale
//!   budgets while hard ones continue to the cap.
//!
//! The `anytime_mn` experiment measures the resulting query-consumption
//! distribution against the fixed-budget design.

use pooled_core::mn::MnDecoder;
use pooled_core::refine::{refine, RefineConfig};
use pooled_core::Signal;
use pooled_design::CsrDesign;
use pooled_design::PoolingDesign;
use pooled_rng::SeedSequence;

use crate::oracle::CountOracle;

/// Anytime-MN configuration.
#[derive(Clone, Copy, Debug)]
pub struct AnytimeConfig {
    /// Queries released per round.
    pub m_round: usize,
    /// Hard cap on total queries (the fully-parallel fallback budget).
    pub m_max: usize,
    /// Refinement knobs used after each round's decode.
    pub refine: RefineConfig,
}

/// Outcome of an anytime run.
#[derive(Clone, Debug)]
pub struct AnytimeResult {
    /// The final estimate (certified iff `certified`).
    pub estimate: Signal,
    /// Queries actually consumed (`rounds_used · m_round`, capped).
    pub queries: usize,
    /// Rounds released.
    pub rounds: usize,
    /// Queries per round.
    pub per_round: Vec<usize>,
    /// Whether the run stopped on a zero-residual certificate (as opposed
    /// to exhausting `m_max`).
    pub certified: bool,
}

/// Run anytime MN for a weight-`k` signal against the oracle.
///
/// The full `m_max`-query design is sampled up front from
/// `seeds.child("design", 0)` (it is non-adaptive); rounds reveal prefixes.
///
/// # Panics
/// Panics if `m_round == 0` or `m_round > m_max`.
pub fn anytime_mn(
    oracle: &mut CountOracle,
    k: usize,
    cfg: &AnytimeConfig,
    seeds: &SeedSequence,
) -> AnytimeResult {
    assert!(cfg.m_round >= 1, "rounds must release at least one query");
    assert!(cfg.m_round <= cfg.m_max, "round size cannot exceed the cap");
    let n = oracle.n();
    let full = CsrDesign::sample(n, cfg.m_max, n / 2, &seeds.child("design", 0));
    let start = oracle.queries();
    let mut y: Vec<u64> = Vec::with_capacity(cfg.m_max);
    let mut pool: Vec<usize> = Vec::with_capacity(n / 2 + 1);
    let mut released = 0usize;
    let mut last: Option<(Signal, bool)> = None;
    while released < cfg.m_max {
        let batch = cfg.m_round.min(cfg.m_max - released);
        for q in released..released + batch {
            pool.clear();
            full.for_each_draw(q, &mut |e| pool.push(e));
            y.push(oracle.count_set(&pool));
        }
        released += batch;
        oracle.next_round();
        // Decode the prefix: re-materialize the prefix design cheaply by
        // sampling the same substreams (queries are per-query seeded, so
        // the prefix design is bit-identical to `full`'s first rows).
        let prefix = CsrDesign::sample(n, released, n / 2, &seeds.child("design", 0));
        let out = MnDecoder::new(k).decode(&prefix, &y);
        let refined = refine(&prefix, &y, &out.scores, &out.estimate, &cfg.refine);
        let certified = refined.consistent;
        last = Some((refined.estimate, certified));
        if certified {
            break;
        }
    }
    let (estimate, certified) = last.expect("at least one round runs");
    AnytimeResult {
        estimate,
        queries: oracle.queries() - start,
        rounds: oracle.rounds(),
        per_round: oracle.per_round(),
        certified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_theory::thresholds::{k_of, m_mn_finite};

    fn config(n: usize, theta: f64) -> AnytimeConfig {
        let m_max = (1.5 * m_mn_finite(n, theta)).ceil() as usize;
        AnytimeConfig { m_round: m_max.div_ceil(8), m_max, refine: RefineConfig::default() }
    }

    fn run(n: usize, theta: f64, seed: u64) -> (Signal, AnytimeResult) {
        let k = k_of(n, theta);
        let seeds = SeedSequence::new(seed);
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let mut oracle = CountOracle::new(&sigma);
        let res = anytime_mn(&mut oracle, k, &config(n, theta), &seeds);
        (sigma, res)
    }

    #[test]
    fn certificates_are_sound() {
        for seed in 0..8u64 {
            let (sigma, res) = run(600, 0.3, 40_000 + seed);
            if res.certified {
                assert_eq!(res.estimate, sigma, "certificate lied at seed {seed}");
            }
        }
    }

    #[test]
    fn stops_early_on_easy_instances() {
        // With the cap at 1.5× the finite threshold and 8 rounds, the
        // certificate should usually fire before the cap.
        let mut early = 0;
        let mut total_q = 0usize;
        let cfg = config(600, 0.3);
        for seed in 0..8u64 {
            let (_, res) = run(600, 0.3, 41_000 + seed);
            total_q += res.queries;
            if res.queries < cfg.m_max {
                early += 1;
            }
        }
        assert!(early >= 6, "only {early}/8 stopped early");
        assert!(
            total_q < 8 * cfg.m_max * 3 / 4,
            "mean consumption {} not below 75% of the cap",
            total_q / 8
        );
    }

    #[test]
    fn consumption_is_a_multiple_of_round_size_until_cap() {
        let (_, res) = run(600, 0.3, 42_000);
        let cfg = config(600, 0.3);
        if res.queries < cfg.m_max {
            assert_eq!(res.queries % cfg.m_round, 0);
        }
        assert_eq!(res.per_round.iter().sum::<usize>(), res.queries);
        assert_eq!(res.rounds, res.per_round.len());
    }

    #[test]
    fn single_round_config_equals_fixed_budget() {
        let k = k_of(600, 0.3);
        let seeds = SeedSequence::new(43_000);
        let sigma = Signal::random(600, k, &mut seeds.child("signal", 0).rng());
        let m_max = (1.5 * m_mn_finite(600, 0.3)).ceil() as usize;
        let cfg = AnytimeConfig { m_round: m_max, m_max, refine: RefineConfig::default() };
        let mut oracle = CountOracle::new(&sigma);
        let res = anytime_mn(&mut oracle, k, &cfg, &seeds);
        assert_eq!(res.rounds, 1);
        assert_eq!(res.queries, m_max);
    }

    #[test]
    #[should_panic(expected = "cannot exceed the cap")]
    fn rejects_round_larger_than_cap() {
        let sigma = Signal::from_support(10, vec![1]);
        let mut oracle = CountOracle::new(&sigma);
        let cfg = AnytimeConfig { m_round: 11, m_max: 10, refine: RefineConfig::default() };
        let _ = anytime_mn(&mut oracle, 1, &cfg, &SeedSequence::new(1));
    }

    #[test]
    fn prefix_designs_are_consistent_with_full_design() {
        // The early-stop correctness rests on prefix = full[..released];
        // pin it.
        let seeds = SeedSequence::new(44_000);
        let full = CsrDesign::sample(100, 40, 50, &seeds.child("design", 0));
        let prefix = CsrDesign::sample(100, 25, 50, &seeds.child("design", 0));
        for q in 0..25 {
            assert_eq!(full.query_row(q), prefix.query_row(q), "query {q}");
        }
    }
}
