//! The additive query oracle for adaptive strategies.
//!
//! Adaptive algorithms choose later pools after seeing earlier results, so
//! they interact with the signal through an *oracle* rather than a fixed
//! design. [`CountOracle`] answers additive queries over index ranges and
//! explicit sets, counts how many queries were issued, and (for honest
//! accounting) lets the caller mark round boundaries — queries inside one
//! round are those an `L`-unit laboratory could run concurrently.
//!
//! Range queries are answered from a precomputed prefix-sum in `O(1)`, so
//! simulating bisection over `n = 10⁶` costs microseconds; the *accounting*
//! is identical to issuing the physical query.

use pooled_core::Signal;

/// An additive-query oracle over a fixed hidden signal.
#[derive(Debug)]
pub struct CountOracle<'a> {
    sigma: &'a Signal,
    prefix: Vec<u64>,
    per_round: Vec<usize>,
}

impl<'a> CountOracle<'a> {
    /// Wrap a signal. The oracle starts in round 0 with zero queries.
    pub fn new(sigma: &'a Signal) -> Self {
        let mut prefix = Vec::with_capacity(sigma.n() + 1);
        prefix.push(0u64);
        let mut acc = 0u64;
        for i in 0..sigma.n() {
            acc += sigma.get(i) as u64;
            prefix.push(acc);
        }
        Self { sigma, prefix, per_round: vec![0] }
    }

    /// Signal length `n`.
    pub fn n(&self) -> usize {
        self.sigma.n()
    }

    /// Number of one-entries in `lo..hi` (one additive query).
    ///
    /// # Panics
    /// Panics if `hi > n` or `lo > hi`.
    pub fn count_range(&mut self, lo: usize, hi: usize) -> u64 {
        assert!(lo <= hi && hi <= self.sigma.n(), "bad range {lo}..{hi}");
        *self.per_round.last_mut().expect("round list never empty") += 1;
        self.prefix[hi] - self.prefix[lo]
    }

    /// Number of one-entries in an explicit pool (one additive query).
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    pub fn count_set(&mut self, pool: &[usize]) -> u64 {
        *self.per_round.last_mut().expect("round list never empty") += 1;
        pool.iter().map(|&i| self.sigma.get(i) as u64).sum()
    }

    /// Close the current round; subsequent queries belong to the next one.
    /// Empty rounds are coalesced (calling this twice is harmless).
    pub fn next_round(&mut self) {
        if *self.per_round.last().expect("round list never empty") > 0 {
            self.per_round.push(0);
        }
    }

    /// Total queries issued so far.
    pub fn queries(&self) -> usize {
        self.per_round.iter().sum()
    }

    /// Queries per (non-empty) round, in order.
    pub fn per_round(&self) -> Vec<usize> {
        let mut v = self.per_round.clone();
        if v.last() == Some(&0) && v.len() > 1 {
            v.pop();
        }
        v
    }

    /// Number of non-empty rounds.
    pub fn rounds(&self) -> usize {
        self.per_round.iter().filter(|&&q| q > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_counts_match_signal() {
        let sigma = Signal::from_support(10, vec![1, 4, 9]);
        let mut o = CountOracle::new(&sigma);
        assert_eq!(o.count_range(0, 10), 3);
        assert_eq!(o.count_range(0, 5), 2);
        assert_eq!(o.count_range(5, 9), 0);
        assert_eq!(o.count_range(9, 10), 1);
        assert_eq!(o.count_range(3, 3), 0);
        assert_eq!(o.queries(), 5);
    }

    #[test]
    fn set_counts_match_signal() {
        let sigma = Signal::from_support(6, vec![0, 5]);
        let mut o = CountOracle::new(&sigma);
        assert_eq!(o.count_set(&[0, 5]), 2);
        assert_eq!(o.count_set(&[1, 2, 3]), 0);
        assert_eq!(o.count_set(&[]), 0);
        assert_eq!(o.queries(), 3);
    }

    #[test]
    fn round_accounting() {
        let sigma = Signal::from_support(4, vec![2]);
        let mut o = CountOracle::new(&sigma);
        o.count_range(0, 4);
        o.count_range(0, 2);
        o.next_round();
        o.count_set(&[2]);
        o.next_round();
        o.next_round(); // coalesced
        assert_eq!(o.per_round(), vec![2, 1]);
        assert_eq!(o.rounds(), 2);
        assert_eq!(o.queries(), 3);
    }

    #[test]
    fn fresh_oracle_has_no_rounds() {
        let sigma = Signal::from_support(4, vec![]);
        let o = CountOracle::new(&sigma);
        assert_eq!(o.queries(), 0);
        assert_eq!(o.rounds(), 0);
        assert_eq!(o.per_round(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn rejects_inverted_range() {
        let sigma = Signal::from_support(4, vec![]);
        let mut o = CountOracle::new(&sigma);
        let _ = o.count_range(3, 2);
    }
}
