//! The rounds/queries/makespan trade-off — §VI's question, quantified.
//!
//! A laboratory with `L` units runs one *batch* of up to `L` queries at a
//! time; a strategy with per-round query counts `(q₁, …, q_r)` therefore
//! finishes in `Σᵢ ⌈qᵢ/L⌉` batches (rounds are barriers: batch `i+1`'s
//! pools depend on batch `i`'s results). With a fixed per-batch latency τ
//! the makespan is `τ·Σᵢ ⌈qᵢ/L⌉` — the quantity the `adaptive_tradeoff`
//! experiment tabulates across strategies and `L`. For stochastic
//! per-query durations, [`makespan_with_latency`] schedules each round on
//! `pooled_lab`'s Graham list scheduler instead.

use pooled_lab::LatencyModel;
use pooled_rng::SeedSequence;

/// Summary of one strategy's cost profile.
#[derive(Clone, Debug)]
pub struct StrategyReport {
    /// Human-readable strategy name (CSV column).
    pub name: String,
    /// Total queries issued.
    pub queries: usize,
    /// Adaptive rounds (barriers between query batches).
    pub rounds: usize,
    /// Queries in each round.
    pub per_round: Vec<usize>,
    /// Whether the strategy recovered the signal exactly.
    pub exact: bool,
}

impl StrategyReport {
    /// Build a report, checking the per-round counts add up.
    ///
    /// # Panics
    /// Panics if `per_round` does not sum to `queries`.
    pub fn new(name: impl Into<String>, per_round: Vec<usize>, exact: bool) -> Self {
        let queries = per_round.iter().sum();
        Self { name: name.into(), queries, rounds: per_round.len(), per_round, exact }
    }

    /// Makespan on `L` units at per-batch latency `tau`.
    pub fn makespan(&self, units: usize, tau: f64) -> f64 {
        makespan_fixed_latency(&self.per_round, units, tau)
    }
}

/// `τ·Σᵢ ⌈qᵢ/L⌉`: makespan of a round-structured strategy on `L` units
/// with fixed per-batch latency.
///
/// # Panics
/// Panics if `units == 0` or `tau < 0`.
pub fn makespan_fixed_latency(per_round: &[usize], units: usize, tau: f64) -> f64 {
    assert!(units >= 1, "need at least one processing unit");
    assert!(tau >= 0.0, "latency cannot be negative");
    per_round.iter().map(|&q| q.div_ceil(units) as f64).sum::<f64>() * tau
}

/// Makespan under a stochastic per-query [`LatencyModel`], scheduling each
/// round's queries greedily on `L` units with `pooled_lab`'s Graham list
/// scheduler and summing round makespans (rounds are barriers).
///
/// Durations for round `r` are drawn from `seeds.child("round", r)`, so
/// the result is a deterministic function of `(per_round, units, model,
/// seeds)`. With `LatencyModel::Fixed(τ)` this equals
/// [`makespan_fixed_latency`] exactly.
///
/// # Panics
/// Panics if `units == 0`.
pub fn makespan_with_latency(
    per_round: &[usize],
    units: usize,
    model: &LatencyModel,
    seeds: &SeedSequence,
) -> f64 {
    assert!(units >= 1, "need at least one processing unit");
    per_round
        .iter()
        .enumerate()
        .map(|(r, &q)| {
            if q == 0 {
                return 0.0;
            }
            let durations = model.sample_many(q, &seeds.child("round", r as u64));
            pooled_lab::schedule(&durations, units).makespan
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_parallel_single_round() {
        // m queries, 1 round: L ≥ m ⇒ one batch; L = 1 ⇒ m batches.
        assert_eq!(makespan_fixed_latency(&[300], 300, 1.0), 1.0);
        assert_eq!(makespan_fixed_latency(&[300], 1000, 1.0), 1.0);
        assert_eq!(makespan_fixed_latency(&[300], 1, 1.0), 300.0);
        assert_eq!(makespan_fixed_latency(&[300], 100, 2.0), 6.0);
    }

    #[test]
    fn rounds_are_barriers() {
        // 3 rounds of 10 on L=20: each round still costs one batch.
        assert_eq!(makespan_fixed_latency(&[10, 10, 10], 20, 1.0), 3.0);
        // Against one round of 30 on L=20: 2 batches.
        assert_eq!(makespan_fixed_latency(&[30], 20, 1.0), 2.0);
    }

    #[test]
    fn empty_strategy_has_zero_makespan() {
        assert_eq!(makespan_fixed_latency(&[], 4, 1.0), 0.0);
    }

    #[test]
    fn report_accounting() {
        let r = StrategyReport::new("bisect", vec![1, 2, 4, 8], true);
        assert_eq!(r.queries, 15);
        assert_eq!(r.rounds, 4);
        assert_eq!(r.makespan(4, 1.0), 1.0 + 1.0 + 1.0 + 2.0);
        assert!(r.exact);
    }

    #[test]
    fn stochastic_makespan_with_fixed_model_matches_closed_form() {
        let seeds = SeedSequence::new(1);
        for per_round in [vec![300usize], vec![10, 10, 10], vec![7, 0, 13]] {
            for units in [1usize, 4, 64] {
                let a = makespan_with_latency(&per_round, units, &LatencyModel::Fixed(2.5), &seeds);
                let b = makespan_fixed_latency(&per_round, units, 2.5);
                assert!((a - b).abs() < 1e-9, "{per_round:?} on {units}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn stochastic_makespan_is_deterministic_and_tail_sensitive() {
        let seeds = SeedSequence::new(2);
        let heavy = LatencyModel::LogNormal { mu: 0.0, sigma: 1.0 };
        let a = makespan_with_latency(&[100, 50], 8, &heavy, &seeds);
        let b = makespan_with_latency(&[100, 50], 8, &heavy, &seeds);
        assert_eq!(a, b, "same seeds ⇒ same makespan");
        // A heavy tail must cost more than the median-latency fixed model
        // on the same unit count (stragglers block the barrier).
        let fixed = makespan_with_latency(&[100, 50], 8, &LatencyModel::Fixed(1.0), &seeds);
        assert!(a > fixed, "log-normal {a} not above fixed-median {fixed}");
    }

    #[test]
    fn crossover_between_parallel_and_adaptive() {
        // The experiment's headline: with many units the 1-round design
        // wins; with few units the query-frugal adaptive strategy wins.
        let parallel = StrategyReport::new("parallel", vec![1200], true);
        let adaptive = StrategyReport::new("bisect", [1; 17].iter().map(|_| 16).collect(), true);
        // L = 1200: parallel 1 batch vs adaptive 17 batches.
        assert!(parallel.makespan(1200, 1.0) < adaptive.makespan(1200, 1.0));
        // L = 4: parallel 300 batches vs adaptive 17·4 = 68 batches.
        assert!(adaptive.makespan(4, 1.0) < parallel.makespan(4, 1.0));
    }
}
