#![warn(missing_docs)]

//! Adaptive and partially-parallel reconstruction strategies.
//!
//! The paper's design is fully non-adaptive: all `m` queries are fixed a
//! priori and run in one parallel round, which costs a factor 2 in queries
//! against the sequential bound (Eq. 2 vs Eq. 1) but only one round of
//! latency. Its §VI asks what happens in between — "suppose `L` processing
//! units can be used to evaluate queries in parallel … analyze the
//! trade-offs". This crate implements the strategy spectrum:
//!
//! | strategy | queries | rounds |
//! |---|---|---|
//! | fully parallel MN (the paper) | `Θ(k·ln(n/k))` | 1 |
//! | anytime MN ([`anytime`]) | adaptive stop ≤ cap | ≤ r |
//! | two-round hybrid ([`hybrid`]) | `m₁ + O(k)` | 2 |
//! | counting Dorfman ([`dorfman`]) | `≈ 2√(nk)` | 2 |
//! | quantitative bisection ([`bisect`]) | `≈ 2k·log₂(n/k)` | `≈ log₂ n` |
//!
//! All strategies run against the query-counting [`oracle::CountOracle`],
//! recover `σ` exactly (deterministically for bisection/Dorfman, with a
//! sound certificate for anytime/hybrid), and report per-round query
//! counts so the [`tradeoff`] module can convert them into makespans on
//! `L` units.
//!
//! ```
//! use pooled_adaptive::{quantitative_bisect, CountOracle};
//! use pooled_core::Signal;
//! use pooled_rng::SeedSequence;
//!
//! let sigma = Signal::random(4096, 12, &mut SeedSequence::new(7).rng());
//! let mut oracle = CountOracle::new(&sigma);
//! let res = quantitative_bisect(&mut oracle);
//! assert_eq!(res.estimate, sigma);          // exact, always
//! assert!(res.queries < 300);               // ≈ 2k·log₂(n/k)
//! ```

pub mod anytime;
pub mod bisect;
pub mod dorfman;
pub mod hybrid;
pub mod oracle;
pub mod tradeoff;

pub use anytime::{anytime_mn, AnytimeConfig, AnytimeResult};
pub use bisect::{quantitative_bisect, BisectResult};
pub use dorfman::{counting_dorfman, expected_dorfman_queries, optimal_group_size, DorfmanResult};
pub use hybrid::{two_round_hybrid, HybridConfig, HybridResult};
pub use oracle::CountOracle;
pub use tradeoff::{makespan_fixed_latency, makespan_with_latency, StrategyReport};
