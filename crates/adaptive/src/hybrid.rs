//! The two-round hybrid: MN screening plus one verification round.
//!
//! Round 1 runs the paper's design with a *reduced* budget `m₁` — too few
//! queries for exact recovery, but plenty for the MN scores to push the
//! true support into the top `c·k` ranks (the Subset-Select observation of
//! Feige–Lellouche, reference [14] of the paper). Round 2 queries those
//! `c·k` candidates *individually*, in parallel, which resolves them
//! exactly.
//!
//! Total cost: `m₁ + c·k` queries in **2 rounds**. The hybrid undercuts
//! the one-round design's `m_MN ≈ d(θ)·k·ln(n/k)` iff screening captures
//! with `m₁ < m_MN − c·k`. Measurement (see the `adaptive_tradeoff`
//! experiment) says that is a *high* bar: capturing **all** `k` ones in the
//! top `c·k` ranks is nearly as demanding as exact recovery — the zero-side
//! union bound only relaxes from `ln n` to `ln(n/(ck))` — so reliable
//! capture needs `m₁ ≈ 0.7–0.8·m_MN` and the hybrid's net saving
//! `0.2·m_MN − c·k` is positive only when `ln(n/k)` is large (extremely
//! sparse regimes). The experiment tabulates both sides of that crossover
//! rather than assuming the win. Failure is at least *detectable*: if
//! fewer than `k` ones surface in round 2, the run reports
//! `captured = false`.

use pooled_core::mn::MnDecoder;
use pooled_core::Signal;
use pooled_design::CsrDesign;
use pooled_par::topk::top_k_indices;
use pooled_rng::SeedSequence;

use crate::oracle::CountOracle;

/// Hybrid parameters.
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// Screening queries in round 1 (the paper's design, `Γ = n/2`).
    pub m1: usize,
    /// Candidate-list size as a multiple of `k` (round 2 queries
    /// `min(n, candidate_mult·k)` singletons).
    pub candidate_mult: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self { m1: 0, candidate_mult: 4 }
    }
}

/// Outcome of a hybrid run.
#[derive(Clone, Debug)]
pub struct HybridResult {
    /// The reconstruction: exact iff `captured`.
    pub estimate: Signal,
    /// Total queries (screening + verification).
    pub queries: usize,
    /// Parallel rounds (always 2, or 1 when the candidate list is all of
    /// `[n]`).
    pub rounds: usize,
    /// Queries per round.
    pub per_round: Vec<usize>,
    /// Whether all `k` ones surfaced among the candidates (detectable
    /// success certificate).
    pub captured: bool,
}

/// Run the two-round hybrid for a weight-`k` signal.
///
/// The screening design is drawn from `seeds.child("design", 0)`; the
/// oracle answers both rounds and does the query accounting.
///
/// # Panics
/// Panics if `k == 0` with a nonzero candidate multiplier budget — use
/// `k ≥ 1` (for `k = 0` there is nothing to reconstruct).
pub fn two_round_hybrid(
    oracle: &mut CountOracle,
    k: usize,
    cfg: &HybridConfig,
    seeds: &SeedSequence,
) -> HybridResult {
    assert!(k >= 1, "hybrid needs a positive target weight");
    let n = oracle.n();
    let start = oracle.queries();
    let candidates: Vec<usize> = if cfg.candidate_mult.saturating_mul(k) >= n || cfg.m1 == 0 {
        // Degenerate: no screening signal available (or candidate list is
        // everything) — verify all of [n] in one round.
        (0..n).collect()
    } else {
        // Round 1: screening queries through the oracle (with multiplicity,
        // the additive-channel semantics).
        let design = CsrDesign::sample(n, cfg.m1, n / 2, &seeds.child("design", 0));
        let mut y = Vec::with_capacity(cfg.m1);
        let mut pool: Vec<usize> = Vec::with_capacity(n / 2);
        for q in 0..cfg.m1 {
            pool.clear();
            pooled_design::PoolingDesign::for_each_draw(&design, q, &mut |e| pool.push(e));
            y.push(oracle.count_set(&pool));
        }
        oracle.next_round();
        let out = MnDecoder::new(k).decode(&design, &y);
        top_k_indices(&out.scores, cfg.candidate_mult * k)
    };
    // Round 2: resolve candidates individually, in parallel.
    let mut ones: Vec<usize> = Vec::new();
    for &i in &candidates {
        if oracle.count_range(i, i + 1) == 1 {
            ones.push(i);
        }
    }
    oracle.next_round();
    ones.sort_unstable();
    let captured = ones.len() == k;
    HybridResult {
        estimate: Signal::from_support(n, ones),
        queries: oracle.queries() - start,
        rounds: oracle.rounds(),
        per_round: oracle.per_round(),
        captured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_theory::thresholds::{k_of, m_mn_finite};

    fn run(n: usize, k: usize, cfg: &HybridConfig, seed: u64) -> (Signal, HybridResult) {
        let seeds = SeedSequence::new(seed);
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let mut oracle = CountOracle::new(&sigma);
        let res = two_round_hybrid(&mut oracle, k, cfg, &seeds);
        (sigma, res)
    }

    #[test]
    fn captures_with_seventy_percent_budget_and_wide_list() {
        // Measured capture at n=1000, θ=0.3: frac 0.7 × mult 12 ⇒ ~97%.
        let n = 1000;
        let k = k_of(n, 0.3);
        let m1 = (0.7 * m_mn_finite(n, 0.3)).round() as usize;
        let cfg = HybridConfig { m1, candidate_mult: 12 };
        let mut ok = 0;
        for seed in 0..10 {
            let (sigma, res) = run(n, k, &cfg, seed);
            if res.captured {
                assert_eq!(res.estimate, sigma, "captured ⇒ exact (seed {seed})");
                ok += 1;
            }
            assert_eq!(res.rounds, 2);
            assert_eq!(res.queries, m1 + 12 * k);
        }
        assert!(ok >= 8, "only {ok}/10 captured at m1={m1}");
    }

    #[test]
    fn capture_rate_grows_with_screening_budget() {
        // The monotone backbone of the trade-off: more screening queries,
        // more captures (compare far-apart budgets to dodge noise).
        let n = 1000;
        let k = k_of(n, 0.3);
        let m_full = m_mn_finite(n, 0.3);
        let count = |frac: f64| {
            let cfg = HybridConfig { m1: (frac * m_full).round() as usize, candidate_mult: 8 };
            (0..12).filter(|&seed| run(n, k, &cfg, 200 + seed).1.captured).count()
        };
        let (low, high) = (count(0.25), count(0.9));
        assert!(high > low, "capture {high}/12 at 0.9·m not above {low}/12 at 0.25·m");
    }

    #[test]
    fn break_even_requires_extreme_sparsity() {
        // Honest negative result, pinned: at n = 1000, θ = 0.3 the hybrid's
        // reliable configuration (0.7·m_MN + 12k) does NOT beat the
        // one-round design. The saving 0.3·m_MN − 12k turns positive only
        // once ln(n/k) ≳ 12·(1/d)/0.3 ≈ 7.5, i.e. n/k ≳ 2000.
        let n = 1000;
        let k = k_of(n, 0.3);
        let m_full = m_mn_finite(n, 0.3);
        let hybrid_cost = 0.7 * m_full + 12.0 * k as f64;
        assert!(
            hybrid_cost > m_full,
            "at this scale the hybrid should not yet win ({hybrid_cost} vs {m_full})"
        );
        // And the break-even scale, from the same arithmetic, is real: at
        // n/k = 10⁵ the saving is positive.
        let (n2, theta2) = (10_000_000usize, 0.2);
        let k2 = k_of(n2, theta2);
        let m_full2 = m_mn_finite(n2, theta2);
        assert!(0.7 * m_full2 + 12.0 * k2 as f64 <= m_full2, "n/k=10^5 should break even");
    }

    #[test]
    fn capture_failure_is_detected_not_silent() {
        // Hopeless screening budget: capture must be reported false, and
        // the estimate must contain only verified ones (never false
        // positives).
        let cfg = HybridConfig { m1: 5, candidate_mult: 2 };
        let mut any_failure = false;
        for seed in 0..10 {
            let (sigma, res) = run(2000, 12, &cfg, 100 + seed);
            if !res.captured {
                any_failure = true;
                assert!(res.estimate.weight() < 12);
            }
            for &i in res.estimate.support() {
                assert!(sigma.is_one(i), "false positive at {i} (seed {seed})");
            }
        }
        assert!(any_failure, "m1=5 should fail to capture sometimes");
    }

    #[test]
    fn degenerate_candidate_list_covers_everything() {
        // candidate_mult·k ≥ n: single exhaustive round, always exact.
        let cfg = HybridConfig { m1: 10, candidate_mult: 1000 };
        let (sigma, res) = run(50, 3, &cfg, 7);
        assert!(res.captured);
        assert_eq!(res.estimate, sigma);
        assert_eq!(res.rounds, 1);
        assert_eq!(res.queries, 50);
    }

    #[test]
    fn zero_screening_budget_falls_back_to_exhaustive() {
        let cfg = HybridConfig { m1: 0, candidate_mult: 4 };
        let (sigma, res) = run(60, 4, &cfg, 8);
        assert!(res.captured);
        assert_eq!(res.estimate, sigma);
        assert_eq!(res.queries, 60);
    }

    #[test]
    fn per_round_accounting_is_consistent() {
        let cfg = HybridConfig { m1: 80, candidate_mult: 4 };
        let (_, res) = run(500, 6, &cfg, 9);
        assert_eq!(res.per_round.iter().sum::<usize>(), res.queries);
        assert_eq!(res.per_round.len(), res.rounds);
        assert_eq!(res.per_round[0], 80);
        assert_eq!(res.per_round[1], 24);
    }

    #[test]
    #[should_panic(expected = "positive target weight")]
    fn rejects_k_zero() {
        let sigma = Signal::from_support(10, vec![]);
        let mut oracle = CountOracle::new(&sigma);
        let _ = two_round_hybrid(&mut oracle, 0, &HybridConfig::default(), &SeedSequence::new(1));
    }
}
