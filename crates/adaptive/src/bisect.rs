//! Quantitative binary splitting — the adaptive gold standard.
//!
//! With additive queries, bisection is better than binary-search: querying
//! the left half of a segment whose count is known also reveals the right
//! half's count for free. Starting from one query on the whole signal, the
//! algorithm keeps a frontier of segments with known counts, splits every
//! *unresolved* segment (count strictly between 0 and its length) per
//! round, and never queries resolved segments again. This is the
//! coin-weighing strategy of Bshouty's line of work in its simplest form:
//!
//! * **queries** ≈ `2k·log₂(n/k)` (each of ≤ 2k frontier segments per level
//!   costs one query, and only `log₂(n/k) + O(1)` levels have < 2k
//!   segments unresolved),
//! * **rounds** = `⌈log₂ n⌉ + 1` (all splits of one level are independent,
//!   so each level is one parallel round),
//! * **exact, always** — no failure probability, no decoder.
//!
//! Against the paper's fully-parallel design this trades a `log n` factor
//! in *rounds* for a `ln k`-ish factor in *queries*: precisely the §VI
//! trade-off, quantified by the `adaptive_tradeoff` experiment.

use pooled_core::Signal;

use crate::oracle::CountOracle;

/// Outcome of a quantitative-bisection run.
#[derive(Clone, Debug)]
pub struct BisectResult {
    /// The exactly reconstructed signal.
    pub estimate: Signal,
    /// Total additive queries issued.
    pub queries: usize,
    /// Parallel rounds used (frontier levels, including the root query).
    pub rounds: usize,
    /// Queries per round.
    pub per_round: Vec<usize>,
}

/// Reconstruct the oracle's signal exactly by parallel-round bisection.
pub fn quantitative_bisect(oracle: &mut CountOracle) -> BisectResult {
    let n = oracle.n();
    let mut ones: Vec<usize> = Vec::new();
    if n == 0 {
        return BisectResult {
            estimate: Signal::from_support(0, vec![]),
            queries: 0,
            rounds: 0,
            per_round: vec![],
        };
    }
    let start_queries = oracle.queries();
    let root = oracle.count_range(0, n);
    oracle.next_round();
    // Frontier of unresolved segments (lo, hi, count), 0 < count < hi−lo.
    let mut frontier: Vec<(usize, usize, u64)> = Vec::new();
    let admit = |lo: usize,
                 hi: usize,
                 c: u64,
                 ones: &mut Vec<usize>,
                 frontier: &mut Vec<(usize, usize, u64)>| {
        if c == 0 {
            return;
        }
        if c as usize == hi - lo {
            ones.extend(lo..hi); // fully saturated: resolved without queries
        } else {
            frontier.push((lo, hi, c));
        }
    };
    admit(0, n, root, &mut ones, &mut frontier);
    while !frontier.is_empty() {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for &(lo, hi, c) in &frontier {
            debug_assert!(hi - lo >= 2, "unresolved segments have length ≥ 2");
            let mid = lo + (hi - lo) / 2;
            let left = oracle.count_range(lo, mid);
            let right = c - left;
            admit(lo, mid, left, &mut ones, &mut next);
            admit(mid, hi, right, &mut ones, &mut next);
        }
        oracle.next_round();
        frontier = next;
    }
    ones.sort_unstable();
    BisectResult {
        estimate: Signal::from_support(n, ones),
        queries: oracle.queries() - start_queries,
        rounds: oracle.rounds(),
        per_round: oracle.per_round(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_rng::SeedSequence;

    fn run(n: usize, k: usize, seed: u64) -> (Signal, BisectResult) {
        let seeds = SeedSequence::new(seed);
        let sigma = Signal::random(n, k, &mut seeds.rng());
        let mut oracle = CountOracle::new(&sigma);
        let res = quantitative_bisect(&mut oracle);
        (sigma, res)
    }

    #[test]
    fn always_exact() {
        for (n, k, seed) in
            [(100, 5, 1u64), (1000, 8, 2), (1000, 0, 3), (1000, 1000, 4), (1, 1, 5), (7, 3, 6)]
        {
            let (sigma, res) = run(n, k, seed);
            assert_eq!(res.estimate, sigma, "n={n} k={k}");
        }
    }

    #[test]
    fn query_count_bound() {
        // ≤ 1 + 2k·(⌈log₂ n⌉) splits, and the trivial all-zero case is 1.
        for (n, k, seed) in [(1000usize, 8usize, 10u64), (4096, 16, 11), (100_000, 32, 12)] {
            let (_, res) = run(n, k, seed);
            let bound = 1 + 2 * k * (n as f64).log2().ceil() as usize;
            assert!(res.queries <= bound, "n={n} k={k}: {} > {bound}", res.queries);
        }
    }

    #[test]
    fn all_zero_needs_one_query() {
        let (_, res) = run(512, 0, 20);
        assert_eq!(res.queries, 1);
        assert_eq!(res.rounds, 1);
    }

    #[test]
    fn all_ones_needs_one_query() {
        let (_, res) = run(512, 512, 21);
        assert_eq!(res.queries, 1, "saturated root resolves immediately");
    }

    #[test]
    fn rounds_bounded_by_log_n() {
        for (n, k, seed) in [(1000usize, 8usize, 30u64), (65536, 64, 31)] {
            let (_, res) = run(n, k, seed);
            let bound = (n as f64).log2().ceil() as usize + 1;
            assert!(res.rounds <= bound, "n={n}: {} rounds > {bound}", res.rounds);
        }
    }

    #[test]
    fn per_round_sums_to_total() {
        let (_, res) = run(2048, 12, 40);
        assert_eq!(res.per_round.iter().sum::<usize>(), res.queries);
        assert_eq!(res.per_round.len(), res.rounds);
    }

    #[test]
    fn query_count_beats_parallel_design_for_small_theta() {
        // At n = 10⁵, k = 10 (θ ≈ 0.2): adaptive ≈ 2k·log₂(n/k) ≈ 266
        // queries vs the paper's m_MN ≈ 1.3·10³.
        let (_, res) = run(100_000, 10, 50);
        let m_mn = pooled_theory::thresholds::m_mn(100_000, 0.2);
        assert!((res.queries as f64) < 0.5 * m_mn, "adaptive {} vs parallel {m_mn}", res.queries);
    }

    #[test]
    fn empty_signal_edge_case() {
        let sigma = Signal::from_support(0, vec![]);
        let mut oracle = CountOracle::new(&sigma);
        let res = quantitative_bisect(&mut oracle);
        assert_eq!(res.queries, 0);
        assert_eq!(res.estimate.n(), 0);
    }
}
