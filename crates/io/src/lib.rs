#![warn(missing_docs)]

//! Output substrate: the formats the experiment binaries speak.
//!
//! The original authors published gnuplot scripts and helper tools alongside
//! their C++ simulator; this crate recreates that pipeline:
//!
//! * [`csv`] — minimal CSV writing/reading (numeric experiment tables).
//! * [`gnuplot`] — emit `.gp` scripts that re-draw the paper's figures from
//!   the CSV the binaries produce.
//! * [`table`] — aligned ASCII tables for terminal summaries.
//! * [`manifest`] — JSON experiment manifests (parameters, seed, scale) so
//!   every committed number can be regenerated exactly.
//! * [`args`] — a tiny `--key value` CLI parser (no external dependency).

pub mod args;
pub mod csv;
pub mod gnuplot;
pub mod manifest;
pub mod table;

pub use args::Args;
pub use csv::{read_csv, write_csv};
pub use gnuplot::GnuplotScript;
pub use manifest::Manifest;
pub use table::render_table;
