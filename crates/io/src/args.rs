//! Tiny `--key value` / `--flag` command-line parser.
//!
//! The experiment binaries need half a dozen numeric options; a hand-rolled
//! parser keeps the dependency set at the workspace's approved list.

use std::collections::BTreeMap;

/// Parsed command-line options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from an iterator of raw arguments (skip the program name
    /// before calling, e.g. `Args::parse(std::env::args().skip(1))`).
    ///
    /// `--key value` pairs land in the value map; a `--key` followed by
    /// another `--…` (or nothing) is a boolean flag.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Self {
        let mut values = BTreeMap::new();
        let mut flags = Vec::new();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                // Bare tokens are ignored (forward compatibility).
                continue;
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    values.insert(key.to_owned(), iter.next().unwrap());
                }
                _ => flags.push(key.to_owned()),
            }
        }
        Self { values, flags }
    }

    /// Whether a boolean flag was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// String option with default.
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.values.get(name).cloned().unwrap_or_else(|| default.to_owned())
    }

    /// `usize` option with default.
    ///
    /// # Panics
    /// Panics with a clear message on unparseable input.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.values
            .get(name)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} expects an integer, got {v:?}")))
            .unwrap_or(default)
    }

    /// `u64` option with default.
    ///
    /// # Panics
    /// Panics with a clear message on unparseable input.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.values
            .get(name)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} expects an integer, got {v:?}")))
            .unwrap_or(default)
    }

    /// `f64` option with default.
    ///
    /// # Panics
    /// Panics with a clear message on unparseable input.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.values
            .get(name)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} expects a number, got {v:?}")))
            .unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn key_value_pairs() {
        let a = parse(&["--n", "1000", "--theta", "0.3"]);
        assert_eq!(a.get_usize("n", 1), 1000);
        assert_eq!(a.get_f64("theta", 0.0), 0.3);
    }

    #[test]
    fn flags_and_defaults() {
        let a = parse(&["--full", "--trials", "50"]);
        assert!(a.flag("full"));
        assert!(!a.flag("quick"));
        assert_eq!(a.get_usize("trials", 100), 50);
        assert_eq!(a.get_usize("missing", 7), 7);
    }

    #[test]
    fn trailing_flag() {
        let a = parse(&["--seed", "9", "--verbose"]);
        assert_eq!(a.get_u64("seed", 0), 9);
        assert!(a.flag("verbose"));
    }

    #[test]
    fn bare_tokens_ignored() {
        let a = parse(&["stray", "--x", "1"]);
        assert_eq!(a.get_usize("x", 0), 1);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_panics() {
        let a = parse(&["--n", "lots"]);
        let _ = a.get_usize("n", 0);
    }

    #[test]
    fn negative_numbers_are_values() {
        let a = parse(&["--shift", "-3.5"]);
        assert_eq!(a.get_f64("shift", 0.0), -3.5);
    }
}
