//! Aligned ASCII tables for terminal summaries.

/// Render a table with a header row, column-aligned with box-drawing rules.
///
/// # Panics
/// Panics on ragged rows.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.extend(std::iter::repeat_n('-', w + 2));
        }
        out.push_str("+\n");
    };
    let line = |out: &mut String, cells: &[String]| {
        for (w, cell) in widths.iter().zip(cells) {
            out.push_str("| ");
            out.push_str(cell);
            out.extend(std::iter::repeat_n(' ', w - cell.chars().count() + 1));
        }
        out.push_str("|\n");
    };
    rule(&mut out);
    line(&mut out, &header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    rule(&mut out);
    for row in rows {
        line(&mut out, row);
    }
    rule(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render_table(
            &["algo", "m", "rate"],
            &[
                vec!["mn".into(), "220".into(), "0.99".into()],
                vec!["basis-pursuit".into(), "1000".into(), "0.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        // 3 rules + header + 2 rows.
        assert_eq!(lines.len(), 6);
        // All lines same display width.
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w), "{t}");
        assert!(t.contains("basis-pursuit"));
    }

    #[test]
    fn empty_body_ok() {
        let t = render_table(&["a"], &[]);
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
