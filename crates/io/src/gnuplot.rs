//! Gnuplot script emission in the paper's figure style.
//!
//! Each experiment binary writes a CSV plus a `.gp` script; running
//! `gnuplot <file>.gp` regenerates the figure. Styles mirror the paper:
//! log-log axes with per-θ point series for Fig. 2, linear success/overlap
//! curves with dashed theory verticals for Figs. 3–4.

/// Builder for a single-plot gnuplot script.
#[derive(Clone, Debug)]
pub struct GnuplotScript {
    title: String,
    xlabel: String,
    ylabel: String,
    logscale: Option<&'static str>,
    extra: Vec<String>,
    series: Vec<String>,
}

impl GnuplotScript {
    /// Start a script with title and axis labels.
    pub fn new(title: &str, xlabel: &str, ylabel: &str) -> Self {
        Self {
            title: title.to_owned(),
            xlabel: xlabel.to_owned(),
            ylabel: ylabel.to_owned(),
            logscale: None,
            extra: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Enable log scaling on the given axes (`"x"`, `"y"` or `"xy"`).
    pub fn logscale(mut self, axes: &'static str) -> Self {
        assert!(matches!(axes, "x" | "y" | "xy"), "axes must be x, y or xy");
        self.logscale = Some(axes);
        self
    }

    /// Add a raw gnuplot statement before the plot command (ranges, arrows…).
    pub fn raw(mut self, stmt: &str) -> Self {
        self.extra.push(stmt.to_owned());
        self
    }

    /// Add a dashed vertical line (theory thresholds in Figs. 3–4).
    pub fn vertical_line(self, x: f64, label: &str) -> Self {
        let stmt = format!(
            "set arrow from {x}, graph 0 to {x}, graph 1 nohead dashtype 2 lc rgb 'gray40' # {label}"
        );
        self.raw(&stmt)
    }

    /// Add a data series plotted from a CSV file.
    ///
    /// `using` is the gnuplot column spec (e.g. `"1:2"`), `style` e.g.
    /// `"linespoints"`.
    pub fn series(mut self, csv: &str, using: &str, title: &str, style: &str) -> Self {
        self.series.push(format!("'{csv}' using {using} with {style} title '{title}'"));
        self
    }

    /// Add an analytic function series (theory overlays).
    pub fn function(mut self, expr: &str, title: &str, style: &str) -> Self {
        self.series.push(format!("{expr} with {style} title '{title}'"));
        self
    }

    /// Render the complete script.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("set datafile separator ','\n");
        out.push_str("set key top left\n");
        out.push_str("set grid\n");
        out.push_str(&format!("set title '{}'\n", self.title));
        out.push_str(&format!("set xlabel '{}'\n", self.xlabel));
        out.push_str(&format!("set ylabel '{}'\n", self.ylabel));
        if let Some(axes) = self.logscale {
            out.push_str(&format!("set logscale {axes}\n"));
        }
        for stmt in &self.extra {
            out.push_str(stmt);
            out.push('\n');
        }
        if !self.series.is_empty() {
            out.push_str("plot \\\n    ");
            out.push_str(&self.series.join(", \\\n    "));
            out.push('\n');
        }
        out
    }

    /// Write the script to disk.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write_to<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_sections() {
        let s = GnuplotScript::new("Fig 2", "individuals n", "required tests m")
            .logscale("xy")
            .vertical_line(207.0, "m_MN")
            .series("fig2.csv", "1:2", "theta=0.1", "points")
            .series("fig2.csv", "1:3", "theta=0.2", "points")
            .function("2*x", "theory", "lines dashtype 3")
            .render();
        assert!(s.contains("set logscale xy"));
        assert!(s.contains("set title 'Fig 2'"));
        assert!(s.contains("fig2.csv"));
        assert!(s.contains("theta=0.2"));
        assert!(s.contains("set arrow from 207"));
        assert!(s.contains("2*x with lines"));
        // Exactly one plot statement.
        assert_eq!(s.matches("plot").count(), 1);
    }

    #[test]
    fn no_series_means_no_plot_statement() {
        let s = GnuplotScript::new("t", "x", "y").render();
        assert!(!s.contains("plot"));
    }

    #[test]
    #[should_panic(expected = "axes must be")]
    fn bad_axes_rejected() {
        let _ = GnuplotScript::new("t", "x", "y").logscale("z");
    }

    #[test]
    fn write_creates_file() {
        let mut p = std::env::temp_dir();
        p.push(format!("pooled_gp_test_{}.gp", std::process::id()));
        GnuplotScript::new("t", "x", "y")
            .series("d.csv", "1:2", "s", "lines")
            .write_to(&p)
            .unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.contains("d.csv"));
        std::fs::remove_file(&p).ok();
    }
}
