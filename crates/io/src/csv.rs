//! Minimal CSV for numeric experiment tables.
//!
//! No quoting/escaping: our tables are numbers and bare identifiers, and the
//! writer enforces that (commas or newlines in a field are a caller bug).

use std::io::Write;
use std::path::Path;

/// Write a CSV file with the given header and rows.
///
/// # Panics
/// Panics if any field contains a comma, quote or newline.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let mut out = String::new();
    push_row(&mut out, header.iter().copied());
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width must match header");
        push_row(&mut out, row.iter().map(|s| s.as_str()));
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

fn push_row<'a>(out: &mut String, fields: impl Iterator<Item = &'a str>) {
    let mut first = true;
    for f in fields {
        assert!(
            !f.contains(',') && !f.contains('"') && !f.contains('\n'),
            "field {f:?} needs quoting, which this writer refuses by design"
        );
        if !first {
            out.push(',');
        }
        out.push_str(f);
        first = false;
    }
    out.push('\n');
}

/// Read a CSV produced by [`write_csv`]: returns `(header, rows)`.
///
/// # Errors
/// Propagates I/O failures; returns an empty table for an empty file.
pub fn read_csv<P: AsRef<Path>>(path: P) -> std::io::Result<(Vec<String>, Vec<Vec<String>>)> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header: Vec<String> = match lines.next() {
        Some(h) => h.split(',').map(str::to_owned).collect(),
        None => return Ok((Vec::new(), Vec::new())),
    };
    let rows = lines
        .filter(|l| !l.is_empty())
        .map(|l| l.split(',').map(str::to_owned).collect())
        .collect();
    Ok((header, rows))
}

/// Format an `f64` compactly for CSV cells (6 significant digits).
pub fn fmt_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pooled_io_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip() {
        let path = tmp("roundtrip.csv");
        let rows = vec![
            vec!["1".into(), "0.5".into(), "a".into()],
            vec!["2".into(), "0.25".into(), "b".into()],
        ];
        write_csv(&path, &["m", "rate", "tag"], &rows).unwrap();
        let (header, got) = read_csv(&path).unwrap();
        assert_eq!(header, vec!["m", "rate", "tag"]);
        assert_eq!(got, rows);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_rows_ok() {
        let path = tmp("empty.csv");
        write_csv(&path, &["a", "b"], &[]).unwrap();
        let (header, rows) = read_csv(&path).unwrap();
        assert_eq!(header.len(), 2);
        assert!(rows.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "needs quoting")]
    fn commas_rejected() {
        let path = tmp("bad.csv");
        let _ = write_csv(&path, &["x"], &[vec!["a,b".into()]]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let path = tmp("ragged.csv");
        let _ = write_csv(&path, &["x", "y"], &[vec!["1".into()]]);
    }

    #[test]
    fn f64_formatting() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(0.5), "0.500000");
        assert_eq!(fmt_f64(-2.0), "-2");
    }
}
