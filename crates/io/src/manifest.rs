//! JSON experiment manifests.
//!
//! Every experiment binary writes a manifest next to its CSV so any
//! committed number is reproducible: the manifest pins the experiment id,
//! parameters, master seed and scale profile.

use serde_json::Value;
use std::path::Path;

/// Reproducibility record for one experiment run.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Experiment identifier (e.g. `"fig2"`).
    pub experiment: String,
    /// Master seed the run derived all randomness from.
    pub master_seed: u64,
    /// Scale profile (`"default"` or `"full"`).
    pub scale: String,
    /// Free-form parameter map (n values, θ grid, trials, …).
    pub params: serde_json::Value,
    /// Crate version that produced the run.
    pub version: String,
}

impl Manifest {
    /// Build a manifest for an experiment.
    pub fn new(experiment: &str, master_seed: u64, scale: &str, params: serde_json::Value) -> Self {
        Self {
            experiment: experiment.to_owned(),
            master_seed,
            scale: scale.to_owned(),
            params,
            version: env!("CARGO_PKG_VERSION").to_owned(),
        }
    }

    /// Serialize to pretty JSON.
    ///
    /// # Panics
    /// Never in practice (the struct is always serializable).
    pub fn to_json(&self) -> String {
        let value = serde_json::json!({
            "experiment": self.experiment.as_str(),
            "master_seed": self.master_seed,
            "scale": self.scale.as_str(),
            "params": &self.params,
            "version": self.version.as_str(),
        });
        serde_json::to_string_pretty(&value).expect("manifest serialization cannot fail")
    }

    /// Write to disk.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write_to<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load from disk.
    ///
    /// # Errors
    /// I/O or parse failures.
    pub fn read_from<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let value = serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Self::from_value(&value)
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad manifest"))
    }

    fn from_value(value: &Value) -> Option<Self> {
        Some(Self {
            experiment: value.get("experiment")?.as_str()?.to_owned(),
            master_seed: value.get("master_seed")?.as_u64()?,
            scale: value.get("scale")?.as_str()?.to_owned(),
            params: value.get("params")?.clone(),
            version: value.get("version")?.as_str()?.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn json_round_trip() {
        let m = Manifest::new(
            "fig3",
            1905,
            "default",
            json!({"n": [1000, 10000], "thetas": [0.1, 0.2, 0.3, 0.4], "trials": 100}),
        );
        let mut p = std::env::temp_dir();
        p.push(format!("pooled_manifest_{}.json", std::process::id()));
        m.write_to(&p).unwrap();
        let back = Manifest::read_from(&p).unwrap();
        assert_eq!(m, back);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn contains_version_and_fields() {
        let m = Manifest::new("fig2", 7, "full", json!({}));
        let j = m.to_json();
        assert!(j.contains("\"experiment\": \"fig2\""));
        assert!(j.contains("\"master_seed\": 7"));
        assert!(j.contains("\"version\""));
    }

    #[test]
    fn invalid_json_is_io_error() {
        let mut p = std::env::temp_dir();
        p.push(format!("pooled_manifest_bad_{}.json", std::process::id()));
        std::fs::write(&p, "not json").unwrap();
        assert!(Manifest::read_from(&p).is_err());
        std::fs::remove_file(&p).ok();
    }
}
