//! Entry-regular (column-regular) pooling design via the configuration
//! model.
//!
//! In the paper's design the per-entry degrees `Δ_i ~ Bin(mn/2, 1/n)`
//! fluctuate, and the concentration event `R` (Lemma 3) is exactly the
//! statement that those fluctuations are benign. This design removes them
//! at the source: every entry participates in **exactly** `Δ` draws. Each
//! entry contributes `Δ` stubs; the `n·Δ` stubs are shuffled uniformly and
//! dealt into `m` pools of (near-)equal size `n·Δ/m`. Multi-edges can occur,
//! exactly as in the paper's multigraph.
//!
//! Comparison point for the design ablation: with degrees pinned to `Δ`, the
//! MN score loses its `Δ_i`-fluctuation noise term, isolating how much of
//! the finite-`n` gap (§V Remark) is caused by degree variance.

use pooled_rng::shuffle::fisher_yates;
use pooled_rng::SeedSequence;

use crate::csr::CsrDesign;
use crate::PoolingDesign;

/// A design in which every entry appears in exactly `Δ` draws,
/// materialized in CSR form.
#[derive(Clone, Debug)]
pub struct EntryRegularDesign {
    csr: CsrDesign,
    delta: usize,
    pool_lens: Vec<u32>,
}

impl EntryRegularDesign {
    /// Sample a design in which each of the `n` entries appears in exactly
    /// `delta` draws, spread over `m` pools of size `⌊nΔ/m⌋` or `⌈nΔ/m⌉`.
    ///
    /// The stub permutation is drawn from `seeds.child("stubs", 0)`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `m == 0`.
    pub fn sample(n: usize, m: usize, delta: usize, seeds: &SeedSequence) -> Self {
        assert!(n > 0, "design needs at least one entry");
        assert!(m > 0, "design needs at least one query");
        // One stub per (entry, repetition) pair.
        let mut stubs: Vec<u32> = Vec::with_capacity(n * delta);
        for i in 0..n as u32 {
            stubs.extend(std::iter::repeat_n(i, delta));
        }
        let mut rng = seeds.child("stubs", 0).rng();
        fisher_yates(&mut stubs, &mut rng);
        // Deal into m near-equal pools.
        let total = stubs.len();
        let base = total / m;
        let extra = total % m;
        let mut pools: Vec<Vec<usize>> = Vec::with_capacity(m);
        let mut pool_lens = Vec::with_capacity(m);
        let mut at = 0usize;
        for q in 0..m {
            let len = base + usize::from(q < extra);
            pools.push(stubs[at..at + len].iter().map(|&e| e as usize).collect());
            pool_lens.push(len as u32);
            at += len;
        }
        debug_assert_eq!(at, total);
        Self { csr: CsrDesign::from_pools(n, &pools), delta, pool_lens }
    }

    /// Wrap already-materialized CSR storage with its per-entry degree
    /// (the durable tier's snapshot-reload path). The per-query pool
    /// lengths are recomputed from the rows — a pool's length is the sum
    /// of its draw multiplicities — so the reloaded design answers
    /// [`PoolingDesign::pool_len`] identically to the sampled original.
    pub fn from_csr(csr: CsrDesign, delta: usize) -> Self {
        let pool_lens = (0..csr.m())
            .map(|q| {
                let (_, mults) = csr.query_row(q);
                mults.iter().sum::<u32>()
            })
            .collect();
        Self { csr, delta, pool_lens }
    }

    /// The exact per-entry degree `Δ`.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// Borrow the underlying CSR storage (for the gather decode path).
    pub fn csr(&self) -> &CsrDesign {
        &self.csr
    }

    /// The per-entry degree matching the paper's expected degree at `m`
    /// queries of pool fraction `c = Γ/n`: `Δ = ⌊c·m⌉`.
    pub fn matching_delta(m: usize, pool_fraction: f64) -> usize {
        (pool_fraction * m as f64).round().max(1.0) as usize
    }
}

impl PoolingDesign for EntryRegularDesign {
    fn n(&self) -> usize {
        self.csr.n()
    }

    fn m(&self) -> usize {
        self.csr.m()
    }

    /// Average pool size `⌊nΔ/m⌉` (pools differ by at most one draw).
    fn gamma(&self) -> usize {
        (self.csr.n() * self.delta) / self.csr.m().max(1)
    }

    fn for_each_draw(&self, q: usize, f: &mut dyn FnMut(usize)) {
        self.csr.for_each_draw(q, f);
    }

    fn for_each_distinct(&self, q: usize, f: &mut dyn FnMut(usize, u32)) {
        self.csr.for_each_distinct(q, f);
    }

    fn distinct_len(&self, q: usize) -> usize {
        self.csr.distinct_len(q)
    }

    fn pool_len(&self, q: usize) -> usize {
        self.pool_lens[q] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_has_exact_degree() {
        let (n, m, delta) = (120usize, 30usize, 12usize);
        let d = EntryRegularDesign::sample(n, m, delta, &SeedSequence::new(1));
        let mut degree = vec![0usize; n];
        for q in 0..m {
            d.for_each_draw(q, &mut |e| degree[e] += 1);
        }
        assert!(degree.iter().all(|&x| x == delta), "degrees {degree:?}");
    }

    #[test]
    fn pool_sizes_differ_by_at_most_one() {
        let d = EntryRegularDesign::sample(100, 7, 5, &SeedSequence::new(2));
        let lens: Vec<usize> = (0..7).map(|q| d.pool_len(q)).collect();
        let (lo, hi) = (*lens.iter().min().unwrap(), *lens.iter().max().unwrap());
        assert!(hi - lo <= 1, "pool sizes {lens:?}");
        assert_eq!(lens.iter().sum::<usize>(), 100 * 5);
    }

    #[test]
    fn draws_per_query_match_pool_len() {
        let d = EntryRegularDesign::sample(50, 6, 4, &SeedSequence::new(3));
        for q in 0..6 {
            let mut draws = 0usize;
            d.for_each_draw(q, &mut |_| draws += 1);
            assert_eq!(draws, d.pool_len(q), "query {q}");
        }
    }

    #[test]
    fn matching_delta_reproduces_half_density() {
        // Paper's design: Γ = n/2 ⇒ expected degree m/2.
        assert_eq!(EntryRegularDesign::matching_delta(300, 0.5), 150);
        assert_eq!(EntryRegularDesign::matching_delta(1, 0.5), 1);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = EntryRegularDesign::sample(60, 10, 6, &SeedSequence::new(4));
        let b = EntryRegularDesign::sample(60, 10, 6, &SeedSequence::new(4));
        for q in 0..10 {
            assert_eq!(a.csr().query_row(q), b.csr().query_row(q));
        }
    }

    #[test]
    fn delta_zero_yields_empty_design() {
        let d = EntryRegularDesign::sample(10, 3, 0, &SeedSequence::new(5));
        for q in 0..3 {
            assert_eq!(d.pool_len(q), 0);
            assert_eq!(d.distinct_len(q), 0);
        }
    }

    #[test]
    fn multi_edges_are_possible_and_counted() {
        // With Δ close to total draws per pool, collisions are guaranteed
        // eventually; just verify multiplicities sum to pool_len.
        let d = EntryRegularDesign::sample(10, 2, 8, &SeedSequence::new(6));
        for q in 0..2 {
            let mut mult_sum = 0u32;
            d.for_each_distinct(q, &mut |_, c| mult_sum += c);
            assert_eq!(mult_sum as usize, d.pool_len(q));
        }
    }
}
