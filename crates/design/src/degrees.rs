//! Degree statistics `Δ` and `Δ*` of the bipartite multigraph.
//!
//! For entry `x_i`, `Δ_i` counts incidences **with multiplicity**
//! (distributed `Bin(mΓ, 1/n)`) and `Δ*_i` counts *distinct* queries
//! (`Bin(m, 1 − (1−1/n)^Γ)`). Both appear throughout the paper's analysis:
//! Algorithm 1 centralizes scores by `Δ*_i · k/2`, and the event `R`
//! (Lemma 3) asserts their concentration.

use rayon::prelude::*;

use pooled_par::scatter::AtomicCounters;

use crate::PoolingDesign;

/// Per-entry degrees of a design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegreeStats {
    /// `Δ_i`: multiplicity-counted degree of each entry.
    pub delta: Vec<u64>,
    /// `Δ*_i`: number of distinct queries containing each entry.
    pub delta_star: Vec<u64>,
}

impl DegreeStats {
    /// Compute both degree vectors in one parallel sweep over queries.
    pub fn compute<D: PoolingDesign + ?Sized>(design: &D) -> Self {
        let n = design.n();
        let delta = AtomicCounters::new(n);
        let delta_star = AtomicCounters::new(n);
        (0..design.m()).into_par_iter().for_each(|q| {
            design.for_each_distinct(q, &mut |e, c| {
                delta.add(e, c as u64);
                delta_star.incr(e);
            });
        });
        Self { delta: delta.into_vec(), delta_star: delta_star.into_vec() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.delta.len()
    }

    /// Whether the design had zero entries.
    pub fn is_empty(&self) -> bool {
        self.delta.is_empty()
    }

    /// Mean multiplicity-counted degree.
    pub fn mean_delta(&self) -> f64 {
        mean(&self.delta)
    }

    /// Mean distinct degree.
    pub fn mean_delta_star(&self) -> f64 {
        mean(&self.delta_star)
    }

    /// Largest absolute deviation of `Δ_i` from `expect`.
    pub fn max_delta_deviation(&self, expect: f64) -> f64 {
        max_abs_dev(&self.delta, expect)
    }

    /// Largest absolute deviation of `Δ*_i` from `expect`.
    pub fn max_delta_star_deviation(&self, expect: f64) -> f64 {
        max_abs_dev(&self.delta_star, expect)
    }
}

fn mean(v: &[u64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64
}

fn max_abs_dev(v: &[u64], expect: f64) -> f64 {
    v.iter().map(|&x| (x as f64 - expect).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrDesign;
    use pooled_rng::SeedSequence;

    #[test]
    fn total_delta_is_m_gamma() {
        let d = CsrDesign::sample(500, 50, 250, &SeedSequence::new(1));
        let stats = DegreeStats::compute(&d);
        let total: u64 = stats.delta.iter().sum();
        assert_eq!(total, 50 * 250);
    }

    #[test]
    fn delta_star_never_exceeds_delta_or_m() {
        let d = CsrDesign::sample(300, 40, 150, &SeedSequence::new(2));
        let stats = DegreeStats::compute(&d);
        for i in 0..stats.len() {
            assert!(stats.delta_star[i] <= stats.delta[i], "entry {i}");
            assert!(stats.delta_star[i] <= 40, "entry {i}");
        }
    }

    #[test]
    fn means_match_model_expectations() {
        // E[Δ_i] = mΓ/n, E[Δ*_i] = m(1 − (1−1/n)^Γ).
        let (n, m) = (2000usize, 400usize);
        let gamma = n / 2;
        let d = CsrDesign::sample(n, m, gamma, &SeedSequence::new(3));
        let stats = DegreeStats::compute(&d);
        let want_delta = m as f64 * gamma as f64 / n as f64;
        let p = 1.0 - (1.0 - 1.0 / n as f64).powi(gamma as i32);
        let want_star = m as f64 * p;
        assert!((stats.mean_delta() - want_delta).abs() / want_delta < 0.02);
        assert!((stats.mean_delta_star() - want_star).abs() / want_star < 0.02);
    }

    #[test]
    fn explicit_pool_degrees() {
        let d = CsrDesign::from_pools(4, &[vec![0, 0, 1], vec![0, 2]]);
        let stats = DegreeStats::compute(&d);
        assert_eq!(stats.delta, vec![3, 1, 1, 0]);
        assert_eq!(stats.delta_star, vec![2, 1, 1, 0]);
    }

    #[test]
    fn deviations_zero_when_exact() {
        let d = CsrDesign::from_pools(2, &[vec![0, 1], vec![0, 1]]);
        let stats = DegreeStats::compute(&d);
        assert_eq!(stats.max_delta_deviation(2.0), 0.0);
        assert_eq!(stats.max_delta_star_deviation(2.0), 0.0);
    }

    #[test]
    fn empty_query_set() {
        let d = CsrDesign::sample(10, 0, 5, &SeedSequence::new(4));
        let stats = DegreeStats::compute(&d);
        assert_eq!(stats.delta, vec![0; 10]);
        assert_eq!(stats.delta_star, vec![0; 10]);
    }
}
