//! The user-facing design constructor.
//!
//! [`RandomRegularDesign`] wraps the two physical representations behind one
//! type and picks between them automatically from a memory estimate: the
//! expected number of stored incidences is `m · n · (1 − (1−1/n)^Γ)`
//! (≈ `0.39·n·m` at the paper's `Γ = n/2`), and beyond
//! [`AUTO_MATERIALIZE_LIMIT`] pairs the streaming representation wins.

use pooled_rng::SeedSequence;

use crate::csr::CsrDesign;
use crate::streaming::StreamingDesign;
use crate::PoolingDesign;

/// Above this expected number of (entry, query) incidences, `Auto` storage
/// switches to streaming regeneration (≈1.6 GiB of CSR at 16 B/pair).
pub const AUTO_MATERIALIZE_LIMIT: u64 = 100_000_000;

/// Storage policy for [`RandomRegularDesign::sample_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StorageMode {
    /// Choose by memory estimate (default).
    #[default]
    Auto,
    /// Always materialize CSR.
    Materialized,
    /// Always regenerate from seeds.
    Streaming,
}

/// The paper's random regular pooling design `G(n, m, Γ)` with `Γ = ⌊n/2⌋`
/// by default.
#[derive(Clone, Debug)]
pub enum RandomRegularDesign {
    /// Materialized CSR representation.
    Csr(CsrDesign),
    /// Seed-only streaming representation.
    Streaming(StreamingDesign),
}

impl RandomRegularDesign {
    /// Sample `G(n, m, Γ = ⌊n/2⌋)` with automatic storage choice.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn sample(n: usize, m: usize, seeds: &SeedSequence) -> Self {
        Self::sample_with(n, m, n / 2, seeds, StorageMode::Auto)
    }

    /// Sample with explicit pool size and storage mode.
    pub fn sample_with(
        n: usize,
        m: usize,
        gamma: usize,
        seeds: &SeedSequence,
        mode: StorageMode,
    ) -> Self {
        assert!(n > 0, "design needs at least one entry");
        let materialize = match mode {
            StorageMode::Materialized => true,
            StorageMode::Streaming => false,
            StorageMode::Auto => expected_incidences(n, m, gamma) <= AUTO_MATERIALIZE_LIMIT,
        };
        if materialize {
            Self::Csr(CsrDesign::sample(n, m, gamma, seeds))
        } else {
            Self::Streaming(StreamingDesign::new(n, m, gamma, seeds))
        }
    }

    /// Whether this design is materialized.
    pub fn is_materialized(&self) -> bool {
        matches!(self, Self::Csr(_))
    }

    /// Access the CSR representation, if materialized.
    pub fn as_csr(&self) -> Option<&CsrDesign> {
        match self {
            Self::Csr(c) => Some(c),
            Self::Streaming(_) => None,
        }
    }
}

/// Expected number of distinct (entry, query) incidences in `G(n, m, Γ)`.
pub fn expected_incidences(n: usize, m: usize, gamma: usize) -> u64 {
    let n_f = n as f64;
    let p_distinct = 1.0 - (1.0 - 1.0 / n_f).powi(gamma.min(i32::MAX as usize) as i32);
    (m as f64 * n_f * p_distinct).ceil() as u64
}

impl PoolingDesign for RandomRegularDesign {
    fn n(&self) -> usize {
        match self {
            Self::Csr(d) => d.n(),
            Self::Streaming(d) => d.n(),
        }
    }

    fn m(&self) -> usize {
        match self {
            Self::Csr(d) => d.m(),
            Self::Streaming(d) => d.m(),
        }
    }

    fn gamma(&self) -> usize {
        match self {
            Self::Csr(d) => d.gamma(),
            Self::Streaming(d) => d.gamma(),
        }
    }

    fn for_each_draw(&self, q: usize, f: &mut dyn FnMut(usize)) {
        match self {
            Self::Csr(d) => d.for_each_draw(q, f),
            Self::Streaming(d) => d.for_each_draw(q, f),
        }
    }

    fn for_each_distinct(&self, q: usize, f: &mut dyn FnMut(usize, u32)) {
        match self {
            Self::Csr(d) => d.for_each_distinct(q, f),
            Self::Streaming(d) => d.for_each_distinct(q, f),
        }
    }

    fn distinct_len(&self, q: usize) -> usize {
        match self {
            Self::Csr(d) => d.distinct_len(q),
            Self::Streaming(d) => d.distinct_len(q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_gamma_is_half_n() {
        let d = RandomRegularDesign::sample(100, 5, &SeedSequence::new(1));
        assert_eq!(d.gamma(), 50);
    }

    #[test]
    fn auto_mode_materializes_small_designs() {
        let d = RandomRegularDesign::sample(1000, 100, &SeedSequence::new(1));
        assert!(d.is_materialized());
        assert!(d.as_csr().is_some());
    }

    #[test]
    fn auto_mode_streams_huge_designs() {
        // n=10⁶, m=20_000 ⇒ ≈ 7.9e9 expected incidences > limit.
        let d = RandomRegularDesign::sample_with(
            1_000_000,
            20_000,
            500_000,
            &SeedSequence::new(1),
            StorageMode::Auto,
        );
        assert!(!d.is_materialized());
    }

    #[test]
    fn forced_modes_are_respected() {
        let seeds = SeedSequence::new(2);
        let c = RandomRegularDesign::sample_with(100, 10, 50, &seeds, StorageMode::Materialized);
        let s = RandomRegularDesign::sample_with(100, 10, 50, &seeds, StorageMode::Streaming);
        assert!(c.is_materialized());
        assert!(!s.is_materialized());
    }

    #[test]
    fn representations_agree_on_pools() {
        let seeds = SeedSequence::new(3);
        let c = RandomRegularDesign::sample_with(300, 20, 150, &seeds, StorageMode::Materialized);
        let s = RandomRegularDesign::sample_with(300, 20, 150, &seeds, StorageMode::Streaming);
        for q in 0..20 {
            let mut a = Vec::new();
            let mut b = Vec::new();
            c.for_each_distinct(q, &mut |e, cnt| a.push((e, cnt)));
            s.for_each_distinct(q, &mut |e, cnt| b.push((e, cnt)));
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn expected_incidences_formula() {
        // Γ = n/2 ⇒ fraction ≈ 1 − e^{−1/2} ≈ 0.3935.
        let n = 100_000;
        let est = expected_incidences(n, 1000, n / 2);
        let want = (1000.0 * n as f64 * 0.3935) as u64;
        let rel = (est as f64 - want as f64).abs() / want as f64;
        assert!(rel < 0.01, "est={est} want≈{want}");
    }

    #[test]
    fn odd_n_floors_gamma() {
        let d = RandomRegularDesign::sample(7, 3, &SeedSequence::new(4));
        assert_eq!(d.gamma(), 3);
    }
}
