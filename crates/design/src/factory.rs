//! Uniform constructor over all pooling-design families.
//!
//! The design-ablation experiment sweeps the decoder over every family at
//! matched density (expected pool size `c·n`, expected entry degree `c·m`),
//! so it needs to treat designs interchangeably. [`DesignKind`] names the
//! family and [`AnyDesign`] is the dispatching [`PoolingDesign`].

use pooled_rng::SeedSequence;

use crate::bernoulli::BernoulliDesign;
use crate::csr::CsrDesign;
use crate::entry_regular::EntryRegularDesign;
use crate::noreplace::NoReplaceDesign;
use crate::PoolingDesign;

/// The pooling-design families the workspace implements.
///
/// `Hash` so the engine's design cache can key on the family directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DesignKind {
    /// The paper's design: `Γ = c·n` draws per query, with replacement.
    RandomRegular,
    /// `Γ = c·n` distinct entries per query (no multi-edges).
    NoReplace,
    /// Independent membership with probability `c` (binomial pool sizes).
    Bernoulli,
    /// Exactly `Δ = c·m` draws per entry (configuration model).
    EntryRegular,
}

impl DesignKind {
    /// Every family, in presentation order.
    pub const ALL: [DesignKind; 4] = [
        DesignKind::RandomRegular,
        DesignKind::NoReplace,
        DesignKind::Bernoulli,
        DesignKind::EntryRegular,
    ];

    /// Stable identifier for CSV rows and manifests.
    pub fn name(&self) -> &'static str {
        match self {
            DesignKind::RandomRegular => "random_regular",
            DesignKind::NoReplace => "no_replace",
            DesignKind::Bernoulli => "bernoulli",
            DesignKind::EntryRegular => "entry_regular",
        }
    }

    /// Sample a design of this family with `m` queries over `n` entries at
    /// density `c` (the paper's choice is `c = 1/2`): expected pool size
    /// `c·n`, expected entry degree `c·m`.
    ///
    /// # Panics
    /// Panics if `n == 0`, `m == 0`, or `c ∉ (0, 1]`.
    pub fn sample(&self, n: usize, m: usize, c: f64, seeds: &SeedSequence) -> AnyDesign {
        assert!(c > 0.0 && c <= 1.0, "density c={c} outside (0,1]");
        assert!(m > 0, "design needs at least one query");
        let gamma = ((c * n as f64).round() as usize).clamp(1, n);
        match self {
            DesignKind::RandomRegular => {
                AnyDesign::RandomRegular(CsrDesign::sample(n, m, gamma, seeds))
            }
            DesignKind::NoReplace => {
                AnyDesign::NoReplace(NoReplaceDesign::sample(n, m, gamma, seeds))
            }
            DesignKind::Bernoulli => AnyDesign::Bernoulli(BernoulliDesign::sample(n, m, c, seeds)),
            DesignKind::EntryRegular => {
                let delta = EntryRegularDesign::matching_delta(m, c);
                AnyDesign::EntryRegular(EntryRegularDesign::sample(n, m, delta, seeds))
            }
        }
    }
}

/// A design of any family, dispatching [`PoolingDesign`] to the variant.
#[derive(Clone, Debug)]
pub enum AnyDesign {
    /// The paper's with-replacement regular design.
    RandomRegular(CsrDesign),
    /// Fixed-size pools without replacement.
    NoReplace(NoReplaceDesign),
    /// Independent Bernoulli membership.
    Bernoulli(BernoulliDesign),
    /// Exact per-entry degrees.
    EntryRegular(EntryRegularDesign),
}

impl AnyDesign {
    /// The family of this design.
    pub fn kind(&self) -> DesignKind {
        match self {
            AnyDesign::RandomRegular(_) => DesignKind::RandomRegular,
            AnyDesign::NoReplace(_) => DesignKind::NoReplace,
            AnyDesign::Bernoulli(_) => DesignKind::Bernoulli,
            AnyDesign::EntryRegular(_) => DesignKind::EntryRegular,
        }
    }

    /// The underlying CSR storage of whichever variant.
    pub fn csr(&self) -> &CsrDesign {
        match self {
            AnyDesign::RandomRegular(c) => c,
            AnyDesign::NoReplace(d) => d.csr(),
            AnyDesign::Bernoulli(d) => d.csr(),
            AnyDesign::EntryRegular(d) => d.csr(),
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $d:ident => $body:expr) => {
        match $self {
            AnyDesign::RandomRegular($d) => $body,
            AnyDesign::NoReplace($d) => $body,
            AnyDesign::Bernoulli($d) => $body,
            AnyDesign::EntryRegular($d) => $body,
        }
    };
}

impl PoolingDesign for AnyDesign {
    fn n(&self) -> usize {
        dispatch!(self, d => d.n())
    }

    fn m(&self) -> usize {
        dispatch!(self, d => d.m())
    }

    fn gamma(&self) -> usize {
        dispatch!(self, d => d.gamma())
    }

    fn for_each_draw(&self, q: usize, f: &mut dyn FnMut(usize)) {
        dispatch!(self, d => d.for_each_draw(q, f))
    }

    fn for_each_distinct(&self, q: usize, f: &mut dyn FnMut(usize, u32)) {
        dispatch!(self, d => d.for_each_distinct(q, f))
    }

    fn distinct_len(&self, q: usize) -> usize {
        dispatch!(self, d => d.distinct_len(q))
    }

    fn pool_len(&self, q: usize) -> usize {
        dispatch!(self, d => d.pool_len(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_sample_at_matched_density() {
        let seeds = SeedSequence::new(11);
        for kind in DesignKind::ALL {
            let d = kind.sample(200, 50, 0.5, &seeds);
            assert_eq!(d.kind(), kind);
            assert_eq!(d.n(), 200);
            assert_eq!(d.m(), 50);
            // Total draws ≈ c·n·m within 10% for every family.
            let draws: usize = (0..d.m()).map(|q| d.pool_len(q)).sum();
            let want = 0.5 * 200.0 * 50.0;
            assert!(
                (draws as f64 - want).abs() / want < 0.1,
                "{}: {draws} draws vs {want}",
                kind.name()
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = DesignKind::ALL.iter().map(|k| k.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn csr_accessor_reaches_every_variant() {
        let seeds = SeedSequence::new(12);
        for kind in DesignKind::ALL {
            let d = kind.sample(50, 10, 0.5, &seeds);
            assert_eq!(d.csr().n(), 50);
        }
    }

    #[test]
    #[should_panic(expected = "outside (0,1]")]
    fn rejects_zero_density() {
        let _ = DesignKind::RandomRegular.sample(10, 5, 0.0, &SeedSequence::new(1));
    }

    #[test]
    fn pool_len_totals_are_consistent_with_draw_iteration() {
        let seeds = SeedSequence::new(13);
        for kind in DesignKind::ALL {
            let d = kind.sample(80, 20, 0.4, &seeds);
            for q in 0..d.m() {
                let mut draws = 0usize;
                d.for_each_draw(q, &mut |_| draws += 1);
                assert_eq!(draws, d.pool_len(q), "{} query {q}", kind.name());
            }
        }
    }
}
