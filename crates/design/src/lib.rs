#![warn(missing_docs)]

//! Pooling designs: the random regular bipartite multigraph `G(n, m, Γ)`.
//!
//! The paper's design (§II) draws, for each of the `m` queries, exactly
//! `Γ = n/2` entries uniformly at random **with replacement**. The design is
//! therefore a bipartite *multigraph*: an entry can appear several times in
//! one query, and a one-entry appearing `A_ij` times contributes `A_ij` to
//! the query result, while the decoder's Ψ/Δ* statistics count the query
//! only once (“multi-edges counted only once”).
//!
//! Two physical representations implement the same [`PoolingDesign`] trait:
//!
//! * [`csr::CsrDesign`] — materialized compressed-sparse-row storage of
//!   `(entry, multiplicity)` pairs per query plus the transposed
//!   entry→queries adjacency. Fast repeated access; `O(m·Γ)` build, about
//!   `0.4·n·m` resident pairs.
//! * [`streaming::StreamingDesign`] — stores only one 64-bit substream seed
//!   per query and regenerates the draws on demand. `O(n + m)` memory, which
//!   is what makes the paper's `n = 10⁶` Fig. 2 points feasible.
//!
//! Both are deterministic functions of a [`pooled_rng::SeedSequence`], so
//! `CsrDesign::sample(seeds) ≡ StreamingDesign::new(seeds).materialize()` —
//! an equality the integration tests pin down.

//! Beyond the paper's design, the crate implements the alternative families
//! the design-ablation experiment compares at matched density: fixed-size
//! pools without replacement ([`noreplace`]), independent Bernoulli
//! membership ([`bernoulli`]) and exact per-entry degrees via the
//! configuration model ([`entry_regular`]); [`factory::DesignKind`] samples
//! any of them uniformly.

pub mod batched;
pub mod bernoulli;
pub mod concentration;
pub mod csr;
pub mod degrees;
pub mod entry_regular;
pub mod factory;
pub mod fused;
pub mod matvec;
pub mod multigraph;
pub mod noreplace;
pub mod streaming;

pub use batched::{
    decode_sums_fused_batch, decode_sums_fused_batch_stream, scatter_distinct_batch,
};
pub use bernoulli::BernoulliDesign;
pub use concentration::{check_concentration, ConcentrationReport};
pub use csr::CsrDesign;
pub use degrees::DegreeStats;
pub use entry_regular::EntryRegularDesign;
pub use factory::{AnyDesign, DesignKind};
pub use fused::{decode_sums_fused, decode_sums_fused_stream, scatter_distinct_into, FusedArena};
pub use multigraph::RandomRegularDesign;
pub use noreplace::NoReplaceDesign;
pub use streaming::StreamingDesign;

/// Abstract interface over pooling designs.
///
/// A design knows its dimensions and can iterate each query's pool both with
/// multiplicities (needed to *execute* a query) and deduplicated (needed by
/// the decoder's neighborhood sums). Iteration is per-query so callers can
/// parallelize across queries with rayon.
pub trait PoolingDesign: Sync {
    /// Number of signal entries `n`.
    fn n(&self) -> usize;

    /// Number of queries `m`.
    fn m(&self) -> usize;

    /// Pool size `Γ` (draws per query, with replacement).
    fn gamma(&self) -> usize;

    /// Visit every draw of query `q` (with multiplicity, `Γ` visits total).
    fn for_each_draw(&self, q: usize, f: &mut dyn FnMut(usize));

    /// Visit every *distinct* entry of query `q` together with its
    /// multiplicity `A_iq ≥ 1`.
    fn for_each_distinct(&self, q: usize, f: &mut dyn FnMut(usize, u32));

    /// The number of distinct entries in query `q` (`|∂a_q|` as a set).
    fn distinct_len(&self, q: usize) -> usize {
        let mut count = 0;
        self.for_each_distinct(q, &mut |_, _| count += 1);
        count
    }

    /// The number of draws in query `q` **with multiplicity** (`Σ_i A_iq`).
    ///
    /// For the paper's regular design this is the constant `Γ`; the
    /// alternative designs ([`bernoulli`], [`entry_regular`]) override it
    /// because their pool sizes vary per query. The Γ-general decoder
    /// centers scores with these exact per-query sizes.
    fn pool_len(&self, q: usize) -> usize {
        let _ = q;
        self.gamma()
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use pooled_rng::SeedSequence;

    #[test]
    fn default_distinct_len_counts_visits() {
        let seeds = SeedSequence::new(5);
        let d = CsrDesign::sample(100, 10, 50, &seeds);
        for q in 0..d.m() {
            let mut via_visits = 0;
            d.for_each_distinct(q, &mut |_, _| via_visits += 1);
            assert_eq!(d.distinct_len(q), via_visits);
        }
    }
}
