//! Seed-only storage of a pooling design.
//!
//! A query's pool is a pure function of `(master seed, query index)`; storing
//! the design therefore needs nothing beyond its parameters. Every access
//! regenerates the `Γ` draws from the query's substream, trading CPU for an
//! `O(n + m)` footprint — the representation behind the paper-scale
//! (`n = 10⁶`) points of Fig. 2.

use pooled_rng::bounded::FixedBound;
use pooled_rng::SeedSequence;

use crate::csr::CsrDesign;
use crate::PoolingDesign;

/// A pooling design regenerated from per-query substreams on demand.
#[derive(Clone, Copy, Debug)]
pub struct StreamingDesign {
    n: usize,
    m: usize,
    gamma: usize,
    seeds: SeedSequence,
}

impl StreamingDesign {
    /// Create the design `G(n, m, Γ)` rooted at `seeds`.
    ///
    /// Uses the same `seeds.child("query", q)` substream contract as
    /// [`CsrDesign::sample`], so materializing this design reproduces the
    /// CSR design bit-for-bit.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, m: usize, gamma: usize, seeds: &SeedSequence) -> Self {
        assert!(n > 0, "design needs at least one entry");
        Self { n, m, gamma, seeds: *seeds }
    }

    /// The seed node this design regenerates from.
    pub fn seeds(&self) -> SeedSequence {
        self.seeds
    }

    /// Materialize into CSR storage (for tests and small designs).
    pub fn materialize(&self) -> CsrDesign {
        CsrDesign::sample(self.n, self.m, self.gamma, &self.seeds)
    }

    /// Visit the draws of query `q` without allocating.
    #[inline]
    pub fn visit_draws<F: FnMut(usize)>(&self, q: usize, mut f: F) {
        let mut rng = self.seeds.child("query", q as u64).rng();
        let fb = FixedBound::new(self.n as u64);
        for _ in 0..self.gamma {
            f(fb.sample(&mut rng) as usize);
        }
    }
}

impl PoolingDesign for StreamingDesign {
    fn n(&self) -> usize {
        self.n
    }

    fn m(&self) -> usize {
        self.m
    }

    fn gamma(&self) -> usize {
        self.gamma
    }

    fn for_each_draw(&self, q: usize, f: &mut dyn FnMut(usize)) {
        self.visit_draws(q, f);
    }

    fn for_each_distinct(&self, q: usize, f: &mut dyn FnMut(usize, u32)) {
        // Regenerate, sort, run-length encode on the fly.
        let mut draws: Vec<u32> = Vec::with_capacity(self.gamma);
        self.visit_draws(q, |e| draws.push(e as u32));
        draws.sort_unstable();
        let mut i = 0;
        while i < draws.len() {
            let v = draws[i];
            let mut j = i + 1;
            while j < draws.len() && draws[j] == v {
                j += 1;
            }
            f(v as usize, (j - i) as u32);
            i = j;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_materialized_csr() {
        let seeds = SeedSequence::new(1905);
        let s = StreamingDesign::new(200, 40, 100, &seeds);
        let c = s.materialize();
        assert_eq!(s.n(), c.n());
        assert_eq!(s.m(), c.m());
        for q in 0..s.m() {
            let mut stream_pairs = Vec::new();
            s.for_each_distinct(q, &mut |e, cnt| stream_pairs.push((e, cnt)));
            let mut csr_pairs = Vec::new();
            c.for_each_distinct(q, &mut |e, cnt| csr_pairs.push((e, cnt)));
            assert_eq!(stream_pairs, csr_pairs, "query {q}");
        }
    }

    #[test]
    fn draw_count_is_gamma() {
        let s = StreamingDesign::new(100, 10, 37, &SeedSequence::new(3));
        for q in 0..10 {
            let mut count = 0;
            s.visit_draws(q, |_| count += 1);
            assert_eq!(count, 37);
        }
    }

    #[test]
    fn repeated_visits_are_identical() {
        let s = StreamingDesign::new(1000, 5, 500, &SeedSequence::new(8));
        let mut first = Vec::new();
        s.visit_draws(2, |e| first.push(e));
        let mut second = Vec::new();
        s.visit_draws(2, |e| second.push(e));
        assert_eq!(first, second);
    }

    #[test]
    fn distinct_multiplicities_sum_to_gamma() {
        let s = StreamingDesign::new(64, 12, 96, &SeedSequence::new(5));
        for q in 0..12 {
            let mut total = 0u32;
            s.for_each_distinct(q, &mut |_, c| total += c);
            assert_eq!(total as usize, s.gamma());
        }
    }

    #[test]
    fn queries_differ_from_each_other() {
        let s = StreamingDesign::new(10_000, 2, 5_000, &SeedSequence::new(11));
        let mut q0 = Vec::new();
        let mut q1 = Vec::new();
        s.visit_draws(0, |e| q0.push(e));
        s.visit_draws(1, |e| q1.push(e));
        assert_ne!(q0, q1);
    }

    #[test]
    fn copy_semantics_share_nothing_mutable() {
        let s = StreamingDesign::new(50, 3, 25, &SeedSequence::new(2));
        let t = s; // Copy
        assert_eq!(s.n(), t.n());
        let mut a = Vec::new();
        let mut b = Vec::new();
        s.visit_draws(0, |e| a.push(e));
        t.visit_draws(0, |e| b.push(e));
        assert_eq!(a, b);
    }
}
