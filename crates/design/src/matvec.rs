//! Biadjacency matrix–vector products.
//!
//! The paper (§I-C) observes that Algorithm 1 is two matvecs: `Δ* = M·1` and
//! `Ψ = M·y` where `M` is the unweighted (distinct-incidence) biadjacency
//! matrix, plus the query execution itself, `y = Aᵀσ`, with `A` the
//! multiplicity-weighted matrix. These kernels are the hot path of the whole
//! simulator.
//!
//! # Choosing a kernel
//!
//! | kernel | entry point | parallelism | atomics | passes over design | allocation |
//! |---|---|---|---|---|---|
//! | scatter (atomic) | [`scatter_distinct_u64`] | query-parallel | yes | 1 (+1 for `y`) | per call |
//! | scatter (blocked) | [`crate::fused::scatter_distinct_into`] | query-parallel, privatized | no | 1 (+1 for `y`) | arena, reused |
//! | gather | [`crate::csr::CsrDesign::gather_distinct_into`] | entry-parallel over transpose | no | 1 (+1 for `y`) | none |
//! | fused | [`crate::fused::decode_sums_fused`] | query-parallel, privatized | no | **1 total** (`y`, Ψ, Δ*) | arena, reused |
//! | batched | [`crate::batched::decode_sums_fused_batch`] | sequential per batch (callers parallelize across batches/shards) | no | **1 total for B jobs** | planes, reused |
//!
//! Trade-offs: atomic scatter works on *any* [`PoolingDesign`] (including
//! streaming) with zero extra memory but serializes on hot slots; blocked
//! scatter privatizes per-worker planes (`t·n` words) and wins once the
//! update density `m·Γ/n` clears `pooled_par::blocked::choose_scatter`'s
//! threshold; gather needs the materialized CSR transpose but is contention
//! free by construction; the fused kernel is the Monte-Carlo hot path —
//! one traversal produces all three vectors into reusable buffers
//! (streaming variant regenerates each query's pool once instead of twice).
//! All four produce bit-identical results (exact `u64` sums, property
//! tested).

use rayon::prelude::*;

use pooled_par::scatter::AtomicCounters;

use crate::PoolingDesign;

/// Query sums with multiplicity: `out[q] = Σ_draws x[i]` (i.e. `Aᵀx`).
///
/// This is exactly the additive query semantics: a one-entry drawn twice
/// contributes twice.
pub fn pool_sums_u64<D: PoolingDesign + ?Sized>(design: &D, x: &[u64]) -> Vec<u64> {
    assert_eq!(x.len(), design.n(), "input vector must have length n");
    (0..design.m())
        .into_par_iter()
        .map(|q| {
            let mut acc = 0u64;
            design.for_each_distinct(q, &mut |e, c| {
                acc += x[e] * c as u64;
            });
            acc
        })
        .collect()
}

/// Floating-point query sums with multiplicity (`Aᵀx` over `f64`), used by
/// the compressed-sensing baselines.
pub fn pool_sums_f64<D: PoolingDesign + ?Sized>(design: &D, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), design.n(), "input vector must have length n");
    (0..design.m())
        .into_par_iter()
        .map(|q| {
            let mut acc = 0.0f64;
            design.for_each_distinct(q, &mut |e, c| {
                acc += x[e] * c as f64;
            });
            acc
        })
        .collect()
}

/// Scatter-based distinct accumulation:
/// `psi[i] = Σ_{q ∋ i} w[q]` (distinct incidence) and `dstar[i] = |∂*x_i|`.
///
/// Atomic relaxed adds; identical output to the CSR gather path.
pub fn scatter_distinct_u64<D: PoolingDesign + ?Sized>(
    design: &D,
    w: &[u64],
) -> (Vec<u64>, Vec<u64>) {
    assert_eq!(w.len(), design.m(), "weight vector must have length m");
    let psi = AtomicCounters::new(design.n());
    let dstar = AtomicCounters::new(design.n());
    (0..design.m()).into_par_iter().for_each(|q| {
        let wq = w[q];
        design.for_each_distinct(q, &mut |e, _| {
            psi.add(e, wq);
            dstar.incr(e);
        });
    });
    (psi.into_vec(), dstar.into_vec())
}

/// Entry-major spread of query weights *with* multiplicity:
/// `out[i] = Σ_q A_iq · w[q]` — the transpose product `A·w` the baselines use.
pub fn spread_weighted_f64<D: PoolingDesign + ?Sized>(design: &D, w: &[f64]) -> Vec<f64> {
    assert_eq!(w.len(), design.m(), "weight vector must have length m");
    let out: Vec<parking_lot_free::AtomicF64> =
        (0..design.n()).map(|_| parking_lot_free::AtomicF64::new(0.0)).collect();
    (0..design.m()).into_par_iter().for_each(|q| {
        let wq = w[q];
        design.for_each_distinct(q, &mut |e, c| {
            out[e].add(wq * c as f64);
        });
    });
    out.into_iter().map(|a| a.get()).collect()
}

/// Minimal atomic `f64` add via `AtomicU64` CAS (no external crates needed).
mod parking_lot_free {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub struct AtomicF64(AtomicU64);

    impl AtomicF64 {
        pub fn new(v: f64) -> Self {
            Self(AtomicU64::new(v.to_bits()))
        }

        pub fn add(&self, v: f64) {
            let mut cur = self.0.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => return,
                    Err(seen) => cur = seen,
                }
            }
        }

        pub fn get(&self) -> f64 {
            f64::from_bits(self.0.load(Ordering::Relaxed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrDesign;
    use pooled_rng::SeedSequence;

    fn design() -> CsrDesign {
        CsrDesign::sample(200, 60, 100, &SeedSequence::new(21))
    }

    #[test]
    fn pool_sums_all_ones_equal_gamma() {
        let d = design();
        let ones = vec![1u64; d.n()];
        let sums = pool_sums_u64(&d, &ones);
        assert!(sums.iter().all(|&s| s as usize == d.gamma()), "{sums:?}");
    }

    #[test]
    fn pool_sums_match_f64_version() {
        let d = design();
        let x: Vec<u64> = (0..d.n() as u64).map(|i| i % 3).collect();
        let xf: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let a = pool_sums_u64(&d, &x);
        let b = pool_sums_f64(&d, &xf);
        for (ia, ib) in a.iter().zip(&b) {
            assert!((*ia as f64 - ib).abs() < 1e-9);
        }
    }

    #[test]
    fn scatter_matches_gather() {
        let d = design();
        let w: Vec<u64> = (0..d.m() as u64).map(|q| 3 * q + 1).collect();
        let (psi_s, ds_s) = scatter_distinct_u64(&d, &w);
        let mut psi_g = vec![0u64; d.n()];
        let mut ds_g = vec![0u64; d.n()];
        d.gather_distinct_into(&w, &mut psi_g, &mut ds_g);
        assert_eq!(psi_s, psi_g);
        assert_eq!(ds_s, ds_g);
    }

    #[test]
    fn multiplicity_counts_in_pool_sums_not_in_psi() {
        // Query 0 contains entry 1 three times: the query result weighs it
        // thrice, the Ψ sum only once.
        let d = CsrDesign::from_pools(4, &[vec![1, 1, 1, 2]]);
        let x = vec![0u64, 1, 0, 0];
        assert_eq!(pool_sums_u64(&d, &x), vec![3]);
        let (psi, dstar) = scatter_distinct_u64(&d, &[5]);
        assert_eq!(psi, vec![0, 5, 5, 0]);
        assert_eq!(dstar, vec![0, 1, 1, 0]);
    }

    #[test]
    fn spread_weighted_applies_multiplicity() {
        let d = CsrDesign::from_pools(3, &[vec![0, 0, 1], vec![1, 2]]);
        let out = spread_weighted_f64(&d, &[2.0, 10.0]);
        assert_eq!(out, vec![4.0, 12.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "length n")]
    fn wrong_input_length_panics() {
        let d = design();
        let _ = pool_sums_u64(&d, &[1, 2, 3]);
    }

    #[test]
    fn atomic_f64_accumulates_concurrently() {
        let acc = super::parking_lot_free::AtomicF64::new(0.0);
        use rayon::prelude::*;
        (0..10_000u64).into_par_iter().for_each(|_| acc.add(0.5));
        assert!((acc.get() - 5_000.0).abs() < 1e-6);
    }
}
