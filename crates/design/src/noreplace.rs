//! Fixed-size pools sampled **without** replacement.
//!
//! The paper's design draws `Γ` entries *with* replacement and remarks
//! (§I-D) that multi-edges "do not affect practicability". This design is
//! the without-replacement counterpart — each query is a uniform `Γ`-subset
//! of the entries — so the ablation can measure what the multi-edges
//! actually cost or buy. A one-entry can contribute at most 1 to each query
//! here, and every pool has exactly `Γ` distinct members (so `Δ*` degrees
//! concentrate slightly differently: `E[Δ*_i] = Γm/n = m/2` instead of
//! `(1−e^{−1/2})m ≈ 0.39m`).

use rayon::prelude::*;

use pooled_rng::shuffle::sample_distinct_floyd;
use pooled_rng::SeedSequence;

use crate::csr::CsrDesign;
use crate::PoolingDesign;

/// A query-regular design whose pools are uniform `Γ`-subsets (no
/// multi-edges), materialized in CSR form.
#[derive(Clone, Debug)]
pub struct NoReplaceDesign {
    csr: CsrDesign,
}

impl NoReplaceDesign {
    /// Sample `m` queries, each a uniform `gamma`-subset of `{0,…,n−1}`,
    /// drawn from the per-query substream `seeds.child("query", q)`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `gamma > n`.
    pub fn sample(n: usize, m: usize, gamma: usize, seeds: &SeedSequence) -> Self {
        assert!(n > 0, "design needs at least one entry");
        assert!(gamma <= n, "Γ={gamma} cannot exceed n={n} without replacement");
        let pools: Vec<Vec<usize>> = (0..m)
            .into_par_iter()
            .map(|q| {
                let mut rng = seeds.child("query", q as u64).rng();
                sample_distinct_floyd(n, gamma, &mut rng)
            })
            .collect();
        Self { csr: CsrDesign::from_pools(n, &pools) }
    }

    /// Wrap already-materialized CSR storage (the durable tier's
    /// snapshot-reload path: the CSR was serialized from a sampled
    /// design, so re-wrapping it reproduces that design bit-identically
    /// without resampling). The caller guarantees the rows actually came
    /// from a without-replacement sample; this type adds no state beyond
    /// the CSR, so no invariant can be broken here that
    /// [`CsrDesign::from_sorted_rle_rows`] did not already check.
    pub fn from_csr(csr: CsrDesign) -> Self {
        Self { csr }
    }

    /// Borrow the underlying CSR storage (for the gather decode path).
    pub fn csr(&self) -> &CsrDesign {
        &self.csr
    }
}

impl PoolingDesign for NoReplaceDesign {
    fn n(&self) -> usize {
        self.csr.n()
    }

    fn m(&self) -> usize {
        self.csr.m()
    }

    fn gamma(&self) -> usize {
        self.csr.gamma()
    }

    fn for_each_draw(&self, q: usize, f: &mut dyn FnMut(usize)) {
        self.csr.for_each_draw(q, f);
    }

    fn for_each_distinct(&self, q: usize, f: &mut dyn FnMut(usize, u32)) {
        self.csr.for_each_distinct(q, f);
    }

    fn distinct_len(&self, q: usize) -> usize {
        self.csr.distinct_len(q)
    }

    fn pool_len(&self, _q: usize) -> usize {
        self.csr.gamma()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pool_has_exactly_gamma_distinct_entries() {
        let d = NoReplaceDesign::sample(100, 25, 50, &SeedSequence::new(1));
        for q in 0..d.m() {
            assert_eq!(d.distinct_len(q), 50, "query {q}");
            d.for_each_distinct(q, &mut |_, c| assert_eq!(c, 1, "no multi-edges"));
        }
    }

    #[test]
    fn gamma_equal_n_gives_full_pools() {
        let d = NoReplaceDesign::sample(20, 5, 20, &SeedSequence::new(2));
        for q in 0..5 {
            let mut seen = [false; 20];
            d.for_each_distinct(q, &mut |e, _| seen[e] = true);
            assert!(seen.iter().all(|&s| s), "query {q} must contain every entry");
        }
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn rejects_gamma_above_n() {
        let _ = NoReplaceDesign::sample(10, 2, 11, &SeedSequence::new(3));
    }

    #[test]
    fn membership_is_uniform() {
        let (n, m, gamma) = (80usize, 4000usize, 40usize);
        let d = NoReplaceDesign::sample(n, m, gamma, &SeedSequence::new(4));
        let mut hits = vec![0u32; n];
        for q in 0..m {
            d.for_each_distinct(q, &mut |e, _| hits[e] += 1);
        }
        let want = m as f64 * gamma as f64 / n as f64;
        for (i, &h) in hits.iter().enumerate() {
            assert!((h as f64 - want).abs() / want < 0.1, "entry {i}: {h} vs {want}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = NoReplaceDesign::sample(60, 8, 30, &SeedSequence::new(5));
        let b = NoReplaceDesign::sample(60, 8, 30, &SeedSequence::new(5));
        for q in 0..8 {
            assert_eq!(a.csr().query_row(q), b.csr().query_row(q));
        }
    }

    #[test]
    fn pool_len_is_gamma() {
        let d = NoReplaceDesign::sample(50, 6, 25, &SeedSequence::new(6));
        for q in 0..6 {
            assert_eq!(d.pool_len(q), 25);
        }
    }
}
