//! Fused single-pass decode kernels with caller-provided buffers.
//!
//! A Monte-Carlo trial of Algorithm 1 is three sparse products over the same
//! design: `y = Aᵀσ` (query execution), `Ψ = M·y` and `Δ* = M·1` (the
//! decoder's neighborhood sums). The separate kernels in [`crate::matvec`]
//! walk the design once per product; the kernels here walk it **once in
//! total** — for each query row, the gathered `y_q` is scattered into Ψ/Δ*
//! while the row is still in cache — and write into caller-provided buffers,
//! so replicate loops reuse memory instead of allocating three vectors per
//! decode.
//!
//! Output guarantee: all sums are exact `u64` additions (commutative and
//! associative), so every kernel here is **bit-identical** to the
//! `pool_sums_u64` + `scatter_distinct_u64` composition it replaces, for any
//! worker count — the property suite pins this down.
//!
//! Three entry points:
//!
//! * [`decode_sums_fused`] — materialized CSR, one traversal for `y`/Ψ/Δ*.
//! * [`decode_sums_fused_stream`] — any design; each query's pool is
//!   produced **once** and double-used from a per-worker pair scratch
//!   (streaming designs otherwise pay two full regenerations).
//! * [`scatter_distinct_into`] — the workspace version of
//!   [`crate::matvec::scatter_distinct_u64`] for when `y` is already known
//!   (the decoder's usual entry): picks the direct / blocked / atomic kernel
//!   by the [`pooled_par::blocked::choose_scatter`] density heuristic.
//!
//! All kernels run allocation-free after [`FusedArena`] warm-up when one
//! worker is installed; with more workers the per-call cost is a handful of
//! range descriptors (the privatized planes themselves are reused).

use rayon::prelude::*;

use pooled_par::blocked::{choose_scatter, BlockedScatter, ScatterKind};
use pooled_par::chunks::even_ranges;
use pooled_par::scatter::AtomicCounters;

use crate::csr::CsrDesign;
use crate::PoolingDesign;

/// Reusable scratch for the fused kernels: privatized scatter planes, an
/// atomic fallback accumulator, and per-worker pool scratch for streaming
/// designs. Create once per worker/replicate loop and reuse.
#[derive(Default)]
pub struct FusedArena {
    /// Privatized Ψ/Δ* planes (blocked kernel).
    scatter: BlockedScatter,
    /// Atomic fallback for sparse workloads, reused across calls.
    atomic_psi: Option<AtomicCounters>,
    atomic_dstar: Option<AtomicCounters>,
    /// Per-worker `(entry, multiplicity)` pool scratch (streaming kernel).
    pools: Vec<Vec<(u32, u32)>>,
}

impl FusedArena {
    /// Empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn atomic_pair(&mut self, len: usize) -> (&AtomicCounters, &AtomicCounters) {
        for slot in [&mut self.atomic_psi, &mut self.atomic_dstar] {
            match slot {
                Some(counters) if counters.len() == len => counters.reset(),
                _ => *slot = Some(AtomicCounters::new(len)),
            }
        }
        (self.atomic_psi.as_ref().unwrap(), self.atomic_dstar.as_ref().unwrap())
    }
}

impl std::fmt::Debug for FusedArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FusedArena").finish_non_exhaustive()
    }
}

/// Scatter one CSR query row into the Ψ/Δ* planes after gathering its `y_q`.
#[inline]
fn fuse_csr_row(
    design: &CsrDesign,
    x: &[u64],
    q: usize,
    psi: &mut [u64],
    dstar: &mut [u64],
) -> u64 {
    let (entries, mults) = design.query_row(q);
    let mut acc = 0u64;
    for (&e, &c) in entries.iter().zip(mults) {
        acc += x[e as usize] * c as u64;
    }
    for &e in entries {
        psi[e as usize] += acc;
        dstar[e as usize] += 1;
    }
    acc
}

/// The shared fused driver: partition queries across workers, let each
/// worker write its own `y`-slice directly while scattering into private
/// Ψ/Δ* planes (threading one element of `states` per worker), then merge
/// blockwise without atomics. Sequential — no machinery, no allocation —
/// when only one part is available; `states` must then hold at least one
/// element.
///
/// `row(state, q, psi_buf, dstar_buf)` processes one query and returns
/// `y_q`.
fn fused_drive<S, F>(
    scatter: &mut BlockedScatter,
    states: &mut [S],
    n: usize,
    y: &mut [u64],
    psi: &mut [u64],
    dstar: &mut [u64],
    row: F,
) where
    S: Send,
    F: Fn(&mut S, usize, &mut [u64], &mut [u64]) -> u64 + Sync,
{
    let m = y.len();
    let parts = states.len();
    if parts <= 1 {
        psi[..n].fill(0);
        dstar[..n].fill(0);
        let state = &mut states[0];
        for (q, y_q) in y.iter_mut().enumerate() {
            *y_q = row(state, q, psi, dstar);
        }
        return;
    }
    let ranges = even_ranges(m, parts);
    let mut y_parts: Vec<&mut [u64]> = Vec::with_capacity(parts);
    let mut rest = &mut y[..m];
    for range in &ranges {
        let (head, tail) = rest.split_at_mut(range.len());
        y_parts.push(head);
        rest = tail;
    }
    let (plane_a, plane_b) = scatter.planes(parts, n);
    plane_a
        .par_iter_mut()
        .zip(plane_b.par_iter_mut())
        .zip(states[..parts].par_iter_mut())
        .zip(y_parts.into_par_iter())
        .zip(ranges.into_par_iter())
        .for_each(|((((psi_buf, dstar_buf), state), y_slice), range)| {
            for (offset, q) in range.enumerate() {
                y_slice[offset] = row(state, q, psi_buf, dstar_buf);
            }
        });
    scatter.merge_pair_into(psi, dstar);
}

fn fused_parts(m: usize) -> usize {
    rayon::current_num_threads().max(1).min(m.max(1))
}

fn assert_fused_shapes(n: usize, m: usize, x: &[u64], y: &[u64], psi: &[u64], dstar: &[u64]) {
    assert_eq!(x.len(), n, "signal vector must have length n");
    assert_eq!(y.len(), m, "result vector must have length m");
    assert!(psi.len() >= n && dstar.len() >= n, "psi/dstar must have length n");
}

/// Fused trial kernel over a materialized design: computes `y = Aᵀx`,
/// `Ψ = M·y` and `Δ* = M·1` in a single traversal of the forward CSR.
///
/// `x` is the dense signal (`0`/`1` as `u64`, multiplicities apply);
/// `y`, `psi`, `dstar` are overwritten in full.
///
/// # Panics
/// Panics if `x.len() != n`, `y.len() != m`, or `psi`/`dstar` are shorter
/// than `n`.
pub fn decode_sums_fused(
    design: &CsrDesign,
    x: &[u64],
    y: &mut [u64],
    psi: &mut [u64],
    dstar: &mut [u64],
    arena: &mut FusedArena,
) {
    let (n, m) = (design.n(), design.m());
    assert_fused_shapes(n, m, x, y, psi, dstar);
    let parts = fused_parts(m);
    // Stateless rows: unit states (a Vec of ZSTs never allocates).
    let mut states = vec![(); parts];
    fused_drive(&mut arena.scatter, &mut states, n, y, psi, dstar, |_, q, psi_buf, dstar_buf| {
        fuse_csr_row(design, x, q, psi_buf, dstar_buf)
    });
}

/// Fused trial kernel for arbitrary (in particular streaming) designs.
///
/// Each query's distinct `(entry, multiplicity)` pool is produced **once**
/// into a per-worker scratch and then used twice — first to gather `y_q`,
/// then to scatter it — so streaming designs pay one regeneration per query
/// instead of the two that the `pool_sums_u64` + `scatter_distinct_u64`
/// composition costs.
///
/// Bit-identical output to [`decode_sums_fused`] on materialized designs.
///
/// # Panics
/// Same contract as [`decode_sums_fused`].
pub fn decode_sums_fused_stream<D: PoolingDesign + ?Sized>(
    design: &D,
    x: &[u64],
    y: &mut [u64],
    psi: &mut [u64],
    dstar: &mut [u64],
    arena: &mut FusedArena,
) {
    let (n, m) = (design.n(), design.m());
    assert_fused_shapes(n, m, x, y, psi, dstar);
    let parts = fused_parts(m);
    // Split borrows: planes live in `scatter`, per-worker pool scratch in
    // `pools` — both reused across calls.
    let FusedArena { scatter, pools, .. } = arena;
    if pools.len() < parts {
        pools.resize_with(parts, Vec::new);
    }
    fused_drive(scatter, &mut pools[..parts], n, y, psi, dstar, |pool, q, psi_buf, dstar_buf| {
        pool.clear();
        design.for_each_distinct(q, &mut |e, c| pool.push((e as u32, c)));
        let mut acc = 0u64;
        for &(e, c) in pool.iter() {
            acc += x[e as usize] * c as u64;
        }
        for &(e, _) in pool.iter() {
            psi_buf[e as usize] += acc;
            dstar_buf[e as usize] += 1;
        }
        acc
    });
}

/// Workspace version of [`crate::matvec::scatter_distinct_u64`]: accumulate
/// `psi[i] = Σ_{q ∋ i} w[q]` and `dstar[i] = |∂*x_i|` into caller buffers,
/// choosing the direct / blocked / atomic kernel by the density heuristic.
///
/// Bit-identical to the atomic and gather paths for any worker count.
///
/// # Panics
/// Panics if `w.len() != m` or `psi`/`dstar` are shorter than `n`.
pub fn scatter_distinct_into<D: PoolingDesign + ?Sized>(
    design: &D,
    w: &[u64],
    psi: &mut [u64],
    dstar: &mut [u64],
    arena: &mut FusedArena,
) {
    let (n, m) = (design.n(), design.m());
    assert_eq!(w.len(), m, "weight vector must have length m");
    assert!(psi.len() >= n && dstar.len() >= n, "psi/dstar must have length n");
    let threads = rayon::current_num_threads().max(1);
    let updates = m.saturating_mul(design.gamma());
    match choose_scatter(n, updates, threads) {
        ScatterKind::Direct => {
            psi[..n].fill(0);
            dstar[..n].fill(0);
            for (q, &wq) in w.iter().enumerate() {
                design.for_each_distinct(q, &mut |e, _| {
                    psi[e] += wq;
                    dstar[e] += 1;
                });
            }
        }
        ScatterKind::Blocked => {
            arena.scatter.scatter_pair(&mut psi[..n], &mut dstar[..n], m, |a, b, range| {
                for q in range {
                    let wq = w[q];
                    design.for_each_distinct(q, &mut |e, _| {
                        a[e] += wq;
                        b[e] += 1;
                    });
                }
            });
        }
        ScatterKind::Atomic => {
            let (psi_acc, dstar_acc) = arena.atomic_pair(n);
            (0..m).into_par_iter().for_each(|q| {
                let wq = w[q];
                design.for_each_distinct(q, &mut |e, _| {
                    psi_acc.add(e, wq);
                    dstar_acc.incr(e);
                });
            });
            psi_acc.copy_into(&mut psi[..n]);
            dstar_acc.copy_into(&mut dstar[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matvec::{pool_sums_u64, scatter_distinct_u64};
    use crate::streaming::StreamingDesign;
    use pooled_rng::SeedSequence;

    fn dense_signal(n: usize, seed: u64) -> Vec<u64> {
        // A deterministic not-quite-sparse 0/1 vector.
        (0..n).map(|i| u64::from((i as u64).wrapping_mul(seed).is_multiple_of(5))).collect()
    }

    fn reference(design: &CsrDesign, x: &[u64]) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let y = pool_sums_u64(design, x);
        let (psi, dstar) = scatter_distinct_u64(design, &y);
        (y, psi, dstar)
    }

    #[test]
    fn fused_csr_matches_two_pass_composition() {
        for (n, m, gamma, seed) in
            [(200usize, 60usize, 100usize, 21u64), (999, 301, 499, 7), (64, 1, 32, 3)]
        {
            let design = CsrDesign::sample(n, m, gamma, &SeedSequence::new(seed));
            let x = dense_signal(n, seed | 1);
            let (want_y, want_psi, want_dstar) = reference(&design, &x);
            let mut y = vec![0u64; m];
            let mut psi = vec![0u64; n];
            let mut dstar = vec![0u64; n];
            let mut arena = FusedArena::new();
            decode_sums_fused(&design, &x, &mut y, &mut psi, &mut dstar, &mut arena);
            assert_eq!(y, want_y, "n={n} m={m}");
            assert_eq!(psi, want_psi, "n={n} m={m}");
            assert_eq!(dstar, want_dstar, "n={n} m={m}");
        }
    }

    #[test]
    fn fused_stream_matches_csr_on_both_representations() {
        let seeds = SeedSequence::new(99);
        let (n, m, gamma) = (300, 80, 150);
        let stream = StreamingDesign::new(n, m, gamma, &seeds);
        let csr = stream.materialize();
        let x = dense_signal(n, 5);
        let mut arena = FusedArena::new();
        let (mut y1, mut psi1, mut dstar1) = (vec![0; m], vec![0; n], vec![0; n]);
        decode_sums_fused(&csr, &x, &mut y1, &mut psi1, &mut dstar1, &mut arena);
        let (mut y2, mut psi2, mut dstar2) = (vec![0; m], vec![0; n], vec![0; n]);
        decode_sums_fused_stream(&stream, &x, &mut y2, &mut psi2, &mut dstar2, &mut arena);
        assert_eq!(y1, y2);
        assert_eq!(psi1, psi2);
        assert_eq!(dstar1, dstar2);
        let (mut y3, mut psi3, mut dstar3) = (vec![0; m], vec![0; n], vec![0; n]);
        decode_sums_fused_stream(&csr, &x, &mut y3, &mut psi3, &mut dstar3, &mut arena);
        assert_eq!(y1, y3);
        assert_eq!(psi1, psi3);
        assert_eq!(dstar1, dstar3);
    }

    #[test]
    fn scatter_into_matches_allocating_scatter() {
        let design = CsrDesign::sample(400, 120, 200, &SeedSequence::new(13));
        let w: Vec<u64> = (0..design.m() as u64).map(|q| 3 * q + 1).collect();
        let (want_psi, want_dstar) = scatter_distinct_u64(&design, &w);
        let mut arena = FusedArena::new();
        let mut psi = vec![0u64; design.n()];
        let mut dstar = vec![0u64; design.n()];
        scatter_distinct_into(&design, &w, &mut psi, &mut dstar, &mut arena);
        assert_eq!(psi, want_psi);
        assert_eq!(dstar, want_dstar);
    }

    #[test]
    fn scatter_into_sparse_workload_takes_atomic_path() {
        // Tiny Γ relative to n drives the heuristic to the atomic kernel;
        // the result must be identical anyway.
        let design = CsrDesign::sample(50_000, 40, 8, &SeedSequence::new(17));
        let w: Vec<u64> = (0..design.m() as u64).map(|q| q + 1).collect();
        let (want_psi, want_dstar) = scatter_distinct_u64(&design, &w);
        let mut arena = FusedArena::new();
        let mut psi = vec![0u64; design.n()];
        let mut dstar = vec![0u64; design.n()];
        scatter_distinct_into(&design, &w, &mut psi, &mut dstar, &mut arena);
        assert_eq!(psi, want_psi);
        assert_eq!(dstar, want_dstar);
        // Arena reuse across a second call with the same shape.
        scatter_distinct_into(&design, &w, &mut psi, &mut dstar, &mut arena);
        assert_eq!(psi, want_psi);
    }

    #[test]
    fn arena_reuse_across_shapes_is_sound() {
        let mut arena = FusedArena::new();
        for (n, m, gamma, seed) in [(100usize, 30usize, 50usize, 1u64), (500, 10, 250, 2)] {
            let design = CsrDesign::sample(n, m, gamma, &SeedSequence::new(seed));
            let x = dense_signal(n, seed + 10);
            let (want_y, want_psi, want_dstar) = reference(&design, &x);
            let (mut y, mut psi, mut dstar) = (vec![0; m], vec![0; n], vec![0; n]);
            decode_sums_fused(&design, &x, &mut y, &mut psi, &mut dstar, &mut arena);
            assert_eq!((y, psi, dstar), (want_y, want_psi, want_dstar), "n={n}");
        }
    }

    #[test]
    fn empty_design_is_handled() {
        let design = CsrDesign::sample(10, 0, 5, &SeedSequence::new(1));
        let x = vec![0u64; 10];
        let mut arena = FusedArena::new();
        let (mut y, mut psi, mut dstar) = (vec![], vec![9u64; 10], vec![9u64; 10]);
        decode_sums_fused(&design, &x, &mut y, &mut psi, &mut dstar, &mut arena);
        assert!(psi.iter().all(|&v| v == 0));
        assert!(dstar.iter().all(|&v| v == 0));
    }

    #[test]
    #[should_panic(expected = "length n")]
    fn wrong_signal_length_panics() {
        let design = CsrDesign::sample(10, 5, 5, &SeedSequence::new(1));
        let mut arena = FusedArena::new();
        let (mut y, mut psi, mut dstar) = (vec![0; 5], vec![0; 10], vec![0; 10]);
        decode_sums_fused(&design, &[0u64; 9], &mut y, &mut psi, &mut dstar, &mut arena);
    }
}
