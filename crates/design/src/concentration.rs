//! The high-probability event `R` of Lemma 3.
//!
//! `R` asserts that for **every** entry `i`,
//! `Δ_i = mΓ/n + O(√(m ln n))` and `Δ*_i = (1 − e^{−Γ/n})·m + O(√(m ln n))`.
//! The paper conditions all of its analysis on `R`; this module measures how
//! far a sampled design actually strays, which the experiments use both as a
//! sanity check and to illustrate why the finite-`n` Remark (§V) predicts
//! the simulation/theory gap at small `n`.

use crate::degrees::DegreeStats;
use crate::PoolingDesign;

/// Measured concentration of a design relative to Lemma 3's expectations.
#[derive(Clone, Copy, Debug)]
pub struct ConcentrationReport {
    /// Expected multiplicity degree `mΓ/n`.
    pub expect_delta: f64,
    /// Expected distinct degree `m(1 − (1−1/n)^Γ)`.
    pub expect_delta_star: f64,
    /// `max_i |Δ_i − E[Δ]| / √(m ln n)` — the constant hidden in the `O(·)`.
    pub delta_constant: f64,
    /// `max_i |Δ*_i − E[Δ*]| / √(m ln n)` — same for distinct degrees.
    pub delta_star_constant: f64,
    /// The normalizer `√(m ln n)` itself.
    pub normalizer: f64,
}

impl ConcentrationReport {
    /// Whether both deviation constants stay below `c`.
    ///
    /// Lemma 3 guarantees constants `O(1)` w.h.p.; empirical designs at the
    /// paper's scales satisfy `c = 4` with large margin.
    pub fn holds_with_constant(&self, c: f64) -> bool {
        self.delta_constant <= c && self.delta_star_constant <= c
    }
}

/// Measure the event `R` on a sampled design.
pub fn check_concentration<D: PoolingDesign + ?Sized>(design: &D) -> ConcentrationReport {
    let stats = DegreeStats::compute(design);
    report_from_stats(design.n(), design.m(), design.gamma(), &stats)
}

/// Measure the event `R` from precomputed degree statistics.
pub fn report_from_stats(
    n: usize,
    m: usize,
    gamma: usize,
    stats: &DegreeStats,
) -> ConcentrationReport {
    let n_f = n as f64;
    let m_f = m as f64;
    let expect_delta = m_f * gamma as f64 / n_f;
    let p = 1.0 - (1.0 - 1.0 / n_f).powi(gamma.min(i32::MAX as usize) as i32);
    let expect_delta_star = m_f * p;
    // √(m ln n); guard the degenerate n = 1, m = 0 corners.
    let normalizer = (m_f * n_f.max(2.0).ln()).sqrt().max(f64::MIN_POSITIVE);
    ConcentrationReport {
        expect_delta,
        expect_delta_star,
        delta_constant: stats.max_delta_deviation(expect_delta) / normalizer,
        delta_star_constant: stats.max_delta_star_deviation(expect_delta_star) / normalizer,
        normalizer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrDesign;
    use pooled_rng::SeedSequence;

    #[test]
    fn sampled_designs_concentrate() {
        // At n=4000, m=600, Lemma 3's constants should be small.
        let n = 4000;
        let d = CsrDesign::sample(n, 600, n / 2, &SeedSequence::new(10));
        let report = check_concentration(&d);
        assert!(
            report.holds_with_constant(4.0),
            "Δ-constant {} Δ*-constant {}",
            report.delta_constant,
            report.delta_star_constant
        );
    }

    #[test]
    fn expectations_are_sane() {
        let n = 1000;
        let d = CsrDesign::sample(n, 100, n / 2, &SeedSequence::new(11));
        let r = check_concentration(&d);
        assert!((r.expect_delta - 50.0).abs() < 1e-9);
        let want_star = 100.0 * (1.0 - (-gamma_ratio_to_log(n, n / 2)).exp());
        // within rounding of the (1−1/n)^Γ vs e^{−Γ/n} approximation
        assert!((r.expect_delta_star - want_star).abs() < 0.5);
    }

    fn gamma_ratio_to_log(n: usize, gamma: usize) -> f64 {
        -(gamma as f64) * (1.0 - 1.0 / n as f64).ln()
    }

    #[test]
    fn pathological_design_fails_concentration() {
        // All queries contain only entry 0: Δ_0 deviates maximally.
        let pools: Vec<Vec<usize>> = (0..100).map(|_| vec![0usize; 50]).collect();
        let d = CsrDesign::from_pools(100, &pools);
        let report = check_concentration(&d);
        assert!(!report.holds_with_constant(4.0));
    }

    #[test]
    fn zero_queries_trivially_concentrates() {
        let d = CsrDesign::sample(10, 0, 5, &SeedSequence::new(1));
        let report = check_concentration(&d);
        assert_eq!(report.delta_constant, 0.0);
        assert_eq!(report.delta_star_constant, 0.0);
    }
}
