//! Design-major batched decode kernels: one traversal of the pooling
//! design serves a whole batch of jobs.
//!
//! The fused kernels in [`crate::fused`] already collapse a single job's
//! three sparse products (`y = Aᵀσ`, `Ψ = M·y`, `Δ* = M·1`) into one CSR
//! traversal. At engine scale the next cost down is *re-streaming the CSR
//! index arrays from memory once per job* even when dozens of queued jobs
//! decode against the same cached design — the common case for both the
//! serving engine (`distinct_designs: 1` traffic against a hot LRU cache)
//! and Monte-Carlo replication (thousands of trials of one shape).
//!
//! The kernels here are **structure-of-arrays over a batch of B lanes**:
//! for each query row, the row's `(entries, mults)` slices are read once —
//! while they sit in L1 — and used to gather `y_q` and scatter Ψ for *all
//! B lanes*. CSR index traffic drops from `O(B·nnz)` to `O(nnz)`; what
//! remains per lane is dense arithmetic against its own planes. Δ* does
//! not depend on the query results at all, so the batch shares **one**
//! Δ* plane instead of accumulating B identical copies.
//!
//! Plane layout is lane-major and flat: lane `b` of an `n`-sized plane is
//! `plane[b*n..(b+1)*n]`, so each lane's Ψ hands off to the single-job
//! finish path as a plain contiguous slice. All sums are exact `u64`
//! additions, so every lane is **bit-identical** to the single-job kernel
//! it replaces (pinned by the property suite).
//!
//! The kernels are deliberately sequential per call: the serving engine
//! pins each shard's inner parallelism to 1 (shard-level parallelism is
//! the engine's own), and Monte-Carlo sweeps parallelize across batches —
//! a rayon fan-out inside the kernel would buy nothing in either caller
//! and would cost the allocation-free guarantee.

use crate::csr::CsrDesign;
use crate::PoolingDesign;

/// Check the flat lane-major plane shapes shared by all batch kernels.
fn assert_batch_shapes(
    lanes: usize,
    n: usize,
    m: usize,
    per_query: usize,
    psis: usize,
    dstar: usize,
) {
    assert_eq!(per_query, lanes * m, "per-query plane must be lanes*m");
    assert_eq!(psis, lanes * n, "psi plane must be lanes*n");
    assert!(dstar >= n, "dstar must have length n");
}

/// Batched trial kernel over a materialized design: for `lanes` dense 0/1
/// signals stacked lane-major in `xs` (`lanes × n` bytes), compute every
/// lane's `y = Aᵀx` (`ys`, lane-major `lanes × m`), Ψ plane (`psis`,
/// lane-major `lanes × n`) and the **shared** Δ* (`dstar`, length `n` —
/// identical for every lane because `Δ* = M·1` ignores the signal), in a
/// single traversal of the forward CSR.
///
/// Lane `b` of the output is bit-identical to
/// [`crate::fused::decode_sums_fused`] on `xs[b*n..(b+1)*n]` alone.
///
/// # Panics
/// Panics if `xs.len() != lanes*n`, `ys.len() != lanes*m`,
/// `psis.len() != lanes*n`, or `dstar.len() < n`.
pub fn decode_sums_fused_batch(
    design: &CsrDesign,
    xs: &[u8],
    lanes: usize,
    ys: &mut [u64],
    psis: &mut [u64],
    dstar: &mut [u64],
) {
    let (n, m) = (design.n(), design.m());
    assert_eq!(xs.len(), lanes * n, "signal plane must be lanes*n");
    assert_batch_shapes(lanes, n, m, ys.len(), psis.len(), dstar.len());
    psis.fill(0);
    dstar[..n].fill(0);
    for q in 0..m {
        let (entries, mults) = design.query_row(q);
        for b in 0..lanes {
            let x = &xs[b * n..(b + 1) * n];
            let mut acc = 0u64;
            for (&e, &c) in entries.iter().zip(mults) {
                acc += x[e as usize] as u64 * c as u64;
            }
            ys[b * m + q] = acc;
            let psi = &mut psis[b * n..(b + 1) * n];
            for &e in entries {
                psi[e as usize] += acc;
            }
        }
        for &e in entries {
            dstar[e as usize] += 1;
        }
    }
}

/// Batched trial kernel for arbitrary (in particular streaming) designs:
/// each query's distinct `(entry, multiplicity)` pool is produced **once**
/// into `pool_scratch` and then serves every lane — a streaming design
/// regenerates its pools once per *batch* instead of once per *job*.
///
/// Bit-identical per lane to [`decode_sums_fused_batch`] on materialized
/// designs; same contract and panics (plus `pool_scratch` is clobbered).
pub fn decode_sums_fused_batch_stream<D: PoolingDesign + ?Sized>(
    design: &D,
    xs: &[u8],
    lanes: usize,
    ys: &mut [u64],
    psis: &mut [u64],
    dstar: &mut [u64],
    pool_scratch: &mut Vec<(u32, u32)>,
) {
    let (n, m) = (design.n(), design.m());
    assert_eq!(xs.len(), lanes * n, "signal plane must be lanes*n");
    assert_batch_shapes(lanes, n, m, ys.len(), psis.len(), dstar.len());
    psis.fill(0);
    dstar[..n].fill(0);
    for q in 0..m {
        pool_scratch.clear();
        design.for_each_distinct(q, &mut |e, c| pool_scratch.push((e as u32, c)));
        for b in 0..lanes {
            let x = &xs[b * n..(b + 1) * n];
            let mut acc = 0u64;
            for &(e, c) in pool_scratch.iter() {
                acc += x[e as usize] as u64 * c as u64;
            }
            ys[b * m + q] = acc;
            let psi = &mut psis[b * n..(b + 1) * n];
            for &(e, _) in pool_scratch.iter() {
                psi[e as usize] += acc;
            }
        }
        for &(e, _) in pool_scratch.iter() {
            dstar[e as usize] += 1;
        }
    }
}

/// Batched Ψ/Δ* accumulation when every lane's query results are already
/// known (the decoder's usual entry): `ys` is lane-major `lanes × m`, and
/// one forward-CSR traversal scatters all lanes' Ψ planes plus the shared
/// Δ*. The batch analogue of [`crate::fused::scatter_distinct_into`].
///
/// Lane `b` is bit-identical to
/// [`crate::csr::CsrDesign::gather_distinct_into`] on `ys[b*m..(b+1)*m]`
/// (exact `u64` sums; accumulation order is invisible).
///
/// # Panics
/// Panics if `ys.len() != lanes*m`, `psis.len() != lanes*n`, or
/// `dstar.len() < n`.
pub fn scatter_distinct_batch(
    design: &CsrDesign,
    ys: &[u64],
    lanes: usize,
    psis: &mut [u64],
    dstar: &mut [u64],
) {
    let (n, m) = (design.n(), design.m());
    assert_batch_shapes(lanes, n, m, ys.len(), psis.len(), dstar.len());
    psis.fill(0);
    dstar[..n].fill(0);
    for q in 0..m {
        let (entries, _) = design.query_row(q);
        for b in 0..lanes {
            let wq = ys[b * m + q];
            let psi = &mut psis[b * n..(b + 1) * n];
            for &e in entries {
                psi[e as usize] += wq;
            }
        }
        for &e in entries {
            dstar[e as usize] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::{decode_sums_fused, FusedArena};
    use crate::streaming::StreamingDesign;
    use pooled_rng::SeedSequence;

    fn dense_lane(n: usize, seed: u64) -> Vec<u8> {
        (0..n).map(|i| u8::from((i as u64).wrapping_mul(seed | 1).is_multiple_of(4))).collect()
    }

    fn stack_lanes(n: usize, lanes: usize, seed: u64) -> Vec<u8> {
        (0..lanes).flat_map(|b| dense_lane(n, seed + b as u64)).collect()
    }

    /// Reference: the single-job fused kernel, lane by lane.
    fn per_lane_reference(
        design: &CsrDesign,
        xs: &[u8],
        lanes: usize,
    ) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let (n, m) = (design.n(), design.m());
        let mut arena = FusedArena::new();
        let (mut ys, mut psis, mut dstar) = (vec![0; lanes * m], vec![0; lanes * n], vec![0; n]);
        for b in 0..lanes {
            let x: Vec<u64> = xs[b * n..(b + 1) * n].iter().map(|&v| v as u64).collect();
            let mut lane_dstar = vec![0u64; n];
            decode_sums_fused(
                design,
                &x,
                &mut ys[b * m..(b + 1) * m],
                &mut psis[b * n..(b + 1) * n],
                &mut lane_dstar,
                &mut arena,
            );
            dstar.copy_from_slice(&lane_dstar);
        }
        (ys, psis, dstar)
    }

    #[test]
    fn batch_matches_per_lane_fused() {
        for (n, m, gamma, lanes, seed) in
            [(200usize, 60usize, 100usize, 4usize, 3u64), (500, 120, 250, 9, 11), (64, 7, 32, 1, 5)]
        {
            let design = CsrDesign::sample(n, m, gamma, &SeedSequence::new(seed));
            let xs = stack_lanes(n, lanes, seed);
            let (want_ys, want_psis, want_dstar) = per_lane_reference(&design, &xs, lanes);
            let (mut ys, mut psis, mut dstar) =
                (vec![0; lanes * m], vec![0; lanes * n], vec![0; n]);
            decode_sums_fused_batch(&design, &xs, lanes, &mut ys, &mut psis, &mut dstar);
            assert_eq!(ys, want_ys, "n={n} lanes={lanes}");
            assert_eq!(psis, want_psis, "n={n} lanes={lanes}");
            assert_eq!(dstar, want_dstar, "n={n} lanes={lanes}");
        }
    }

    #[test]
    fn stream_batch_matches_csr_batch() {
        let seeds = SeedSequence::new(23);
        let (n, m, gamma, lanes) = (300, 70, 150, 5);
        let stream = StreamingDesign::new(n, m, gamma, &seeds);
        let csr = stream.materialize();
        let xs = stack_lanes(n, lanes, 9);
        let (mut ys_a, mut psis_a, mut dstar_a) =
            (vec![0; lanes * m], vec![0; lanes * n], vec![0; n]);
        decode_sums_fused_batch(&csr, &xs, lanes, &mut ys_a, &mut psis_a, &mut dstar_a);
        let mut pool = Vec::new();
        let (mut ys_b, mut psis_b, mut dstar_b) =
            (vec![0; lanes * m], vec![0; lanes * n], vec![0; n]);
        decode_sums_fused_batch_stream(
            &stream,
            &xs,
            lanes,
            &mut ys_b,
            &mut psis_b,
            &mut dstar_b,
            &mut pool,
        );
        assert_eq!(ys_a, ys_b);
        assert_eq!(psis_a, psis_b);
        assert_eq!(dstar_a, dstar_b);
    }

    #[test]
    fn scatter_batch_matches_gather_per_lane() {
        let design = CsrDesign::sample(250, 80, 125, &SeedSequence::new(41));
        let (n, m, lanes) = (design.n(), design.m(), 6usize);
        let ys: Vec<u64> =
            (0..lanes * m).map(|i| (i as u64).wrapping_mul(2654435761) % 97).collect();
        let (mut psis, mut dstar) = (vec![0u64; lanes * n], vec![0u64; n]);
        scatter_distinct_batch(&design, &ys, lanes, &mut psis, &mut dstar);
        for b in 0..lanes {
            let mut want_psi = vec![0u64; n];
            let mut want_dstar = vec![0u64; n];
            design.gather_distinct_into(&ys[b * m..(b + 1) * m], &mut want_psi, &mut want_dstar);
            assert_eq!(&psis[b * n..(b + 1) * n], &want_psi[..], "lane {b}");
            assert_eq!(dstar, want_dstar, "lane {b}");
        }
    }

    #[test]
    fn zero_lanes_zero_queries_are_fine() {
        let design = CsrDesign::sample(10, 5, 5, &SeedSequence::new(1));
        let (mut ys, mut psis, mut dstar) = (vec![], vec![], vec![7u64; 10]);
        decode_sums_fused_batch(&design, &[], 0, &mut ys, &mut psis, &mut dstar);
        // Δ* is signal-independent, so even an empty batch leaves the
        // design's distinct degrees (never the stale sevens).
        let mut want = vec![0u64; 10];
        for q in 0..design.m() {
            design.for_each_distinct(q, &mut |e, _| want[e] += 1);
        }
        assert_eq!(dstar, want);
        let empty = CsrDesign::sample(10, 0, 5, &SeedSequence::new(1));
        let xs = stack_lanes(10, 3, 2);
        let (mut ys, mut psis, mut dstar) = (vec![], vec![0; 30], vec![0u64; 10]);
        decode_sums_fused_batch(&empty, &xs, 3, &mut ys, &mut psis, &mut dstar);
        assert!(psis.iter().all(|&v| v == 0));
    }

    #[test]
    #[should_panic(expected = "lanes*n")]
    fn wrong_signal_plane_panics() {
        let design = CsrDesign::sample(10, 5, 5, &SeedSequence::new(1));
        let (mut ys, mut psis, mut dstar) = (vec![0; 10], vec![0; 20], vec![0; 10]);
        decode_sums_fused_batch(&design, &[0u8; 19], 2, &mut ys, &mut psis, &mut dstar);
    }
}
