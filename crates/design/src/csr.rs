//! Materialized CSR storage of a pooling design.
//!
//! Per query we store the *distinct* member entries together with their draw
//! multiplicities (run-length encoding of the `Γ` draws), plus the transposed
//! entry→queries adjacency used by the decoder's gather path. Construction is
//! parallel over queries; the transpose is built with a count → scan →
//! scatter pass using atomic write cursors.

use rayon::prelude::*;

use pooled_par::scan::exclusive_scan_u64;
use pooled_par::scatter::AtomicCounters;
use pooled_rng::bounded::FixedBound;
use pooled_rng::SeedSequence;

use crate::PoolingDesign;

/// Compressed sparse rows for both orientations of the bipartite multigraph.
#[derive(Clone, Debug)]
pub struct CsrDesign {
    n: usize,
    m: usize,
    gamma: usize,
    /// Row offsets into `entries`/`mults`, length `m + 1`.
    q_offsets: Vec<u64>,
    /// Distinct entries of each query, ascending within a row.
    entries: Vec<u32>,
    /// Draw multiplicities matching `entries` (`A_iq ≥ 1`).
    mults: Vec<u32>,
    /// Transpose row offsets, length `n + 1`.
    e_offsets: Vec<u64>,
    /// Distinct queries of each entry (ascending within a row).
    queries: Vec<u32>,
    /// Multiplicities matching `queries`.
    t_mults: Vec<u32>,
}

impl CsrDesign {
    /// Sample the paper's design: `m` queries of `Γ = gamma` uniform draws
    /// with replacement from `{0, …, n−1}`, materialized.
    ///
    /// Query `q` draws from the substream `seeds.child("query", q)`, which is
    /// the exact contract [`crate::streaming::StreamingDesign`] follows — the
    /// two representations are bit-identical.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn sample(n: usize, m: usize, gamma: usize, seeds: &SeedSequence) -> Self {
        assert!(n > 0, "design needs at least one entry");
        // Pass 1 (parallel): per-query sorted RLE pools.
        let pools: Vec<Vec<(u32, u32)>> =
            (0..m).into_par_iter().map(|q| sample_query_rle(n, gamma, seeds, q)).collect();
        Self::from_rle_pools(n, gamma, pools)
    }

    /// Build a design from explicit pools given as entry lists **with
    /// repetitions** (multi-edges), e.g. the worked example of Fig. 1.
    ///
    /// # Panics
    /// Panics if `n == 0`, or any entry index is out of range.
    pub fn from_pools(n: usize, pools: &[Vec<usize>]) -> Self {
        assert!(n > 0, "design needs at least one entry");
        let gamma = pools.first().map_or(0, |p| p.len());
        let rle: Vec<Vec<(u32, u32)>> = pools
            .iter()
            .map(|pool| {
                let mut draws: Vec<u32> = pool
                    .iter()
                    .map(|&e| {
                        assert!(e < n, "entry {e} out of range for n={n}");
                        e as u32
                    })
                    .collect();
                draws.sort_unstable();
                run_length_encode(&draws)
            })
            .collect();
        Self::from_rle_pools(n, gamma, rle)
    }

    /// Rebuild a design from its serialized forward rows: per query the
    /// sorted `(entry, multiplicity)` run-length pairs, exactly what
    /// [`Self::query_row`] exposes. The transpose is *not* an input — it
    /// is reassembled by the same deterministic count → scan → scatter
    /// pass construction uses, so a design round-tripped through its
    /// forward rows is bit-identical to the original (the durable tier's
    /// snapshot-reload path relies on this).
    ///
    /// # Panics
    /// Panics if `n == 0`, a row is not strictly ascending, an entry is
    /// out of range, or a multiplicity is zero. Callers deserializing
    /// untrusted bytes must validate first (the engine's snapshot loader
    /// does) — this constructor pins structural invariants, it does not
    /// report decode errors.
    pub fn from_sorted_rle_rows(n: usize, gamma: usize, rows: Vec<Vec<(u32, u32)>>) -> Self {
        assert!(n > 0, "design needs at least one entry");
        for (q, row) in rows.iter().enumerate() {
            for w in row.windows(2) {
                assert!(w[0].0 < w[1].0, "row {q} not strictly ascending");
            }
            for &(e, c) in row {
                assert!((e as usize) < n, "row {q}: entry {e} out of range for n={n}");
                assert!(c >= 1, "row {q}: zero multiplicity at entry {e}");
            }
        }
        Self::from_rle_pools(n, gamma, rows)
    }

    fn from_rle_pools(n: usize, gamma: usize, pools: Vec<Vec<(u32, u32)>>) -> Self {
        let m = pools.len();
        // Assemble forward CSR.
        let mut q_offsets: Vec<u64> = Vec::with_capacity(m + 1);
        q_offsets.extend(pools.iter().map(|p| p.len() as u64));
        q_offsets.push(0);
        let nnz = exclusive_scan_u64(&mut q_offsets) as usize;
        // exclusive_scan leaves offsets[m] = 0-based start of a phantom row;
        // fix the final fencepost.
        q_offsets[m] = nnz as u64;
        let mut entries = vec![0u32; nnz];
        let mut mults = vec![0u32; nnz];
        for (q, pool) in pools.iter().enumerate() {
            let start = q_offsets[q] as usize;
            for (j, &(e, c)) in pool.iter().enumerate() {
                entries[start + j] = e;
                mults[start + j] = c;
            }
        }
        // Transpose: count, scan, scatter.
        let degree = AtomicCounters::new(n);
        entries.par_iter().for_each(|&e| degree.incr(e as usize));
        let mut e_offsets = degree.into_vec();
        e_offsets.push(0);
        let t_nnz = exclusive_scan_u64(&mut e_offsets) as usize;
        e_offsets[n] = t_nnz as u64;
        debug_assert_eq!(t_nnz, nnz);
        let mut queries = vec![0u32; nnz];
        let mut t_mults = vec![0u32; nnz];
        // Sequential scatter keeps rows ascending by query (stable order).
        let mut cursors: Vec<u64> = e_offsets[..n].to_vec();
        for q in 0..m {
            let (s, e) = (q_offsets[q] as usize, q_offsets[q + 1] as usize);
            for j in s..e {
                let ent = entries[j] as usize;
                let at = cursors[ent] as usize;
                queries[at] = q as u32;
                t_mults[at] = mults[j];
                cursors[ent] += 1;
            }
        }
        Self { n, m, gamma, q_offsets, entries, mults, e_offsets, queries, t_mults }
    }

    /// Distinct entries of query `q` (ascending) with multiplicities.
    #[inline]
    pub fn query_row(&self, q: usize) -> (&[u32], &[u32]) {
        let (s, e) = (self.q_offsets[q] as usize, self.q_offsets[q + 1] as usize);
        (&self.entries[s..e], &self.mults[s..e])
    }

    /// Distinct queries containing entry `i` (ascending) with multiplicities.
    #[inline]
    pub fn entry_row(&self, i: usize) -> (&[u32], &[u32]) {
        let (s, e) = (self.e_offsets[i] as usize, self.e_offsets[i + 1] as usize);
        (&self.queries[s..e], &self.t_mults[s..e])
    }

    /// Total number of stored (entry, query) incidences (distinct pairs).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Gather-based Ψ/Δ* accumulation using the transpose (no atomics):
    /// `psi[i] = Σ_{q ∋ i} w[q]`, `dstar[i] = |∂*x_i|`, written into
    /// caller-provided buffers — allocation-free (entry-parallel). The
    /// allocating variant this replaced is gone on purpose: no decode
    /// path allocates per call.
    ///
    /// # Panics
    /// Panics if `w.len() != m` or the outputs are shorter than `n`.
    pub fn gather_distinct_into(&self, w: &[u64], psi: &mut [u64], dstar: &mut [u64]) {
        assert_eq!(w.len(), self.m, "weight vector length must equal m");
        assert!(psi.len() >= self.n && dstar.len() >= self.n, "psi/dstar must have length n");
        psi[..self.n].par_iter_mut().zip(dstar[..self.n].par_iter_mut()).enumerate().for_each(
            |(i, (p, d))| {
                let (qs, _) = self.entry_row(i);
                let mut acc = 0u64;
                for &q in qs {
                    acc += w[q as usize];
                }
                *p = acc;
                *d = qs.len() as u64;
            },
        );
    }
}

/// Draw one query's pool and return it as sorted `(entry, multiplicity)`.
pub(crate) fn sample_query_rle(
    n: usize,
    gamma: usize,
    seeds: &SeedSequence,
    q: usize,
) -> Vec<(u32, u32)> {
    let mut rng = seeds.child("query", q as u64).rng();
    let fb = FixedBound::new(n as u64);
    let mut draws: Vec<u32> = Vec::with_capacity(gamma);
    for _ in 0..gamma {
        draws.push(fb.sample(&mut rng) as u32);
    }
    draws.sort_unstable();
    run_length_encode(&draws)
}

fn run_length_encode(sorted: &[u32]) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(sorted.len());
    for &x in sorted {
        match out.last_mut() {
            Some((v, c)) if *v == x => *c += 1,
            _ => out.push((x, 1)),
        }
    }
    out
}

impl PoolingDesign for CsrDesign {
    fn n(&self) -> usize {
        self.n
    }

    fn m(&self) -> usize {
        self.m
    }

    fn gamma(&self) -> usize {
        self.gamma
    }

    fn for_each_draw(&self, q: usize, f: &mut dyn FnMut(usize)) {
        let (es, cs) = self.query_row(q);
        for (&e, &c) in es.iter().zip(cs) {
            for _ in 0..c {
                f(e as usize);
            }
        }
    }

    fn for_each_distinct(&self, q: usize, f: &mut dyn FnMut(usize, u32)) {
        let (es, cs) = self.query_row(q);
        for (&e, &c) in es.iter().zip(cs) {
            f(e as usize, c);
        }
    }

    fn distinct_len(&self, q: usize) -> usize {
        (self.q_offsets[q + 1] - self.q_offsets[q]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_design() -> CsrDesign {
        CsrDesign::sample(50, 20, 25, &SeedSequence::new(42))
    }

    #[test]
    fn multiplicities_sum_to_gamma() {
        let d = small_design();
        for q in 0..d.m() {
            let (_, cs) = d.query_row(q);
            let total: u32 = cs.iter().sum();
            assert_eq!(total as usize, d.gamma(), "query {q}");
        }
    }

    #[test]
    fn rows_are_strictly_ascending() {
        let d = small_design();
        for q in 0..d.m() {
            let (es, _) = d.query_row(q);
            assert!(es.windows(2).all(|w| w[0] < w[1]), "query {q}: {es:?}");
        }
        for i in 0..d.n() {
            let (qs, _) = d.entry_row(i);
            assert!(qs.windows(2).all(|w| w[0] < w[1]), "entry {i}: {qs:?}");
        }
    }

    #[test]
    fn transpose_is_consistent() {
        let d = small_design();
        for q in 0..d.m() {
            let (es, cs) = d.query_row(q);
            for (&e, &c) in es.iter().zip(cs) {
                let (qs, tcs) = d.entry_row(e as usize);
                let pos = qs.binary_search(&(q as u32)).expect("missing transpose edge");
                assert_eq!(tcs[pos], c, "multiplicity mismatch at ({e},{q})");
            }
        }
        let forward_nnz: usize = (0..d.m()).map(|q| d.query_row(q).0.len()).sum();
        let backward_nnz: usize = (0..d.n()).map(|i| d.entry_row(i).0.len()).sum();
        assert_eq!(forward_nnz, backward_nnz);
        assert_eq!(forward_nnz, d.nnz());
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let a = CsrDesign::sample(100, 30, 50, &SeedSequence::new(7));
        let b = CsrDesign::sample(100, 30, 50, &SeedSequence::new(7));
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.mults, b.mults);
        let c = CsrDesign::sample(100, 30, 50, &SeedSequence::new(8));
        assert_ne!(a.entries, c.entries);
    }

    #[test]
    fn from_pools_fig1_example() {
        // Fig. 1 of the paper: n=7, queries with multi-edges; the dashed
        // double edge means an entry drawn twice in the same query.
        let pools = vec![
            vec![0, 1, 2],
            vec![0, 1, 3],
            vec![0, 4, 4, 5], // entry 4 twice (multi-edge)
            vec![2, 4, 6],
            vec![4, 5, 6],
        ];
        let d = CsrDesign::from_pools(7, &pools);
        assert_eq!(d.m(), 5);
        let (es, cs) = d.query_row(2);
        assert_eq!(es, &[0, 4, 5]);
        assert_eq!(cs, &[1, 2, 1]);
        assert_eq!(d.distinct_len(2), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_pools_rejects_bad_entry() {
        let _ = CsrDesign::from_pools(3, &[vec![0, 3]]);
    }

    #[test]
    fn for_each_draw_respects_multiplicity() {
        let d = CsrDesign::from_pools(5, &[vec![1, 1, 1, 4]]);
        let mut draws = Vec::new();
        d.for_each_draw(0, &mut |e| draws.push(e));
        assert_eq!(draws, vec![1, 1, 1, 4]);
    }

    #[test]
    fn gather_matches_manual_sum() {
        let d = small_design();
        let w: Vec<u64> = (0..d.m() as u64).map(|q| q * q + 1).collect();
        let mut psi = vec![0u64; d.n()];
        let mut dstar = vec![0u64; d.n()];
        d.gather_distinct_into(&w, &mut psi, &mut dstar);
        for i in 0..d.n() {
            let (qs, _) = d.entry_row(i);
            let want: u64 = qs.iter().map(|&q| w[q as usize]).sum();
            assert_eq!(psi[i], want, "entry {i}");
            assert_eq!(dstar[i], qs.len() as u64);
        }
    }

    #[test]
    fn forward_rows_round_trip_rebuilds_identical_transpose() {
        // The snapshot-reload contract: a design rebuilt from its forward
        // rows matches the original in both orientations, bit for bit.
        let d = small_design();
        let rows: Vec<Vec<(u32, u32)>> = (0..d.m())
            .map(|q| {
                let (es, cs) = d.query_row(q);
                es.iter().copied().zip(cs.iter().copied()).collect()
            })
            .collect();
        let rebuilt = CsrDesign::from_sorted_rle_rows(d.n(), d.gamma(), rows);
        assert_eq!(rebuilt.n(), d.n());
        assert_eq!(rebuilt.m(), d.m());
        assert_eq!(rebuilt.gamma(), d.gamma());
        assert_eq!(rebuilt.nnz(), d.nnz());
        for q in 0..d.m() {
            assert_eq!(rebuilt.query_row(q), d.query_row(q), "query {q}");
        }
        for i in 0..d.n() {
            assert_eq!(rebuilt.entry_row(i), d.entry_row(i), "entry {i}");
        }
    }

    #[test]
    #[should_panic(expected = "not strictly ascending")]
    fn from_sorted_rle_rows_rejects_unsorted_rows() {
        let _ = CsrDesign::from_sorted_rle_rows(5, 2, vec![vec![(3, 1), (1, 1)]]);
    }

    #[test]
    fn empty_design_m_zero() {
        let d = CsrDesign::sample(10, 0, 5, &SeedSequence::new(1));
        assert_eq!(d.m(), 0);
        assert_eq!(d.nnz(), 0);
        let mut psi = vec![3u64; 10];
        let mut dstar = vec![3u64; 10];
        d.gather_distinct_into(&[], &mut psi, &mut dstar);
        assert!(psi.iter().all(|&x| x == 0));
        assert!(dstar.iter().all(|&x| x == 0));
    }

    #[test]
    fn gamma_zero_yields_empty_pools() {
        let d = CsrDesign::sample(10, 4, 0, &SeedSequence::new(1));
        for q in 0..4 {
            assert_eq!(d.distinct_len(q), 0);
        }
    }

    #[test]
    fn distinct_fraction_matches_expectation() {
        // E[#distinct]/n = 1 − (1−1/n)^Γ ≈ 1 − e^{−1/2} for Γ = n/2.
        let n = 2000;
        let d = CsrDesign::sample(n, 200, n / 2, &SeedSequence::new(99));
        let mean_distinct: f64 =
            (0..d.m()).map(|q| d.distinct_len(q) as f64).sum::<f64>() / d.m() as f64;
        let expect = n as f64 * (1.0 - (-0.5f64).exp());
        let rel = (mean_distinct - expect).abs() / expect;
        assert!(rel < 0.02, "mean distinct {mean_distinct} vs expected {expect}");
    }
}
