//! Bernoulli pooling design.
//!
//! The classic alternative to the paper's fixed-size design: every entry
//! joins every query independently with probability `p` (no multi-edges).
//! Pool sizes are `Bin(n, p)` rather than exactly `Γ`, which adds variance
//! to the query results — the design-ablation experiment quantifies how much
//! that costs the MN decoder relative to the random regular design at equal
//! expected pool size `p = Γ/n`.
//!
//! Sampling uses geometric gap skipping, so construction is `O(p·n)` per
//! query instead of `O(n)` coin flips.

use rayon::prelude::*;

use pooled_rng::{Rng64, SeedSequence};

use crate::csr::CsrDesign;
use crate::PoolingDesign;

/// A Bernoulli(`p`) design materialized in CSR form.
#[derive(Clone, Debug)]
pub struct BernoulliDesign {
    csr: CsrDesign,
    p: f64,
}

impl BernoulliDesign {
    /// Sample `m` queries over `n` entries, each entry joining each query
    /// independently with probability `p`.
    ///
    /// Query `q` draws from the substream `seeds.child("query", q)`, the
    /// same per-query substream contract as the regular designs.
    ///
    /// # Panics
    /// Panics if `n == 0` or `p ∉ [0, 1]`.
    pub fn sample(n: usize, m: usize, p: f64, seeds: &SeedSequence) -> Self {
        assert!(n > 0, "design needs at least one entry");
        assert!((0.0..=1.0).contains(&p), "membership probability p={p} outside [0,1]");
        let pools: Vec<Vec<usize>> = (0..m)
            .into_par_iter()
            .map(|q| {
                let mut rng = seeds.child("query", q as u64).rng();
                sample_bernoulli_subset(n, p, &mut rng)
            })
            .collect();
        Self { csr: CsrDesign::from_pools(n, &pools), p }
    }

    /// Wrap already-materialized CSR storage with its membership
    /// probability (the durable tier's snapshot-reload path). `p` is the
    /// only state beyond the CSR; reload recovers it from the design
    /// key's density, which is exactly what sampling was given.
    ///
    /// # Panics
    /// Panics if `p ∉ [0, 1]`.
    pub fn from_csr(csr: CsrDesign, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "membership probability p={p} outside [0,1]");
        Self { csr, p }
    }

    /// Membership probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Borrow the underlying CSR storage (for the gather decode path).
    pub fn csr(&self) -> &CsrDesign {
        &self.csr
    }
}

/// Indices of a Bernoulli(`p`) subset of `{0,…,n−1}`, ascending, via
/// geometric gap skipping.
pub fn sample_bernoulli_subset<R: Rng64 + ?Sized>(n: usize, p: f64, rng: &mut R) -> Vec<usize> {
    if p <= 0.0 {
        return Vec::new();
    }
    if p >= 1.0 {
        return (0..n).collect();
    }
    let mut out = Vec::with_capacity((n as f64 * p * 1.3) as usize + 4);
    let ln_q = (1.0 - p).ln(); // < 0
    let mut i = 0usize;
    loop {
        // Geometric(p) gap: number of failures before the next success.
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        let gap = (u.ln() / ln_q).floor();
        if !gap.is_finite() || gap >= (n - i) as f64 {
            break;
        }
        i += gap as usize;
        out.push(i);
        i += 1;
        if i >= n {
            break;
        }
    }
    out
}

impl PoolingDesign for BernoulliDesign {
    fn n(&self) -> usize {
        self.csr.n()
    }

    fn m(&self) -> usize {
        self.csr.m()
    }

    /// Expected pool size `⌊p·n⌉` (pools are Binomial, not fixed).
    fn gamma(&self) -> usize {
        (self.p * self.csr.n() as f64).round() as usize
    }

    fn for_each_draw(&self, q: usize, f: &mut dyn FnMut(usize)) {
        self.csr.for_each_draw(q, f);
    }

    fn for_each_distinct(&self, q: usize, f: &mut dyn FnMut(usize, u32)) {
        self.csr.for_each_distinct(q, f);
    }

    fn distinct_len(&self, q: usize) -> usize {
        self.csr.distinct_len(q)
    }

    fn pool_len(&self, q: usize) -> usize {
        // No multi-edges: draws == distinct entries.
        self.csr.distinct_len(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_rng::SplitMix64;

    #[test]
    fn subset_respects_probability_extremes() {
        let mut rng = SplitMix64::new(1);
        assert!(sample_bernoulli_subset(100, 0.0, &mut rng).is_empty());
        assert_eq!(sample_bernoulli_subset(5, 1.0, &mut rng), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn subset_is_sorted_distinct_in_range() {
        let mut rng = SplitMix64::new(2);
        for _ in 0..50 {
            let s = sample_bernoulli_subset(1000, 0.3, &mut rng);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 1000));
        }
    }

    #[test]
    fn subset_size_concentrates_around_pn() {
        let mut rng = SplitMix64::new(3);
        let trials = 2000;
        let total: usize =
            (0..trials).map(|_| sample_bernoulli_subset(500, 0.4, &mut rng).len()).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 200.0).abs() < 5.0, "mean pool size {mean}");
    }

    #[test]
    fn membership_is_uniform_across_entries() {
        let mut rng = SplitMix64::new(4);
        let (n, p, trials) = (60usize, 0.25, 8000usize);
        let mut hits = vec![0u32; n];
        for _ in 0..trials {
            for i in sample_bernoulli_subset(n, p, &mut rng) {
                hits[i] += 1;
            }
        }
        let want = trials as f64 * p;
        for (i, &h) in hits.iter().enumerate() {
            assert!((h as f64 - want).abs() / want < 0.12, "entry {i}: {h} vs {want}");
        }
    }

    #[test]
    fn design_dimensions_and_pool_len() {
        let seeds = SeedSequence::new(7);
        let d = BernoulliDesign::sample(200, 40, 0.5, &seeds);
        assert_eq!(d.n(), 200);
        assert_eq!(d.m(), 40);
        assert_eq!(d.gamma(), 100);
        for q in 0..d.m() {
            assert_eq!(d.pool_len(q), d.distinct_len(q), "no multi-edges");
        }
    }

    #[test]
    fn no_multiplicities_above_one() {
        let seeds = SeedSequence::new(8);
        let d = BernoulliDesign::sample(100, 30, 0.4, &seeds);
        for q in 0..d.m() {
            d.for_each_distinct(q, &mut |_, c| assert_eq!(c, 1));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = BernoulliDesign::sample(100, 10, 0.3, &SeedSequence::new(9));
        let b = BernoulliDesign::sample(100, 10, 0.3, &SeedSequence::new(9));
        for q in 0..10 {
            assert_eq!(a.csr().query_row(q), b.csr().query_row(q));
        }
    }
}
