#![warn(missing_docs)]

//! Benchmark crate: all targets live under `benches/`.
//!
//! | Bench | Regenerates |
//! |---|---|
//! | `fig2_points` | Fig. 2 workload: per-trial transition search cells |
//! | `fig3_fig4_points` | Figs. 3–4 workload: one MN trial per (n, θ, m) |
//! | `decode_ablation` | scatter vs gather vs top-k vs full-sort decode |
//! | `decode_fused` | fused single-pass kernel + workspace vs two-pass decode |
//! | `scatter_blocked_vs_atomic` | privatized blocked scatter vs atomic adds |
//! | `design_sampling` | CSR materialization vs streaming regeneration |
//! | `sort_topk` | parallel sorts vs top-k selection on score vectors |
//! | `baselines` | MN vs OMP vs AMP vs peeling wall-clock |
//! | `thread_scaling` | decode throughput at 1/2/4/8 rayon workers |
