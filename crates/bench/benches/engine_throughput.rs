//! Serving throughput of the reconstruction engine: jobs/sec as a
//! function of worker count, cold vs warm design cache.
//!
//! Pure-CPU jobs (no simulated query latency) so the numbers isolate the
//! engine's own overheads: queue traffic, cache lookups, scratch reuse
//! and shard scheduling. On a single-core host the worker sweep shows the
//! coordination cost of extra shards instead of speedup — the latency
//! overlap that motivates multiple shards is measured end-to-end by
//! `engine_load`, which simulates the paper's dominant query cost.
//!
//! * `warm/` — every job shares one cached design: the steady-state
//!   serving hot path (allocation-free after warm-up).
//! * `cold/` — every job references a distinct design key with a tiny
//!   cache, so each job pays a full design regeneration: the cache-miss
//!   worst case the LRU protects against.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pooled_engine::engine::{Engine, EngineConfig};
use pooled_engine::job::DecoderKind;
use pooled_engine::traffic::LoadProfile;

const JOBS_PER_BATCH: usize = 32;

fn profile(distinct_designs: u64) -> LoadProfile {
    LoadProfile {
        distinct_designs,
        decoders: vec![DecoderKind::Mn],
        query_cost: None,
        ..LoadProfile::default_mix(1000, 8, 330, 1905)
    }
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(12);

    for workers in [1usize, 2, 4] {
        // Warm cache: one design key, pre-warmed before measurement.
        let warm = profile(1);
        let specs = warm.specs(JOBS_PER_BATCH);
        let engine = Engine::start(EngineConfig {
            workers,
            queue_capacity: 64,
            results_capacity: 64,
            design_cache_capacity: 8,
            batch_window: 1,
        });
        let mut out = Vec::with_capacity(JOBS_PER_BATCH);
        engine.run_batch(&specs, &mut out); // warm the cache and scratch
        group.bench_function(format!("warm/{JOBS_PER_BATCH}jobs_w{workers}"), |b| {
            b.iter(|| {
                out.clear();
                engine.run_batch(&specs, &mut out);
                black_box(out.len())
            });
        });
        engine.shutdown();

        // Cold cache: 64 distinct keys cycling through a 2-entry cache, so
        // (nearly) every job samples its design from scratch.
        let cold = profile(64);
        let specs = cold.specs(JOBS_PER_BATCH);
        let engine = Engine::start(EngineConfig {
            workers,
            queue_capacity: 64,
            results_capacity: 64,
            design_cache_capacity: 2,
            batch_window: 1,
        });
        group.bench_function(format!("cold/{JOBS_PER_BATCH}jobs_w{workers}"), |b| {
            b.iter(|| {
                out.clear();
                engine.run_batch(&specs, &mut out);
                black_box(out.len())
            });
        });
        engine.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
