//! Fused single-pass decode vs the seed two-pass composition.
//!
//! `two_pass` is the seed hot path: `pool_sums_u64` (y = Aᵀσ) followed by
//! `scatter_distinct_u64` (Ψ, Δ*) — two traversals of the design plus three
//! fresh allocations per decode. `fused_ws` computes the same three vectors
//! in one traversal into reusable workspace buffers
//! (`pooled_design::fused::decode_sums_fused`). `decode_repeat_*` measures
//! the replicate-loop view: 100 decodes of the same instance through the
//! allocating API vs a held `MnWorkspace`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pooled_core::mn::MnDecoder;
use pooled_core::workspace::MnWorkspace;
use pooled_design::csr::CsrDesign;
use pooled_design::fused::{decode_sums_fused, FusedArena};
use pooled_design::matvec::{pool_sums_u64, scatter_distinct_u64};
use pooled_rng::SeedSequence;

fn dense_signal(n: usize, k: usize, seeds: &SeedSequence) -> Vec<u64> {
    let sigma = pooled_core::signal::Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    sigma.dense().iter().map(|&b| b as u64).collect()
}

fn bench_sums(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_fused");
    group.sample_size(12);
    // (n, m, Γ) points: the paper regime Γ = n/2 at two scales, plus a
    // query-heavy point.
    let points =
        [(20_000usize, 800usize, 10_000usize), (50_000, 1500, 25_000), (8_000, 2_000, 4_000)];
    for &(n, m, gamma) in &points {
        let seeds = SeedSequence::new(1905);
        let design = CsrDesign::sample(n, m, gamma, &seeds.child("design", 0));
        let x = dense_signal(n, (n as f64).powf(0.3) as usize, &seeds);

        group.bench_function(format!("two_pass/n{n}_m{m}_g{gamma}"), |b| {
            b.iter(|| {
                let y = pool_sums_u64(&design, &x);
                let (psi, dstar) = scatter_distinct_u64(&design, &y);
                black_box((y, psi, dstar))
            });
        });

        let mut y = vec![0u64; m];
        let mut psi = vec![0u64; n];
        let mut dstar = vec![0u64; n];
        let mut arena = FusedArena::new();
        group.bench_function(format!("fused_ws/n{n}_m{m}_g{gamma}"), |b| {
            b.iter(|| {
                decode_sums_fused(&design, &x, &mut y, &mut psi, &mut dstar, &mut arena);
                black_box((y.first().copied(), psi.first().copied()))
            });
        });
    }
    group.finish();
}

fn bench_repeated_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_repeat");
    group.sample_size(10);
    let (n, m, k) = (50_000usize, 1500usize, 25usize);
    let seeds = SeedSequence::new(7);
    let design = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
    let sigma = pooled_core::signal::Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    let y = pooled_core::query::execute_queries(&design, &sigma);
    let decoder = MnDecoder::new(k);

    group.bench_function("allocating_100x", |b| {
        b.iter(|| {
            for _ in 0..100 {
                black_box(decoder.decode(&design, &y).estimate.weight());
            }
        });
    });

    let mut ws = MnWorkspace::new();
    group.bench_function("workspace_100x", |b| {
        b.iter(|| {
            for _ in 0..100 {
                decoder.decode_with(&design, &y, &mut ws);
                black_box(ws.support().len());
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sums, bench_repeated_decode);
criterion_main!(benches);
