//! Decode-path ablation: scatter vs gather accumulation × top-k vs
//! full-sort selection — the design choices DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pooled_core::mn::{DecodeStrategy, MnDecoder, SelectionMethod};
use pooled_core::query::execute_queries;
use pooled_core::signal::Signal;
use pooled_design::multigraph::{RandomRegularDesign, StorageMode};
use pooled_rng::SeedSequence;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_ablation");
    group.sample_size(10);
    let n = 50_000;
    let k = 25; // ≈ n^0.3
    let m = 1500;
    let seeds = SeedSequence::new(1905);
    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    let design = RandomRegularDesign::sample_with(
        n,
        m,
        n / 2,
        &seeds.child("design", 0),
        StorageMode::Materialized,
    );
    let y = execute_queries(&design, &sigma);

    let cases: [(&str, DecodeStrategy, SelectionMethod); 4] = [
        ("scatter_topk", DecodeStrategy::Scatter, SelectionMethod::TopK),
        ("scatter_fullsort", DecodeStrategy::Scatter, SelectionMethod::FullSort),
        ("gather_topk", DecodeStrategy::Gather, SelectionMethod::TopK),
        ("gather_fullsort", DecodeStrategy::Gather, SelectionMethod::FullSort),
    ];
    for (name, strategy, selection) in cases {
        group.bench_function(name, |b| {
            let decoder = MnDecoder::new(k).with_strategy(strategy).with_selection(selection);
            b.iter(|| black_box(decoder.decode_design(&design, &y)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
