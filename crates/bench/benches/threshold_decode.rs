//! EXT-THR bench: threshold-channel execution and decoding wall-clock,
//! against the additive channel at the same dimensions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pooled_core::mn::MnDecoder;
use pooled_core::query::execute_queries;
use pooled_core::signal::Signal;
use pooled_design::CsrDesign;
use pooled_rng::SeedSequence;
use pooled_theory::threshold_gt::recommended_gamma;
use pooled_threshold::{recommended_design, ThresholdChannel, ThresholdMnDecoder};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("threshold_decode");
    group.sample_size(10);
    let (n, k, t, m) = (50_000usize, 25usize, 2u64, 3000usize);
    let seeds = SeedSequence::new(1905);
    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    let (gamma, _) = recommended_gamma(n, k, t);
    eprintln!("threshold_decode: Γ* = {gamma}");

    let design = recommended_design(n, k, t, m, &seeds.child("design", 0));
    let channel = ThresholdChannel::new(t);
    let bits = channel.execute(&design, &sigma);

    group.bench_function("execute_threshold", |b| {
        b.iter(|| black_box(channel.execute(&design, &sigma)));
    });
    group.bench_function("decode_threshold_mn", |b| {
        let dec = ThresholdMnDecoder::new(k);
        b.iter(|| black_box(dec.decode(&design, &bits)));
    });

    // Additive comparison at the same (n, m): pool size n/2.
    let add_design = CsrDesign::sample(n, m, n / 2, &seeds.child("add", 0));
    let y = execute_queries(&add_design, &sigma);
    group.bench_function("execute_additive", |b| {
        b.iter(|| black_box(execute_queries(&add_design, &sigma)));
    });
    group.bench_function("decode_additive_mn", |b| {
        let dec = MnDecoder::new(k);
        b.iter(|| black_box(dec.decode(&add_design, &y)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
