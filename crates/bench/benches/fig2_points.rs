//! FIG2 workload bench: the cost of one phase-transition probe (sample a
//! design at the threshold scale, execute, decode) for each θ of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pooled_rng::SeedSequence;
use pooled_stats::replicate::mn_trial;
use pooled_theory::thresholds::{k_of, m_mn_finite};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_transition_probe");
    group.sample_size(10);
    let n = 10_000;
    for &theta in &[0.1f64, 0.2, 0.3, 0.4] {
        let k = k_of(n, theta);
        let m = m_mn_finite(n, theta).ceil() as usize;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_theta{theta}")),
            &theta,
            |b, _| {
                let seeds = SeedSequence::new(1905);
                let mut trial = 0u64;
                b.iter(|| {
                    trial += 1;
                    black_box(mn_trial(n, k, m, &seeds.child("t", trial)))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
