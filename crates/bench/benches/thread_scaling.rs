//! Thread-scaling of the parallel reconstruction (§I-C “Parallelized
//! Reconstruction”): the same decode under 1, 2, 4, 8 rayon workers.
//!
//! Pools come from `pooled_par::pool::pool_with_threads`, the process-wide
//! memoized cache — building a rayon pool costs ~100 µs, which would
//! otherwise be charged to every measured iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pooled_core::mn::MnDecoder;
use pooled_core::query::execute_queries;
use pooled_core::signal::Signal;
use pooled_design::multigraph::{RandomRegularDesign, StorageMode};
use pooled_par::pool::pool_with_threads;
use pooled_rng::SeedSequence;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thread_scaling_decode");
    group.sample_size(10);
    let n = 100_000;
    let k = 32;
    let m = 2500;
    let seeds = SeedSequence::new(1905);
    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    let design = RandomRegularDesign::sample_with(
        n,
        m,
        n / 2,
        &seeds.child("design", 0),
        StorageMode::Materialized,
    );
    let y = execute_queries(&design, &sigma);
    for &threads in &[1usize, 2, 4, 8] {
        let pool = pool_with_threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &_threads| {
            b.iter(|| pool.install(|| black_box(MnDecoder::new(k).decode_design(&design, &y))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
