//! Per-job fused decode vs the design-major batched kernel.
//!
//! `per_job_fused/B{B}` runs `B` independent jobs through the single-job
//! fused kernel (`decode_sums_fused`) — `B` traversals of the design's
//! CSR index arrays. `batched/B{B}` serves the same `B` jobs through
//! `decode_sums_fused_batch` — one traversal with lane-major planes and a
//! shared Δ*. Same design, same signals, bit-identical outputs; the
//! difference is pure index-stream amortization, which is what the
//! engine's design-affinity batcher and the batched Monte-Carlo executor
//! buy per batch. `finish/B{B}` adds the per-lane selection tail
//! (`decode_batch_with` semantics) so the end-to-end decode is covered.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pooled_core::batch::BatchWorkspace;
use pooled_core::mn::MnDecoder;
use pooled_core::signal::Signal;
use pooled_design::batched::decode_sums_fused_batch;
use pooled_design::csr::CsrDesign;
use pooled_design::fused::{decode_sums_fused, FusedArena};
use pooled_rng::SeedSequence;

const BATCHES: [usize; 4] = [1, 4, 16, 64];

fn lane_signals(n: usize, k: usize, lanes: usize, seeds: &SeedSequence) -> Vec<u8> {
    let mut xs = vec![0u8; lanes * n];
    for b in 0..lanes {
        let sigma = Signal::random(n, k, &mut seeds.child("signal", b as u64).rng());
        xs[b * n..(b + 1) * n].copy_from_slice(sigma.dense());
    }
    xs
}

fn bench_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_decode");
    group.sample_size(12);
    // The engine_load shape (n=1000, Γ=n/2) — the serving hot path.
    let (n, m, k) = (1000usize, 334usize, 8usize);
    let seeds = SeedSequence::new(1905);
    let design = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
    // One worker, like an engine shard: the kernels are sequential and
    // the comparison is pure memory traffic, not parallel fan-out.
    let pool = pooled_par::pool::pool_with_threads(1);
    pool.install(|| {
        for &lanes in &BATCHES {
            let xs = lane_signals(n, k, lanes, &seeds);
            let xs_u64: Vec<u64> = xs.iter().map(|&v| v as u64).collect();

            let mut arena = FusedArena::new();
            let (mut y, mut psi, mut dstar) = (vec![0u64; m], vec![0u64; n], vec![0u64; n]);
            group.bench_function(format!("per_job_fused/B{lanes}"), |b| {
                b.iter(|| {
                    for lane in 0..lanes {
                        decode_sums_fused(
                            &design,
                            &xs_u64[lane * n..(lane + 1) * n],
                            &mut y,
                            &mut psi,
                            &mut dstar,
                            &mut arena,
                        );
                    }
                    black_box(psi.first().copied())
                });
            });

            let (mut ys, mut psis, mut dstar_b) =
                (vec![0u64; lanes * m], vec![0u64; lanes * n], vec![0u64; n]);
            group.bench_function(format!("batched/B{lanes}"), |b| {
                b.iter(|| {
                    decode_sums_fused_batch(&design, &xs, lanes, &mut ys, &mut psis, &mut dstar_b);
                    black_box(psis.first().copied())
                });
            });

            // End-to-end batched decode including the per-lane finish.
            let decoder = MnDecoder::new(k);
            let mut bw = BatchWorkspace::new();
            decode_sums_fused_batch(&design, &xs, lanes, &mut ys, &mut psis, &mut dstar_b);
            let ys_known = ys.clone();
            group.bench_function(format!("finish/B{lanes}"), |b| {
                b.iter(|| {
                    let mut picked = 0usize;
                    decoder.decode_batch_with(&design, &ys_known, lanes, &mut bw, |_, ws| {
                        picked += ws.support().len();
                    });
                    black_box(picked)
                });
            });
        }
    });
    group.finish();
}

criterion_group!(benches, bench_batched);
criterion_main!(benches);
