//! Sorting-step ablation (Lines 7–9 of Algorithm 1): parallel merge sort vs
//! sample sort vs top-k selection on realistic score vectors.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pooled_par::sort::{par_merge_sort, par_sample_sort};
use pooled_par::topk::top_k_indices;
use pooled_rng::{Rng64, SeedSequence};

fn score_vector(n: usize, k: usize) -> Vec<i64> {
    let mut rng = SeedSequence::new(1905).rng();
    let mut scores: Vec<i64> = (0..n).map(|_| rng.below(2000) as i64 - 1000).collect();
    for _ in 0..k {
        scores[rng.index(n)] += 100_000;
    }
    scores
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection_step");
    group.sample_size(10);
    let n = 1_000_000;
    let k = 63; // ≈ n^0.3
    let scores = score_vector(n, k);

    group.bench_function("par_merge_sort_full", |b| {
        b.iter(|| {
            let mut v: Vec<(i64, u32)> =
                scores.iter().enumerate().map(|(i, &s)| (s, i as u32)).collect();
            par_merge_sort(&mut v, |&(s, i)| (std::cmp::Reverse(s), i));
            v.truncate(k);
            black_box(());
        });
    });
    group.bench_function("par_sample_sort_full", |b| {
        b.iter(|| {
            let mut v: Vec<(i64, u32)> =
                scores.iter().enumerate().map(|(i, &s)| (s, i as u32)).collect();
            par_sample_sort(&mut v, |&(s, i)| (std::cmp::Reverse(s), i));
            v.truncate(k);
            black_box(());
        });
    });
    group.bench_function("std_sort_unstable_full", |b| {
        b.iter(|| {
            let mut v: Vec<(i64, u32)> =
                scores.iter().enumerate().map(|(i, &s)| (s, i as u32)).collect();
            v.sort_unstable_by_key(|&(s, i)| (std::cmp::Reverse(s), i));
            v.truncate(k);
            black_box(());
        });
    });
    group.bench_function("parallel_top_k", |b| {
        b.iter(|| black_box(top_k_indices(&scores, k)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
