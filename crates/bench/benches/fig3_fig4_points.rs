//! FIG3/FIG4 workload bench: one full MN trial per grid point of the
//! success-rate and overlap sweeps (n = 1000, m across the panel range).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pooled_rng::SeedSequence;
use pooled_stats::replicate::mn_trial;
use pooled_theory::thresholds::k_of;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_fig4_trial");
    group.sample_size(10);
    let n = 1000;
    let k = k_of(n, 0.3);
    for &m in &[200usize, 600, 1000] {
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(format!("m{m}")), &m, |b, &m| {
            let seeds = SeedSequence::new(1905);
            let mut trial = 0u64;
            b.iter(|| {
                trial += 1;
                black_box(mn_trial(n, k, m, &seeds.child("t", trial)))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
