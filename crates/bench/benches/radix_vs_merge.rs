//! Selection-step ablation, extended: LSD radix ranking vs the comparison
//! sorts vs top-k selection on decoder-shaped score arrays.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pooled_par::radix::radix_rank_desc;
use pooled_par::sort::{par_merge_sort, par_sample_sort};
use pooled_par::topk::top_k_indices;
use pooled_rng::{Rng64, SeedSequence};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("radix_vs_merge");
    group.sample_size(10);
    let n = 1_000_000usize;
    let k = 63; // ≈ n^0.3
    let mut rng = SeedSequence::new(1905).rng();
    // Decoder-shaped scores: integer, roughly centered, modest spread.
    let scores: Vec<i64> = (0..n).map(|_| (rng.next_u64() % 20_001) as i64 - 10_000).collect();

    group.bench_function("radix_rank_desc", |b| {
        b.iter(|| black_box(radix_rank_desc(&scores)));
    });
    group.bench_function("merge_sort_rank", |b| {
        b.iter(|| {
            let mut pairs: Vec<(i64, u32)> =
                scores.iter().enumerate().map(|(i, &s)| (s, i as u32)).collect();
            par_merge_sort(&mut pairs, |&(s, i)| (std::cmp::Reverse(s), i));
            black_box(pairs)
        });
    });
    group.bench_function("sample_sort_rank", |b| {
        b.iter(|| {
            let mut pairs: Vec<(i64, u32)> =
                scores.iter().enumerate().map(|(i, &s)| (s, i as u32)).collect();
            par_sample_sort(&mut pairs, |&(s, i)| (std::cmp::Reverse(s), i));
            black_box(pairs)
        });
    });
    group.bench_function("topk_only", |b| {
        b.iter(|| black_box(top_k_indices(&scores, k)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
