//! Privatized blocked scatter vs the atomic accumulator, across the density
//! regimes the `choose_scatter` heuristic separates.
//!
//! The workload is the decoder's exact access pattern: for every query,
//! scatter its weight into the Ψ slot of each distinct member entry (plus a
//! Δ* increment). Dense regime: the paper's `Γ = n/2` design, every entry
//! hit `≈ 0.39·m` times. Sparse regime: tiny pools, where the `t·n`
//! zero+merge cost of privatization dominates and atomics win.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pooled_design::csr::CsrDesign;
use pooled_design::fused::{scatter_distinct_into, FusedArena};
use pooled_design::matvec::scatter_distinct_u64;
use pooled_design::PoolingDesign;
use pooled_par::blocked::BlockedScatter;
use pooled_par::scatter::AtomicCounters;
use pooled_rng::SeedSequence;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scatter_blocked_vs_atomic");
    group.sample_size(12);
    // (label, n, m, Γ): dense (paper) and sparse (peeling-like) shapes.
    let shapes = [("dense", 50_000usize, 1500usize, 25_000usize), ("sparse", 50_000, 1500, 64)];
    for (label, n, m, gamma) in shapes {
        let design = CsrDesign::sample(n, m, gamma, &SeedSequence::new(1905));
        let w: Vec<u64> = (0..m as u64).map(|q| 3 * q + 1).collect();

        group.bench_function(format!("atomic/{label}"), |b| {
            b.iter(|| {
                let psi = AtomicCounters::new(n);
                let dstar = AtomicCounters::new(n);
                use rayon::prelude::*;
                (0..m).into_par_iter().for_each(|q| {
                    let wq = w[q];
                    design.for_each_distinct(q, &mut |e, _| {
                        psi.add(e, wq);
                        dstar.incr(e);
                    });
                });
                black_box(psi.get(0))
            });
        });

        let mut blocked = BlockedScatter::new();
        let mut psi = vec![0u64; n];
        let mut dstar = vec![0u64; n];
        group.bench_function(format!("blocked/{label}"), |b| {
            b.iter(|| {
                blocked.scatter_pair(&mut psi, &mut dstar, m, |a, bb, range| {
                    for q in range {
                        let wq = w[q];
                        design.for_each_distinct(q, &mut |e, _| {
                            a[e] += wq;
                            bb[e] += 1;
                        });
                    }
                });
                black_box(psi[0])
            });
        });

        let mut arena = FusedArena::new();
        group.bench_function(format!("heuristic/{label}"), |b| {
            b.iter(|| {
                scatter_distinct_into(&design, &w, &mut psi, &mut dstar, &mut arena);
                black_box(psi[0])
            });
        });

        group.bench_function(format!("seed_allocating/{label}"), |b| {
            b.iter(|| black_box(scatter_distinct_u64(&design, &w)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
