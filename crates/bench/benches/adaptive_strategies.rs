//! EXT-ADPT bench: simulator throughput of the adaptive strategies.
//!
//! Queries are free in simulation (prefix sums), so this measures the
//! *orchestration* cost — frontier bookkeeping, design sampling for the
//! hybrid's screening round, decoding — which is what bounds large
//! parameter sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pooled_adaptive::{
    counting_dorfman, optimal_group_size, quantitative_bisect, two_round_hybrid, CountOracle,
    HybridConfig,
};
use pooled_core::signal::Signal;
use pooled_rng::SeedSequence;
use pooled_theory::thresholds::{k_of, m_mn_finite};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_strategies");
    group.sample_size(10);
    let (n, theta) = (100_000usize, 0.3);
    let k = k_of(n, theta);
    let seeds = SeedSequence::new(1905);
    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    let g_star = optimal_group_size(n, k);
    let hybrid_cfg =
        HybridConfig { m1: (0.7 * m_mn_finite(n, theta)).round() as usize, candidate_mult: 12 };

    group.bench_function("bisect", |b| {
        b.iter(|| {
            let mut oracle = CountOracle::new(&sigma);
            black_box(quantitative_bisect(&mut oracle))
        });
    });
    group.bench_function("dorfman", |b| {
        b.iter(|| {
            let mut oracle = CountOracle::new(&sigma);
            black_box(counting_dorfman(&mut oracle, g_star))
        });
    });
    group.bench_function("hybrid", |b| {
        b.iter(|| {
            let mut oracle = CountOracle::new(&sigma);
            black_box(two_round_hybrid(&mut oracle, k, &hybrid_cfg, &seeds))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
