//! Decoder wall-clock comparison at a common instance size — the cost side
//! of the related-work table (accuracy side lives in `baselines_table`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pooled_baselines::amp::AmpDecoder;
use pooled_baselines::basis_pursuit::BasisPursuitDecoder;
use pooled_baselines::omp::OmpDecoder;
use pooled_baselines::peeling::{peel, sparse_design_for};
use pooled_baselines::AdditiveDecoder;
use pooled_core::mn::MnDecoder;
use pooled_core::query::execute_queries;
use pooled_core::signal::Signal;
use pooled_design::csr::CsrDesign;
use pooled_rng::SeedSequence;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("decoders");
    group.sample_size(10);
    let n = 200;
    let k = 5;
    let m = 120;
    let seeds = SeedSequence::new(1905);
    let design = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    let y = execute_queries(&design, &sigma);

    group.bench_function("mn", |b| {
        b.iter(|| black_box(MnDecoder::new(k).decode_csr(&design, &y)));
    });
    group.bench_function("omp", |b| {
        let dec = OmpDecoder::new();
        b.iter(|| black_box(dec.reconstruct(&design, &y, k)));
    });
    group.bench_function("amp", |b| {
        let dec = AmpDecoder::new();
        b.iter(|| black_box(dec.reconstruct(&design, &y, k)));
    });
    group.bench_function("basis_pursuit_lp", |b| {
        let dec = BasisPursuitDecoder::new();
        b.iter(|| black_box(dec.reconstruct(&design, &y, k)));
    });
    // Peeling runs on its own sparse design.
    let sparse = sparse_design_for(n, m, k, 1.0, &seeds.child("sparse", 0));
    let y_sparse = execute_queries(&sparse, &sigma);
    group.bench_function("peeling", |b| {
        b.iter(|| black_box(peel(&sparse, &y_sparse)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
