//! Storage-mode ablation: materializing the CSR design vs regenerating
//! pools from seeds (the Fig. 2 large-n enabler), plus the two query
//! execution paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pooled_core::query::{execute_queries, execute_queries_support};
use pooled_core::signal::Signal;
use pooled_design::csr::CsrDesign;
use pooled_design::streaming::StreamingDesign;
use pooled_rng::SeedSequence;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("design");
    group.sample_size(10);
    let n = 20_000;
    let m = 800;
    let seeds = SeedSequence::new(1905);

    group.bench_function("sample_csr", |b| {
        b.iter(|| black_box(CsrDesign::sample(n, m, n / 2, &seeds)));
    });

    let csr = CsrDesign::sample(n, m, n / 2, &seeds);
    let stream = StreamingDesign::new(n, m, n / 2, &seeds);
    let sigma = Signal::random(n, 20, &mut seeds.child("signal", 0).rng());

    group.bench_function("execute_csr_dense", |b| {
        b.iter(|| black_box(execute_queries(&csr, &sigma)));
    });
    group.bench_function("execute_csr_support", |b| {
        b.iter(|| black_box(execute_queries_support(&csr, &sigma)));
    });
    group.bench_function("execute_streaming", |b| {
        b.iter(|| black_box(execute_queries(&stream, &sigma)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
