//! EXT-DSGN bench: sampling and Γ-general decoding cost per design family
//! at matched density.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pooled_core::mn_general::GeneralMnDecoder;
use pooled_core::query::execute_queries;
use pooled_core::signal::Signal;
use pooled_design::{DesignKind, PoolingDesign};
use pooled_rng::SeedSequence;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("designs_compare");
    group.sample_size(10);
    let (n, k, m) = (20_000usize, 20usize, 1200usize);
    let seeds = SeedSequence::new(1905);
    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());

    for kind in DesignKind::ALL {
        group.bench_function(format!("sample_{}", kind.name()), |b| {
            b.iter(|| black_box(kind.sample(n, m, 0.5, &seeds.child("d", 0))));
        });
        let design = kind.sample(n, m, 0.5, &seeds.child("d", 0));
        let y = execute_queries(&design, &sigma);
        assert_eq!(y.len(), design.m());
        group.bench_function(format!("decode_{}", kind.name()), |b| {
            let dec = GeneralMnDecoder::new(k);
            b.iter(|| black_box(dec.decode(&design, &y)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
