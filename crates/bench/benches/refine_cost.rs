//! EXT-REFINE bench: what the refinement stage costs next to the decode
//! it follows, across the regimes it encounters (consistent input, light
//! repair, heavy repair below threshold).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pooled_core::mn::MnDecoder;
use pooled_core::query::execute_queries;
use pooled_core::refine::{refine, RefineConfig};
use pooled_core::signal::Signal;
use pooled_design::CsrDesign;
use pooled_rng::SeedSequence;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("refine_cost");
    group.sample_size(10);
    let (n, k) = (20_000usize, 20usize);
    let seeds = SeedSequence::new(1905);
    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    let cfg = RefineConfig::default();

    // Three budgets: comfortable (no swaps), marginal, deep sub-threshold.
    for (label, m) in [("consistent", 1800usize), ("marginal", 900), ("subthreshold", 450)] {
        let design = CsrDesign::sample(n, m, n / 2, &seeds.child(label, 0));
        let y = execute_queries(&design, &sigma);
        let out = MnDecoder::new(k).decode(&design, &y);
        group.bench_function(format!("decode_{label}"), |b| {
            let dec = MnDecoder::new(k);
            b.iter(|| black_box(dec.decode(&design, &y)));
        });
        group.bench_function(format!("refine_{label}"), |b| {
            b.iter(|| black_box(refine(&design, &y, &out.scores, &out.estimate, &cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
