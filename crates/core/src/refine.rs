//! Residual-guided local search: a second stage after the MN decoder.
//!
//! The paper's §VI names the gap between the algorithmic threshold
//! (Theorem 1, `Θ(k·ln(n/k)·ln k)` queries… sic: `c(n) = Θ(ln n)`) and the
//! information-theoretic threshold (Theorem 2) as *the* open problem. This
//! module implements the natural greedy attack on that gap: keep querying
//! nothing, but spend post-processing time.
//!
//! Starting from the MN estimate `σ̃`, compute the residual `r = y − ŷ(σ̃)`
//! and greedily swap a weak in-support entry for a strong out-of-support
//! entry whenever the swap reduces `‖r‖₁`, until the estimate is consistent
//! (`r = 0`) or no candidate swap improves. Above the IT threshold a
//! consistent vector is unique w.h.p. (Theorem 2), so reaching `r = 0`
//! *certifies* exact recovery there.
//!
//! Candidates are ranked by the MN scores — the entries the decoder was
//! least sure about — which keeps each round at `O(W²·(Δ*))` for a window
//! of `W` candidates per side, evaluated in parallel. The `refinement_gain`
//! experiment measures how far this pushes the empirical transition below
//! Theorem 1's prediction.

use rayon::prelude::*;

use pooled_design::csr::CsrDesign;
use pooled_design::PoolingDesign;

use crate::signal::Signal;
use crate::workspace::MnWorkspace;

/// Tuning knobs for the local search.
#[derive(Clone, Copy, Debug)]
pub struct RefineConfig {
    /// Candidates considered on each side of a swap (weakest in-support ×
    /// strongest out-of-support). `W² ` pairs are scored per round.
    pub window: usize,
    /// Hard cap on applied swaps (each round applies at most one).
    pub max_swaps: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        Self { window: 24, max_swaps: 256 }
    }
}

/// Result of the refinement stage.
#[derive(Clone, Debug)]
pub struct RefineOutput {
    /// The (possibly improved) estimate; weight equals the input weight.
    pub estimate: Signal,
    /// `‖y − ŷ‖₁` before refinement.
    pub initial_residual: u64,
    /// `‖y − ŷ‖₁` after refinement.
    pub final_residual: u64,
    /// Number of swaps applied.
    pub swaps: usize,
    /// Whether the final estimate reproduces `y` exactly. Above the IT
    /// threshold this certifies `estimate == σ` w.h.p. (Theorem 2).
    pub consistent: bool,
}

/// Statistics of a workspace refinement run ([`refine_with`]); the refined
/// estimate itself stays in the workspace's dense buffer.
#[derive(Clone, Copy, Debug)]
pub struct RefineStats {
    /// `‖y − ŷ‖₁` before refinement.
    pub initial_residual: u64,
    /// `‖y − ŷ‖₁` after refinement.
    pub final_residual: u64,
    /// Number of swaps applied.
    pub swaps: usize,
    /// Whether the final estimate reproduces `y` exactly.
    pub consistent: bool,
}

/// Greedily swap support entries to reduce the query residual.
///
/// `scores` are the per-entry MN scores used to shortlist candidates
/// (`MnOutput::scores`); they are read-only and may be stale after swaps —
/// they only steer the shortlist, correctness comes from exact residual
/// recomputation per candidate pair.
///
/// Thin wrapper over [`refine_with`] on a fresh workspace.
///
/// # Panics
/// Panics if `y`, `scores`, or `estimate` disagree with the design's
/// dimensions.
pub fn refine(
    design: &CsrDesign,
    y: &[u64],
    scores: &[i64],
    estimate: &Signal,
    cfg: &RefineConfig,
) -> RefineOutput {
    assert_eq!(scores.len(), design.n(), "score vector length must equal n");
    assert_eq!(estimate.n(), design.n(), "estimate length must equal n");
    let n = design.n();
    let mut ws = MnWorkspace::new();
    ws.prepare(n);
    ws.scores[..n].copy_from_slice(scores);
    ws.estimate[..n].copy_from_slice(estimate.dense());
    let stats = refine_with(design, y, cfg, &mut ws);
    RefineOutput {
        estimate: Signal::from_dense(&ws.estimate[..n]),
        initial_residual: stats.initial_residual,
        final_residual: stats.final_residual,
        swaps: stats.swaps,
        consistent: stats.consistent,
    }
}

/// Workspace refinement: refines the estimate left in `ws` by the preceding
/// [`crate::mn::MnDecoder::decode_with`] (shortlists steered by
/// `ws.scores()`), mutating `ws`'s dense estimate in place. All candidate
/// and residual buffers are reused across calls.
///
/// # Panics
/// Panics if `y.len() != design.m()` or the workspace was prepared for a
/// different `n`.
pub fn refine_with(
    design: &CsrDesign,
    y: &[u64],
    cfg: &RefineConfig,
    ws: &mut MnWorkspace,
) -> RefineStats {
    assert_eq!(y.len(), design.m(), "result vector length must equal m");
    assert_eq!(ws.n(), design.n(), "workspace not prepared for this design");
    let n = design.n();
    // ŷ from the current dense estimate, then r = y − ŷ.
    let dense_now = &ws.estimate[..n];
    ws.y_hat.clear();
    ws.y_hat.resize(design.m(), 0);
    ws.y_hat.par_iter_mut().enumerate().for_each(|(q, slot)| {
        let (entries, mults) = design.query_row(q);
        let mut acc = 0u64;
        for (&e, &c) in entries.iter().zip(mults) {
            acc += dense_now[e as usize] as u64 * c as u64;
        }
        *slot = acc;
    });
    ws.residual.clear();
    ws.residual.extend(y.iter().zip(&ws.y_hat).map(|(&a, &b)| a as i64 - b as i64));
    let initial_residual: u64 = ws.residual.iter().map(|&v| v.unsigned_abs()).sum();
    let mut residual = initial_residual;
    let mut swaps = 0usize;

    while residual > 0 && swaps < cfg.max_swaps {
        // Shortlist: weakest in-support, strongest out-of-support.
        let dense = &ws.estimate[..n];
        let scores = &ws.scores[..n];
        ws.ins.clear();
        ws.ins.extend((0..n).filter(|&i| dense[i] == 1));
        ws.outs.clear();
        ws.outs.extend((0..n).filter(|&i| dense[i] == 0));
        if ws.ins.is_empty() || ws.outs.is_empty() {
            break;
        }
        ws.ins.sort_by_key(|&i| (scores[i], i));
        ws.outs.sort_by_key(|&i| (std::cmp::Reverse(scores[i]), i));
        ws.ins.truncate(cfg.window);
        ws.outs.truncate(cfg.window);
        ws.pairs.clear();
        ws.pairs.extend(ws.ins.iter().flat_map(|&i| ws.outs.iter().map(move |&j| (i, j))));
        // Exact Δ‖r‖₁ per candidate pair, in parallel; deterministic best.
        let r = &ws.residual;
        let best = ws
            .pairs
            .par_iter()
            .map(|&(i, j)| (swap_delta(design, r, i, j), i, j))
            .min_by_key(|&(d, i, j)| (d, i, j))
            .expect("candidate set is nonempty");
        let (delta, i, j) = best;
        if delta >= 0 {
            break; // local minimum of ‖r‖₁
        }
        // Apply: remove i (ŷ loses A_iq ⇒ r gains), insert j (r loses A_jq).
        let (qs_i, ms_i) = design.entry_row(i);
        for (&q, &c) in qs_i.iter().zip(ms_i) {
            ws.residual[q as usize] += c as i64;
        }
        let (qs_j, ms_j) = design.entry_row(j);
        for (&q, &c) in qs_j.iter().zip(ms_j) {
            ws.residual[q as usize] -= c as i64;
        }
        ws.estimate[i] = 0;
        ws.estimate[j] = 1;
        residual = (residual as i64 + delta) as u64;
        debug_assert_eq!(residual, ws.residual.iter().map(|&v| v.unsigned_abs()).sum::<u64>());
        swaps += 1;
    }

    RefineStats { initial_residual, final_residual: residual, swaps, consistent: residual == 0 }
}

/// Exact change of `‖r‖₁` if entry `i` leaves the support and `j` joins:
/// only queries in `∂*x_i ∪ ∂*x_j` change, by `+A_iq − A_jq`.
fn swap_delta(design: &CsrDesign, r: &[i64], i: usize, j: usize) -> i64 {
    let (qi, mi) = design.entry_row(i);
    let (qj, mj) = design.entry_row(j);
    let mut delta = 0i64;
    let (mut a, mut b) = (0usize, 0usize);
    while a < qi.len() || b < qj.len() {
        let (q, add, sub) = match (qi.get(a), qj.get(b)) {
            (Some(&x), Some(&y)) if x == y => {
                let t = (x, mi[a] as i64, mj[b] as i64);
                a += 1;
                b += 1;
                t
            }
            (Some(&x), Some(&y)) if x < y => {
                let t = (x, mi[a] as i64, 0);
                a += 1;
                t
            }
            (Some(_), Some(&y)) => {
                let t = (y, 0, mj[b] as i64);
                b += 1;
                t
            }
            (Some(&x), None) => {
                let t = (x, mi[a] as i64, 0);
                a += 1;
                t
            }
            (None, Some(&y)) => {
                let t = (y, 0, mj[b] as i64);
                b += 1;
                t
            }
            (None, None) => unreachable!("loop guard"),
        };
        let old = r[q as usize];
        delta += (old + add - sub).abs() - old.abs();
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mn::MnDecoder;
    use crate::query::execute_queries;
    use pooled_rng::SeedSequence;
    use pooled_theory::thresholds::{k_of, m_mn_finite};

    fn setup(n: usize, k: usize, m: usize, seed: u64) -> (Signal, CsrDesign, Vec<u64>) {
        let seeds = SeedSequence::new(seed);
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let design = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
        let y = execute_queries(&design, &sigma);
        (sigma, design, y)
    }

    #[test]
    fn exact_estimate_is_left_untouched() {
        let (sigma, design, y) = setup(400, 6, 200, 31);
        let out = MnDecoder::new(6).decode(&design, &y);
        assert_eq!(out.estimate, sigma, "pick m high enough for this test");
        let refined = refine(&design, &y, &out.scores, &out.estimate, &RefineConfig::default());
        assert!(refined.consistent);
        assert_eq!(refined.swaps, 0);
        assert_eq!(refined.estimate, sigma);
        assert_eq!(refined.initial_residual, 0);
    }

    #[test]
    fn fixes_a_planted_single_swap_error() {
        let (sigma, design, y) = setup(500, 8, 250, 32);
        // Corrupt the truth by one swap.
        let mut dense = sigma.dense().to_vec();
        let out_i = sigma.support()[3];
        let in_j = (0..500).find(|&i| dense[i] == 0).unwrap();
        dense[out_i] = 0;
        dense[in_j] = 1;
        let corrupted = Signal::from_dense(&dense);
        // Static scores from a fresh decode steer the shortlist.
        let scores = MnDecoder::new(8).decode(&design, &y).scores;
        let refined = refine(&design, &y, &scores, &corrupted, &RefineConfig::default());
        assert!(refined.consistent, "residual {} after refine", refined.final_residual);
        assert_eq!(refined.estimate, sigma);
        assert_eq!(refined.swaps, 1);
    }

    #[test]
    fn never_increases_residual() {
        for seed in 40..46 {
            // Deliberately below threshold so MN errs.
            let (_, design, y) = setup(600, 10, 120, seed);
            let out = MnDecoder::new(10).decode(&design, &y);
            let refined = refine(&design, &y, &out.scores, &out.estimate, &RefineConfig::default());
            assert!(refined.final_residual <= refined.initial_residual, "seed {seed}");
        }
    }

    #[test]
    fn improves_success_rate_below_threshold() {
        // At ~70% of the finite-size MN threshold, plain MN misses often;
        // refinement must recover at least as many instances.
        let n = 1000;
        let k = k_of(n, 0.3);
        let m = (0.7 * m_mn_finite(n, 0.3)).round() as usize;
        let (mut plain_ok, mut refined_ok) = (0, 0);
        for seed in 0..15 {
            let (sigma, design, y) = setup(n, k, m, 100 + seed);
            let out = MnDecoder::new(k).decode(&design, &y);
            let refined = refine(&design, &y, &out.scores, &out.estimate, &RefineConfig::default());
            plain_ok += (out.estimate == sigma) as u32;
            refined_ok += (refined.estimate == sigma) as u32;
            assert!(
                refined.estimate == sigma || out.estimate != sigma,
                "refinement broke a correct estimate (seed {seed})"
            );
        }
        assert!(refined_ok >= plain_ok, "refined {refined_ok} < plain {plain_ok}");
        assert!(refined_ok > plain_ok, "expected a strict gain at m={m} ({plain_ok} both)");
    }

    #[test]
    fn respects_max_swaps_cap() {
        let (_, design, y) = setup(600, 10, 90, 60);
        let out = MnDecoder::new(10).decode(&design, &y);
        let cfg = RefineConfig { window: 8, max_swaps: 2 };
        let refined = refine(&design, &y, &out.scores, &out.estimate, &cfg);
        assert!(refined.swaps <= 2);
    }

    #[test]
    fn weight_is_invariant() {
        let (_, design, y) = setup(500, 7, 100, 61);
        let out = MnDecoder::new(7).decode(&design, &y);
        let refined = refine(&design, &y, &out.scores, &out.estimate, &RefineConfig::default());
        assert_eq!(refined.estimate.weight(), 7);
    }

    #[test]
    fn deterministic() {
        let (_, design, y) = setup(500, 7, 130, 62);
        let out = MnDecoder::new(7).decode(&design, &y);
        let a = refine(&design, &y, &out.scores, &out.estimate, &RefineConfig::default());
        let b = refine(&design, &y, &out.scores, &out.estimate, &RefineConfig::default());
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.swaps, b.swaps);
        assert_eq!(a.final_residual, b.final_residual);
    }

    #[test]
    fn consistency_certificate_matches_zero_residual() {
        for seed in 70..76 {
            let (_, design, y) = setup(400, 6, 150, seed);
            let out = MnDecoder::new(6).decode(&design, &y);
            let refined = refine(&design, &y, &out.scores, &out.estimate, &RefineConfig::default());
            let y_check = execute_queries(&design, &refined.estimate);
            let res: u64 = y.iter().zip(&y_check).map(|(&a, &b)| a.abs_diff(b)).sum();
            assert_eq!(res, refined.final_residual, "seed {seed}");
            assert_eq!(refined.consistent, res == 0, "seed {seed}");
        }
    }
}
