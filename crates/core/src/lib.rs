#![warn(missing_docs)]

//! The paper's primary contribution: reconstruction of a sparse binary
//! signal from parallel additive pooled queries.
//!
//! Pipeline (mirroring Algorithm 1 of the paper):
//!
//! 1. Sample a [`pooled_design::RandomRegularDesign`] `G(n, m, Γ = n/2)`.
//! 2. Execute all queries in parallel: [`query::execute_queries`] returns
//!    `y ∈ {0,…,Γ}^m` with `y_q = Σ_i A_iq·σ_i` (multiplicities count).
//! 3. Decode with the **Maximum Neighborhood** algorithm ([`mn`]): score
//!    every entry by `Ψ_i − Δ*_i·k/2` and keep the `k` largest.
//!
//! Supporting machinery:
//!
//! * [`signal`] — the hidden vector `σ`, uniform over weight-`k` vectors.
//! * [`exhaustive`] — the information-theoretic decoder of Theorem 2
//!   (brute-force consistency search, for small instances).
//! * [`bnb`] — the same count via branch-and-bound with residual pruning
//!   and MN-guided ordering (Theorem 2 checks far beyond `C(n,k)`
//!   enumeration).
//! * [`mn_general`] — the MN algorithm for arbitrary pool sizes and the
//!   alternative design families (per-query centering, `i128` scores).
//! * [`refine`] — residual-guided swap search after MN, attacking the §VI
//!   algorithmic-vs-IT gap without extra queries.
//! * [`workspace`] — the reusable decode workspace behind the `*_with`
//!   entry points; Monte-Carlo loops decode allocation-free with it.
//! * [`batch`] — the multi-job batched decode path: one design traversal
//!   accumulates Ψ/Δ* for a whole batch of jobs sharing a design.
//! * [`noise`] — noisy query channels for the robustness extension.
//! * [`subset_select`] — the Subset Select relaxation (Feige–Lellouche):
//!   return only high-confidence one-entries.
//! * [`metrics`] — exact-recovery / overlap metrics used by every figure.
//!
//! ```
//! use pooled_core::{mn::MnDecoder, query::execute_queries, signal::Signal};
//! use pooled_design::multigraph::RandomRegularDesign;
//! use pooled_rng::SeedSequence;
//!
//! let seeds = SeedSequence::new(1905);
//! let (n, k, m) = (512, 6, 420);
//! let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
//! let design = RandomRegularDesign::sample(n, m, &seeds.child("design", 0));
//! let y = execute_queries(&design, &sigma);
//! let out = MnDecoder::new(k).decode(&design, &y);
//! assert_eq!(out.estimate, sigma);
//! ```

pub mod batch;
pub mod bnb;
pub mod exhaustive;
pub mod metrics;
pub mod mn;
pub mod mn_general;
pub mod noise;
pub mod query;
pub mod refine;
pub mod signal;
pub mod subset_select;
pub mod workspace;

pub use batch::BatchWorkspace;
pub use metrics::{exact_recovery, exact_recovery_dense, overlap_fraction, overlap_fraction_dense};
pub use mn::{DecodeStrategy, MnDecoder, MnOutput, SelectionMethod};
pub use mn_general::{GeneralMnDecoder, GeneralMnOutput};
pub use query::execute_queries;
pub use refine::{refine, refine_with, RefineConfig, RefineOutput, RefineStats};
pub use signal::Signal;
pub use workspace::MnWorkspace;

/// Re-export of the closed-form thresholds (Theorems 1–2 and related work)
/// so downstream users need only this crate.
pub use pooled_theory::thresholds;
