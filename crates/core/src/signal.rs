//! The hidden signal `σ ∈ {0,1}^n` of Hamming weight `k`.
//!
//! Stored both densely (byte per entry, for O(1) membership in the hot
//! query-execution loop) and as a sorted support list (for O(k) overlap
//! computations). The two views are kept consistent by construction.

use pooled_rng::shuffle::sample_distinct_floyd;
use pooled_rng::Rng64;

/// A binary signal with explicit support.
#[derive(Clone, PartialEq, Eq)]
pub struct Signal {
    dense: Vec<u8>,
    support: Vec<usize>,
}

impl std::fmt::Debug for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Signal")
            .field("n", &self.dense.len())
            .field("support", &self.support)
            .finish()
    }
}

impl Signal {
    /// Draw uniformly from all `{0,1}^n` vectors with exactly `k` ones
    /// (the paper's ground-truth distribution).
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn random<R: Rng64 + ?Sized>(n: usize, k: usize, rng: &mut R) -> Self {
        let support = sample_distinct_floyd(n, k, rng);
        Self::from_sorted_support(n, support)
    }

    /// Build from a support set (indices of one-entries, any order).
    ///
    /// # Panics
    /// Panics on out-of-range or duplicate indices.
    pub fn from_support(n: usize, mut support: Vec<usize>) -> Self {
        support.sort_unstable();
        for w in support.windows(2) {
            assert!(w[0] != w[1], "duplicate support index {}", w[0]);
        }
        Self::from_sorted_support(n, support)
    }

    fn from_sorted_support(n: usize, support: Vec<usize>) -> Self {
        let mut dense = vec![0u8; n];
        for &i in &support {
            assert!(i < n, "support index {i} out of range for n={n}");
            dense[i] = 1;
        }
        Self { dense, support }
    }

    /// Build from a dense 0/1 slice.
    ///
    /// # Panics
    /// Panics if any entry is neither 0 nor 1.
    pub fn from_dense(bits: &[u8]) -> Self {
        let support = bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| {
                assert!(b <= 1, "entry {i} has non-binary value {b}");
                (b == 1).then_some(i)
            })
            .collect();
        Self { dense: bits.to_vec(), support }
    }

    /// Signal length `n`.
    pub fn n(&self) -> usize {
        self.dense.len()
    }

    /// Hamming weight `k = ||σ||₁`.
    pub fn weight(&self) -> usize {
        self.support.len()
    }

    /// Value of entry `i` (0 or 1).
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        self.dense[i]
    }

    /// Whether entry `i` is a one-entry.
    #[inline]
    pub fn is_one(&self, i: usize) -> bool {
        self.dense[i] == 1
    }

    /// Sorted indices of the one-entries.
    pub fn support(&self) -> &[usize] {
        &self.support
    }

    /// Dense byte view (`0`/`1` per entry).
    pub fn dense(&self) -> &[u8] {
        &self.dense
    }

    /// Dense `u64` view for the matvec kernels.
    pub fn to_u64(&self) -> Vec<u64> {
        self.dense.iter().map(|&b| b as u64).collect()
    }

    /// `⟨σ, τ⟩`: number of shared one-entries (the paper's overlap `ℓ`).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn overlap(&self, other: &Signal) -> usize {
        assert_eq!(self.n(), other.n(), "signals must have equal length");
        // Merge-walk over the two sorted supports.
        let (a, b) = (&self.support, &other.support);
        let (mut i, mut j, mut count) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Hamming distance to another signal.
    pub fn hamming_distance(&self, other: &Signal) -> usize {
        self.weight() + other.weight() - 2 * self.overlap(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_rng::{Mt19937_64, SeedSequence};

    #[test]
    fn random_signal_has_exact_weight() {
        let mut rng = Mt19937_64::new(1);
        for (n, k) in [(100, 0), (100, 1), (100, 50), (100, 100), (1, 1)] {
            let s = Signal::random(n, k, &mut rng);
            assert_eq!(s.weight(), k);
            assert_eq!(s.n(), n);
            assert_eq!(s.dense().iter().map(|&b| b as usize).sum::<usize>(), k);
        }
    }

    #[test]
    fn support_and_dense_agree() {
        let mut rng = Mt19937_64::new(2);
        let s = Signal::random(500, 40, &mut rng);
        for i in 0..500 {
            assert_eq!(s.is_one(i), s.support().contains(&i));
        }
    }

    #[test]
    fn from_support_sorts_input() {
        let s = Signal::from_support(10, vec![7, 1, 4]);
        assert_eq!(s.support(), &[1, 4, 7]);
        assert_eq!(s.get(4), 1);
        assert_eq!(s.get(0), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn from_support_rejects_duplicates() {
        let _ = Signal::from_support(10, vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_support_rejects_out_of_range() {
        let _ = Signal::from_support(4, vec![4]);
    }

    #[test]
    fn from_dense_round_trips() {
        let bits = [0u8, 1, 1, 0, 1];
        let s = Signal::from_dense(&bits);
        assert_eq!(s.support(), &[1, 2, 4]);
        assert_eq!(s.dense(), &bits);
    }

    #[test]
    #[should_panic(expected = "non-binary")]
    fn from_dense_rejects_non_binary() {
        let _ = Signal::from_dense(&[0, 2]);
    }

    #[test]
    fn fig1_signal() {
        // σ = (1,1,0,0,1,0,0) from the paper's Fig. 1.
        let s = Signal::from_dense(&[1, 1, 0, 0, 1, 0, 0]);
        assert_eq!(s.weight(), 3);
        assert_eq!(s.support(), &[0, 1, 4]);
    }

    #[test]
    fn overlap_cases() {
        let a = Signal::from_support(10, vec![1, 3, 5]);
        let b = Signal::from_support(10, vec![3, 5, 7]);
        assert_eq!(a.overlap(&b), 2);
        assert_eq!(a.overlap(&a), 3);
        let empty = Signal::from_support(10, vec![]);
        assert_eq!(a.overlap(&empty), 0);
    }

    #[test]
    fn hamming_distance_is_symmetric_metric() {
        let a = Signal::from_support(10, vec![1, 3, 5]);
        let b = Signal::from_support(10, vec![3, 5, 7]);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(b.hamming_distance(&a), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn uniformity_over_positions() {
        // Each index appears in the support with probability k/n.
        let node = SeedSequence::new(3);
        let (n, k, trials) = (50usize, 10usize, 20_000usize);
        let mut hits = vec![0u32; n];
        let mut rng = node.rng();
        for _ in 0..trials {
            for &i in Signal::random(n, k, &mut rng).support() {
                hits[i] += 1;
            }
        }
        let want = trials as f64 * k as f64 / n as f64;
        for (i, &h) in hits.iter().enumerate() {
            let dev = (h as f64 - want).abs() / want;
            assert!(dev < 0.1, "index {i}: {h} vs {want}");
        }
    }

    #[test]
    fn to_u64_matches_dense() {
        let s = Signal::from_dense(&[1, 0, 1]);
        assert_eq!(s.to_u64(), vec![1, 0, 1]);
    }
}
