//! The Subset Select relaxation (Feige & Lellouche, discussed in §I-B).
//!
//! Instead of demanding the full support, Subset Select asks for a set of
//! entries that are *all* correct (a high-precision subset of the
//! one-entries). The MN scores support this directly: Corollary 6 shows
//! one- and zero-entry scores separate by `≈ (1−2α)·m/2`, so entries whose
//! score clears a margin above the bulk are one-entries with overwhelming
//! probability — even at query counts where full recovery still fails
//! (visible in Fig. 4: overlap ≈ 0.99 well before success rate reaches 1).

use crate::mn::MnOutput;
use crate::signal::Signal;

/// Configuration for the high-confidence subset extraction.
#[derive(Clone, Copy, Debug)]
pub struct SubsetSelectDecoder {
    /// Signal weight bound `k` (as in the MN decoder).
    pub k: usize,
    /// Margin in units of the score interquartile scale; larger = more
    /// conservative subsets.
    pub margin: f64,
}

/// A high-confidence subset of one-entries.
#[derive(Clone, Debug)]
pub struct SubsetOutput {
    /// Selected entries (sorted). All are claimed to be one-entries.
    pub selected: Vec<usize>,
    /// The score cut-off actually used.
    pub cutoff: i64,
}

impl SubsetSelectDecoder {
    /// Decoder returning at most `k` entries with margin 1.0 (balanced).
    pub fn new(k: usize) -> Self {
        Self { k, margin: 1.0 }
    }

    /// Adjust the confidence margin.
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!(margin >= 0.0, "margin must be non-negative");
        self.margin = margin;
        self
    }

    /// Extract the confident subset from an MN decode.
    ///
    /// The cut-off sits `margin` gap-widths above the (n−k)-th largest
    /// score (the top of the zero-entry bulk under perfect separation):
    /// entries above it are kept, capped at `k`.
    pub fn extract(&self, out: &MnOutput) -> SubsetOutput {
        let n = out.scores.len();
        if n == 0 || self.k == 0 {
            return SubsetOutput { selected: Vec::new(), cutoff: i64::MAX };
        }
        let k = self.k.min(n);
        // Rank scores descending (small k ⇒ cheap partial sort).
        let ranked = pooled_par::topk::top_k_indices(&out.scores, (2 * k).min(n));
        let kth = out.scores[ranked[k - 1]];
        // Bulk top: best score *outside* the top-k.
        let bulk_top = if ranked.len() > k { out.scores[ranked[k]] } else { i64::MIN / 2 };
        let gap = (kth - bulk_top).max(0);
        let cutoff = bulk_top + ((self.margin * gap as f64).ceil() as i64).max(1);
        let mut selected: Vec<usize> =
            ranked.iter().take(k).copied().filter(|&i| out.scores[i] >= cutoff).collect();
        selected.sort_unstable();
        SubsetOutput { selected, cutoff }
    }

    /// Precision of a subset against the ground truth (1.0 when empty).
    pub fn precision(truth: &Signal, subset: &SubsetOutput) -> f64 {
        if subset.selected.is_empty() {
            return 1.0;
        }
        let correct = subset.selected.iter().filter(|&&i| truth.is_one(i)).count();
        correct as f64 / subset.selected.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mn::MnDecoder;
    use crate::query::execute_queries;
    use pooled_design::multigraph::RandomRegularDesign;
    use pooled_rng::SeedSequence;
    use pooled_theory::thresholds::m_mn_finite;

    fn run(n: usize, k: usize, m: usize, seed: u64) -> (Signal, MnOutput) {
        let seeds = SeedSequence::new(seed);
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let design = RandomRegularDesign::sample(n, m, &seeds.child("design", 0));
        let y = execute_queries(&design, &sigma);
        (sigma, MnDecoder::new(k).decode_design(&design, &y))
    }

    #[test]
    fn well_separated_scores_select_full_support() {
        let n = 1000;
        let k = 8;
        let m = (1.8 * m_mn_finite(n, 0.3)).ceil() as usize;
        let (sigma, out) = run(n, k, m, 1);
        let subset = SubsetSelectDecoder::new(k).extract(&out);
        assert_eq!(SubsetSelectDecoder::precision(&sigma, &subset), 1.0);
        assert_eq!(subset.selected, sigma.support());
    }

    #[test]
    fn subset_is_high_precision_below_full_recovery() {
        // At ~0.75·m_MN full recovery is unreliable, yet the confident
        // subset should stay precise on average.
        let n = 1000;
        let k = 8;
        let m = (0.75 * m_mn_finite(n, 0.3)).ceil() as usize;
        let mut prec_sum = 0.0;
        let mut count = 0;
        for seed in 0..8 {
            let (sigma, out) = run(n, k, m, 100 + seed);
            let subset = SubsetSelectDecoder::new(k).with_margin(1.5).extract(&out);
            if !subset.selected.is_empty() {
                prec_sum += SubsetSelectDecoder::precision(&sigma, &subset);
                count += 1;
            }
        }
        assert!(count > 0, "margin too conservative: all subsets empty");
        let avg = prec_sum / count as f64;
        assert!(avg > 0.9, "average subset precision {avg}");
    }

    #[test]
    fn never_selects_more_than_k() {
        let (_, out) = run(500, 6, 100, 2);
        let subset = SubsetSelectDecoder::new(6).extract(&out);
        assert!(subset.selected.len() <= 6);
    }

    #[test]
    fn k_zero_selects_nothing() {
        let (_, out) = run(100, 3, 30, 3);
        let subset = SubsetSelectDecoder::new(0).extract(&out);
        assert!(subset.selected.is_empty());
    }

    #[test]
    fn selected_entries_are_sorted_unique() {
        let (_, out) = run(800, 10, 250, 4);
        let subset = SubsetSelectDecoder::new(10).extract(&out);
        assert!(subset.selected.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_margin_rejected() {
        let _ = SubsetSelectDecoder::new(3).with_margin(-0.5);
    }
}
