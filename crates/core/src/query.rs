//! Parallel execution of additive queries.
//!
//! A query returns the number of one-entries in its pool **with
//! multiplicity**: if a one-entry was drawn twice, it contributes two
//! (paper §II). All `m` queries are independent, so execution is a parallel
//! map over queries — the software analogue of the paper's simultaneous
//! wet-lab measurements.
//!
//! Two kernels compute the same `y = Aᵀσ`:
//!
//! * [`execute_queries`] — query-parallel, `O(distinct(q))` per query; works
//!   for any design (including streaming).
//! * [`execute_queries_support`] — support-parallel over the CSR transpose,
//!   `O(Σ_{i∈supp} Δ*_i) = O(k·m·γ)` total, which wins decisively in the
//!   sparse regime `k ≪ n`.

use rayon::prelude::*;

use pooled_design::csr::CsrDesign;
use pooled_design::PoolingDesign;
use pooled_par::scatter::AtomicCounters;

use crate::signal::Signal;

/// Execute all queries in parallel: `y_q = Σ_i A_iq · σ_i`.
pub fn execute_queries<D: PoolingDesign + ?Sized>(design: &D, sigma: &Signal) -> Vec<u64> {
    let mut y = Vec::new();
    execute_queries_into(design, sigma, &mut y);
    y
}

/// Workspace variant of [`execute_queries`]: writes into `y` (resized to
/// `m`), reusing its capacity — allocation-free in replicate loops after
/// warm-up.
///
/// # Panics
/// Panics if the design and signal disagree on `n`.
pub fn execute_queries_into<D: PoolingDesign + ?Sized>(
    design: &D,
    sigma: &Signal,
    y: &mut Vec<u64>,
) {
    assert_eq!(design.n(), sigma.n(), "design and signal disagree on n");
    execute_queries_dense_into(design, sigma.dense(), y);
}

/// [`execute_queries_into`] over a raw dense 0/1 slice, for callers (the
/// serving engine's workers) that keep the signal in a reusable buffer
/// instead of a [`Signal`].
///
/// # Panics
/// Panics if `dense.len() != design.n()`.
pub fn execute_queries_dense_into<D: PoolingDesign + ?Sized>(
    design: &D,
    dense: &[u8],
    y: &mut Vec<u64>,
) {
    assert_eq!(design.n(), dense.len(), "design and dense signal disagree on n");
    y.clear();
    y.resize(design.m(), 0);
    y.par_iter_mut().enumerate().for_each(|(q, slot)| {
        let mut acc = 0u64;
        design.for_each_distinct(q, &mut |e, c| {
            acc += dense[e] as u64 * c as u64;
        });
        *slot = acc;
    });
}

/// Sparse execution path: iterate the support's query lists instead of every
/// pool. Requires materialized CSR storage.
pub fn execute_queries_support(design: &CsrDesign, sigma: &Signal) -> Vec<u64> {
    assert_eq!(design.n(), sigma.n(), "design and signal disagree on n");
    let y = AtomicCounters::new(design.m());
    sigma.support().par_iter().for_each(|&i| {
        let (qs, mults) = design.entry_row(i);
        for (&q, &c) in qs.iter().zip(mults) {
            y.add(q as usize, c as u64);
        }
    });
    y.into_vec()
}

/// Result of the one extra “count everything” query the paper suggests for
/// learning `k` when it is unknown (§I-C): a single pool containing every
/// entry once returns exactly `k`.
pub fn weight_revealing_query(sigma: &Signal) -> u64 {
    sigma.weight() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_design::csr::CsrDesign;
    use pooled_design::streaming::StreamingDesign;
    use pooled_rng::SeedSequence;

    #[test]
    fn zero_signal_zero_results() {
        let d = CsrDesign::sample(100, 20, 50, &SeedSequence::new(1));
        let sigma = Signal::from_support(100, vec![]);
        assert!(execute_queries(&d, &sigma).iter().all(|&y| y == 0));
    }

    #[test]
    fn all_ones_signal_returns_gamma() {
        let d = CsrDesign::sample(50, 10, 25, &SeedSequence::new(2));
        let sigma = Signal::from_dense(&[1u8; 50]);
        assert!(execute_queries(&d, &sigma).iter().all(|&y| y == 25));
    }

    #[test]
    fn dense_slice_path_matches_signal_path() {
        let d = CsrDesign::sample(200, 40, 100, &SeedSequence::new(9));
        let sigma = Signal::random(200, 7, &mut SeedSequence::new(9).child("s", 0).rng());
        let want = execute_queries(&d, &sigma);
        let mut y = Vec::new();
        execute_queries_dense_into(&d, sigma.dense(), &mut y);
        assert_eq!(y, want);
    }

    #[test]
    fn multiplicity_counts() {
        // Fig. 1 semantics: an entry drawn twice contributes twice.
        let d = CsrDesign::from_pools(7, &[vec![0, 4, 4, 5]]);
        let sigma = Signal::from_dense(&[1, 1, 0, 0, 1, 0, 0]);
        assert_eq!(execute_queries(&d, &sigma), vec![1 + 2]);
    }

    #[test]
    fn fig1_full_example() {
        // The paper's running example: queries produce (2, 2, 3, 1, 1).
        let sigma = Signal::from_dense(&[1, 1, 0, 0, 1, 0, 0]);
        let pools = vec![
            vec![0, 1, 3], // σ0+σ1 = 2
            vec![1, 1, 2], // σ1 twice = 2
            vec![0, 1, 4], // 3
            vec![4, 5],    // 1
            vec![4, 6],    // 1
        ];
        let d = CsrDesign::from_pools(7, &pools);
        assert_eq!(execute_queries(&d, &sigma), vec![2, 2, 3, 1, 1]);
    }

    #[test]
    fn support_path_matches_dense_path() {
        let seeds = SeedSequence::new(3);
        let d = CsrDesign::sample(400, 80, 200, &seeds);
        let sigma = Signal::random(400, 12, &mut seeds.child("sig", 0).rng());
        assert_eq!(execute_queries(&d, &sigma), execute_queries_support(&d, &sigma));
    }

    #[test]
    fn streaming_design_matches_csr() {
        let seeds = SeedSequence::new(4);
        let s = StreamingDesign::new(300, 40, 150, &seeds);
        let c = s.materialize();
        let sigma = Signal::random(300, 9, &mut seeds.child("sig", 0).rng());
        assert_eq!(execute_queries(&s, &sigma), execute_queries(&c, &sigma));
    }

    #[test]
    fn results_bounded_by_gamma() {
        let seeds = SeedSequence::new(5);
        let d = CsrDesign::sample(200, 50, 100, &seeds);
        let sigma = Signal::random(200, 150, &mut seeds.child("sig", 0).rng());
        for &y in &execute_queries(&d, &sigma) {
            assert!(y <= 100);
        }
    }

    #[test]
    fn weight_revealing_query_returns_k() {
        let sigma = Signal::from_support(100, vec![5, 17, 99]);
        assert_eq!(weight_revealing_query(&sigma), 3);
    }

    #[test]
    #[should_panic(expected = "disagree on n")]
    fn dimension_mismatch_panics() {
        let d = CsrDesign::sample(10, 5, 5, &SeedSequence::new(6));
        let sigma = Signal::from_support(11, vec![0]);
        let _ = execute_queries(&d, &sigma);
    }
}
