//! Branch-and-bound consistency search — Theorem 2 at larger `n`.
//!
//! [`crate::exhaustive`] enumerates all `C(n,k)` supports, which caps the
//! empirical uniqueness check (`Z_k(G,y)`) at toy sizes. This module counts
//! the same quantity by a depth-first search over *take/skip* decisions per
//! entry with two exact pruning rules on the query residuals
//! `r_q = y_q − Σ_{chosen} A_iq`:
//!
//! * **overflow** — taking an entry that pushes any `r_q` below zero is
//!   infeasible (all contributions are non-negative);
//! * **deficit** — if some query needs more than the entries not yet
//!   decided can still supply (`r_q > cap_q`, with `cap_q` the remaining
//!   multiplicity mass of query `q`), the whole subtree is infeasible.
//!
//! Both quantities update incrementally in `O(deg)` per decision, and a
//! good *decision order* (descending MN score) makes the truth's subtree
//! the first one explored, so above the Theorem 2 threshold the search
//! typically visits a few thousand nodes where enumeration would visit
//! `C(n,k) ≈ 10¹²`. A node budget keeps adversarial (far-below-threshold)
//! instances from running away; exhaustion returns `None` rather than a
//! wrong count.

use pooled_design::csr::CsrDesign;
use pooled_design::PoolingDesign;

use crate::signal::Signal;

/// Outcome of the branch-and-bound count.
#[derive(Clone, Debug)]
pub struct BnbOutcome {
    /// Number of weight-`k` vectors consistent with the observations
    /// (`Z_k(G, y)`, including the ground truth).
    pub consistent_count: u64,
    /// One consistent signal, if any (first found in decision order).
    pub witness: Option<Signal>,
    /// Search nodes visited (decision points).
    pub nodes_visited: u64,
}

impl BnbOutcome {
    /// Whether the observations identify the signal uniquely.
    pub fn is_unique(&self) -> bool {
        self.consistent_count == 1
    }
}

/// Count all weight-`k` supports consistent with `y`, visiting at most
/// `node_budget` decision nodes. Returns `None` if the budget is exhausted
/// (the count so far would be a lie).
///
/// `order`, when given, is the entry decision order (a permutation of
/// `0..n`); pass the MN ranking for fast convergence. Defaults to `0..n`.
///
/// # Panics
/// Panics if `y.len() != design.m()`, `k > n`, or `order` is not a
/// permutation of `0..n`.
pub fn branch_and_bound(
    design: &CsrDesign,
    y: &[u64],
    k: usize,
    order: Option<&[usize]>,
    node_budget: u64,
) -> Option<BnbOutcome> {
    let n = design.n();
    let m = design.m();
    assert_eq!(y.len(), m, "result vector length must equal m");
    assert!(k <= n, "k={k} exceeds n={n}");
    let order: Vec<usize> = match order {
        Some(o) => {
            assert_eq!(o.len(), n, "order must be a permutation of 0..n");
            let mut seen = vec![false; n];
            for &i in o {
                assert!(i < n && !seen[i], "order must be a permutation of 0..n");
                seen[i] = true;
            }
            o.to_vec()
        }
        None => (0..n).collect(),
    };
    // Residuals start at y; capacities at the total multiplicity mass.
    let r: Vec<i64> = y.iter().map(|&v| v as i64).collect();
    let mut cap: Vec<i64> = vec![0; m];
    for i in 0..n {
        let (qs, ms) = design.entry_row(i);
        for (&q, &c) in qs.iter().zip(ms) {
            cap[q as usize] += c as i64;
        }
    }
    // Deficit counter: #queries with r_q > cap_q.
    let deficit = r.iter().zip(&cap).filter(|&(&rq, &cq)| rq > cq).count();
    let sum_r: i64 = r.iter().sum();
    let mut state = SearchState {
        design,
        order,
        k,
        r,
        cap,
        deficit,
        sum_r,
        chosen: Vec::with_capacity(k),
        count: 0,
        witness: None,
        nodes: 0,
        budget: node_budget,
    };
    if state.dfs(0) {
        Some(BnbOutcome {
            consistent_count: state.count,
            witness: state.witness.map(|mut s| {
                s.sort_unstable();
                Signal::from_support(n, s)
            }),
            nodes_visited: state.nodes,
        })
    } else {
        None
    }
}

struct SearchState<'a> {
    design: &'a CsrDesign,
    order: Vec<usize>,
    k: usize,
    r: Vec<i64>,
    cap: Vec<i64>,
    deficit: usize,
    sum_r: i64,
    chosen: Vec<usize>,
    count: u64,
    witness: Option<Vec<usize>>,
    nodes: u64,
    budget: u64,
}

impl SearchState<'_> {
    /// Returns `false` when the node budget is exhausted.
    fn dfs(&mut self, pos: usize) -> bool {
        self.nodes += 1;
        if self.nodes > self.budget {
            return false;
        }
        if self.chosen.len() == self.k {
            if self.sum_r == 0 {
                self.count += 1;
                if self.witness.is_none() {
                    self.witness = Some(self.chosen.clone());
                }
            }
            return true;
        }
        if pos == self.order.len()
            || self.chosen.len() + (self.order.len() - pos) < self.k
            || self.deficit > 0
        {
            return true;
        }
        let entry = self.order[pos];
        // Branch 1: take `entry`, if no residual would go negative.
        let feasible = {
            let (qs, ms) = self.design.entry_row(entry);
            qs.iter().zip(ms).all(|(&q, &c)| self.r[q as usize] >= c as i64)
        };
        if feasible {
            self.apply_take(entry);
            self.pass(entry); // capacity moves past `entry` in this branch too
            let ok = self.dfs(pos + 1);
            self.unpass(entry);
            self.undo_take(entry);
            if !ok {
                return false;
            }
        }
        // Branch 2: skip `entry`.
        self.pass(entry);
        let ok = self.dfs(pos + 1);
        self.unpass(entry);
        ok
    }

    fn apply_take(&mut self, entry: usize) {
        self.chosen.push(entry);
        let (qs, ms) = self.design.entry_row(entry);
        for (&q, &c) in qs.iter().zip(ms) {
            let q = q as usize;
            let was_deficit = self.r[q] > self.cap[q];
            self.r[q] -= c as i64;
            self.sum_r -= c as i64;
            let is_deficit = self.r[q] > self.cap[q];
            self.deficit = self.deficit + is_deficit as usize - was_deficit as usize;
        }
    }

    fn undo_take(&mut self, entry: usize) {
        self.chosen.pop();
        let (qs, ms) = self.design.entry_row(entry);
        for (&q, &c) in qs.iter().zip(ms) {
            let q = q as usize;
            let was_deficit = self.r[q] > self.cap[q];
            self.r[q] += c as i64;
            self.sum_r += c as i64;
            let is_deficit = self.r[q] > self.cap[q];
            self.deficit = self.deficit + is_deficit as usize - was_deficit as usize;
        }
    }

    /// Move the decision frontier past `entry`: its mass leaves `cap`.
    fn pass(&mut self, entry: usize) {
        let (qs, ms) = self.design.entry_row(entry);
        for (&q, &c) in qs.iter().zip(ms) {
            let q = q as usize;
            let was_deficit = self.r[q] > self.cap[q];
            self.cap[q] -= c as i64;
            let is_deficit = self.r[q] > self.cap[q];
            self.deficit = self.deficit + is_deficit as usize - was_deficit as usize;
        }
    }

    fn unpass(&mut self, entry: usize) {
        let (qs, ms) = self.design.entry_row(entry);
        for (&q, &c) in qs.iter().zip(ms) {
            let q = q as usize;
            let was_deficit = self.r[q] > self.cap[q];
            self.cap[q] += c as i64;
            let is_deficit = self.r[q] > self.cap[q];
            self.deficit = self.deficit + is_deficit as usize - was_deficit as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_search;
    use crate::mn::MnDecoder;
    use crate::query::execute_queries;
    use pooled_rng::SeedSequence;

    fn setup(n: usize, k: usize, m: usize, seed: u64) -> (CsrDesign, Signal, Vec<u64>) {
        let seeds = SeedSequence::new(seed);
        let d = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let y = execute_queries(&d, &sigma);
        (d, sigma, y)
    }

    #[test]
    fn matches_exhaustive_count_on_small_instances() {
        // Across the uniqueness transition: m = 1 (many solutions) up to
        // m = 14 (unique).
        for seed in 0..5u64 {
            for m in [1usize, 3, 6, 10, 14] {
                let (d, _, y) = setup(14, 3, m, 100 + seed);
                let exact = exhaustive_search(&d, &y, 3);
                let bnb = branch_and_bound(&d, &y, 3, None, u64::MAX)
                    .expect("unbounded budget cannot exhaust");
                assert_eq!(bnb.consistent_count, exact.consistent_count, "seed {seed} m={m}");
                assert_eq!(bnb.is_unique(), exact.is_unique());
            }
        }
    }

    #[test]
    fn witness_is_consistent() {
        let (d, _, y) = setup(16, 4, 8, 7);
        let bnb = branch_and_bound(&d, &y, 4, None, u64::MAX).unwrap();
        if let Some(w) = &bnb.witness {
            assert_eq!(execute_queries(&d, w), y);
        } else {
            assert_eq!(bnb.consistent_count, 0);
        }
    }

    #[test]
    fn uniqueness_at_scale_beyond_enumeration() {
        // n = 60, k = 5: C(60,5) ≈ 5.5·10⁶ is enumerable, but with the MN
        // ordering the search should need *far* fewer nodes. n = 200, k = 6:
        // C(200,6) ≈ 8·10¹⁰ is far beyond the enumeration cap; above the IT
        // threshold bnb settles it in a modest node budget.
        let (d, sigma, y) = setup(200, 6, 120, 9);
        let mn = MnDecoder::new(6).decode(&d, &y);
        let mut order: Vec<usize> = (0..200).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(mn.scores[i]), i));
        let bnb = branch_and_bound(&d, &y, 6, Some(&order), 5_000_000)
            .expect("budget should suffice above the IT threshold");
        assert!(bnb.is_unique(), "Z_k = {}", bnb.consistent_count);
        assert_eq!(bnb.witness.as_ref().unwrap(), &sigma);
        assert!(bnb.nodes_visited < 5_000_000);
    }

    #[test]
    fn budget_exhaustion_returns_none_not_a_wrong_count() {
        // Far below the IT threshold the count explodes; a tiny budget
        // must refuse.
        let (d, _, y) = setup(30, 6, 2, 11);
        assert!(branch_and_bound(&d, &y, 6, None, 50).is_none());
    }

    #[test]
    fn k_zero_counts_exactly_the_zero_signal() {
        let (d, _, _) = setup(10, 0, 5, 12);
        let y = vec![0u64; 5];
        let bnb = branch_and_bound(&d, &y, 0, None, u64::MAX).unwrap();
        assert_eq!(bnb.consistent_count, 1);
        assert_eq!(bnb.witness.unwrap().weight(), 0);
        // Nonzero y with k = 0 is inconsistent.
        let y_bad = vec![1u64; 5];
        let bnb = branch_and_bound(&d, &y_bad, 0, None, u64::MAX).unwrap();
        assert_eq!(bnb.consistent_count, 0);
    }

    #[test]
    fn orderings_agree_and_both_crush_enumeration() {
        // Either decision order settles the instance in ≪ C(80,5) ≈ 2.4·10⁷
        // nodes; which one wins varies by instance (pruning depends on the
        // residual structure, not only on finding the witness early), so
        // only the count equality and the scale are invariants.
        let (d, _, y) = setup(80, 5, 60, 13);
        let mn = MnDecoder::new(5).decode(&d, &y);
        let mut order: Vec<usize> = (0..80).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(mn.scores[i]), i));
        let guided = branch_and_bound(&d, &y, 5, Some(&order), u64::MAX).unwrap();
        let blind = branch_and_bound(&d, &y, 5, None, u64::MAX).unwrap();
        assert_eq!(guided.consistent_count, blind.consistent_count);
        assert!(guided.nodes_visited < 100_000, "guided {}", guided.nodes_visited);
        assert!(blind.nodes_visited < 100_000, "blind {}", blind.nodes_visited);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_bad_order() {
        let (d, _, y) = setup(10, 2, 5, 14);
        let _ = branch_and_bound(&d, &y, 2, Some(&[0, 0, 1, 2, 3, 4, 5, 6, 7, 8]), 100);
    }
}
