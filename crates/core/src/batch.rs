//! Multi-job batched decode: Algorithm 1 for a batch of jobs that share
//! one pooling design.
//!
//! The serving engine's dominant warm-cache cost is re-streaming the CSR
//! index arrays once per job even when the queued jobs all decode against
//! the same cached design. [`BatchWorkspace`] owns the lane-major Ψ plane
//! and the **shared** Δ* for a batch of `B` lanes, and
//! [`MnDecoder::decode_batch_with`] accumulates all lanes in one design
//! traversal (`pooled_design::batched::scatter_distinct_batch`) before
//! finishing each lane through the ordinary selection path — so every
//! lane's scores, support and estimate are **bit-identical** to an
//! independent [`MnDecoder::decode_csr_with`] call on that lane's `y`
//! (exact `u64` sums; the property suite pins this for arbitrary `B`).
//!
//! Like [`crate::workspace::MnWorkspace`], the batch workspace is
//! allocation-free after warm-up at a stable `(lanes, n)` shape; the
//! engine's batched serving path and the batched Monte-Carlo trials in
//! `pooled_stats` both hold one per worker.

use pooled_design::batched::scatter_distinct_batch;
use pooled_design::csr::CsrDesign;
use pooled_design::PoolingDesign;

use crate::mn::MnDecoder;
use crate::workspace::MnWorkspace;

/// Scratch for a batched decode: `lanes` Ψ lanes, one shared Δ*, and the
/// single-lane finish scratch (scores/selection/estimate). Create once per
/// worker (or replicate loop) and reuse across batches.
#[derive(Default)]
pub struct BatchWorkspace {
    lanes: usize,
    n: usize,
    /// Lane-major Ψ plane: lane `b` is `psis[b*n..(b+1)*n]`.
    psis: Vec<u64>,
    /// Shared Δ* (`M·1` ignores the query results, so one plane serves
    /// every lane of the batch).
    dstar: Vec<u64>,
    /// Per-lane finish scratch, reused lane after lane.
    mn: MnWorkspace,
}

impl BatchWorkspace {
    /// Empty workspace; planes grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size the planes for a `lanes × n` batch. Reuses capacity; only the
    /// first call (or growth) allocates. Plane contents are unspecified
    /// until an accumulation kernel overwrites them.
    pub fn prepare(&mut self, lanes: usize, n: usize) {
        self.lanes = lanes;
        self.n = n;
        self.psis.resize(lanes * n, 0);
        self.dstar.resize(n, 0);
    }

    /// The lane count of the last [`Self::prepare`].
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Reserve capacity for a `lanes × n` batch without resizing: callers
    /// whose batch width jitters (the engine's design-affinity runs) can
    /// pre-size for their widest possible batch so a later
    /// [`Self::prepare`] at any width up to it never allocates.
    pub fn reserve(&mut self, lanes: usize, n: usize) {
        let psis_cap = lanes * n;
        if self.psis.capacity() < psis_cap {
            self.psis.reserve(psis_cap - self.psis.len());
        }
        if self.dstar.capacity() < n {
            self.dstar.reserve(n - self.dstar.len());
        }
    }

    /// Mutable `(psis, dstar)` planes for an external accumulation kernel
    /// (`pooled_design::batched`). Call [`Self::prepare`] first.
    pub fn sums_mut(&mut self) -> (&mut [u64], &mut [u64]) {
        (&mut self.psis[..self.lanes * self.n], &mut self.dstar[..self.n])
    }

    /// Lane `b`'s accumulated Ψ.
    ///
    /// # Panics
    /// Panics if `lane >= lanes`.
    pub fn lane_psi(&self, lane: usize) -> &[u64] {
        assert!(lane < self.lanes, "lane {lane} out of range");
        &self.psis[lane * self.n..(lane + 1) * self.n]
    }

    /// The batch's shared Δ*.
    pub fn dstar(&self) -> &[u64] {
        &self.dstar[..self.n]
    }

    /// Finish one lane: scores, selection and estimate from the lane's Ψ
    /// and the shared Δ*, through `decoder`'s ordinary selection path.
    /// Returns the finished single-lane workspace; read the lane's
    /// results (`scores()`, `support()`, `estimate_dense()`) from it
    /// before finishing the next lane — the scratch is reused.
    ///
    /// # Panics
    /// Panics if `lane >= lanes`.
    pub fn finish_lane(&mut self, decoder: &MnDecoder, lane: usize) -> &MnWorkspace {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let n = self.n;
        let psi = &self.psis[lane * n..(lane + 1) * n];
        decoder.finish_from_sums(psi, &self.dstar[..n], &mut self.mn);
        &self.mn
    }
}

impl std::fmt::Debug for BatchWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchWorkspace")
            .field("lanes", &self.lanes)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl MnDecoder {
    /// Batched Algorithm 1: decode `lanes` jobs sharing `design` from
    /// their stacked query results in **one** traversal of the design.
    ///
    /// `ys` is lane-major (`lanes × m`: lane `b` occupies
    /// `ys[b*m..(b+1)*m]`). After the shared accumulation, each lane is
    /// finished in order and handed to `visit(lane, workspace)`; the
    /// workspace's scores/support/estimate are valid for exactly that
    /// lane during the call (the scratch is reused lane after lane).
    ///
    /// Per lane this is bit-identical to [`MnDecoder::decode_csr_with`]
    /// on the lane's `y` alone, for any `lanes ≥ 1` — what changes is the
    /// memory traffic: the CSR index arrays are streamed once per batch
    /// instead of once per job.
    ///
    /// # Panics
    /// Panics if `ys.len() != lanes * design.m()`.
    pub fn decode_batch_with<F>(
        &self,
        design: &CsrDesign,
        ys: &[u64],
        lanes: usize,
        bw: &mut BatchWorkspace,
        mut visit: F,
    ) where
        F: FnMut(usize, &MnWorkspace),
    {
        assert_eq!(ys.len(), lanes * design.m(), "ys must be lane-major lanes*m");
        bw.prepare(lanes, design.n());
        let (psis, dstar) = bw.sums_mut();
        scatter_distinct_batch(design, ys, lanes, psis, dstar);
        for lane in 0..lanes {
            bw.finish_lane(self, lane);
            visit(lane, &bw.mn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::execute_queries;
    use crate::signal::Signal;
    use pooled_rng::SeedSequence;

    fn batch_instance(
        n: usize,
        k: usize,
        m: usize,
        lanes: usize,
        seed: u64,
    ) -> (CsrDesign, Vec<u64>) {
        let seeds = SeedSequence::new(seed);
        let design = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
        let mut ys = Vec::with_capacity(lanes * m);
        for b in 0..lanes {
            let sigma = Signal::random(n, k, &mut seeds.child("signal", b as u64).rng());
            ys.extend(execute_queries(&design, &sigma));
        }
        (design, ys)
    }

    #[test]
    fn batch_lanes_match_independent_decodes() {
        let (n, k, m, lanes) = (400usize, 6usize, 200usize, 5usize);
        let (design, ys) = batch_instance(n, k, m, lanes, 77);
        let decoder = MnDecoder::new(k);
        let mut bw = BatchWorkspace::new();
        let mut seen = 0;
        decoder.decode_batch_with(&design, &ys, lanes, &mut bw, |lane, ws| {
            let mut single = MnWorkspace::new();
            decoder.decode_csr_with(&design, &ys[lane * m..(lane + 1) * m], &mut single);
            assert_eq!(ws.scores(), single.scores(), "lane {lane}");
            assert_eq!(ws.support(), single.support(), "lane {lane}");
            assert_eq!(ws.estimate_dense(), single.estimate_dense(), "lane {lane}");
            seen += 1;
        });
        assert_eq!(seen, lanes);
    }

    #[test]
    fn workspace_reuse_across_batch_shapes() {
        let mut bw = BatchWorkspace::new();
        let decoder = MnDecoder::new(4);
        for (n, m, lanes, seed) in
            [(200usize, 80usize, 3usize, 1u64), (120, 50, 8, 2), (200, 80, 1, 3)]
        {
            let (design, ys) = batch_instance(n, 4, m, lanes, seed);
            let mut supports = Vec::new();
            decoder.decode_batch_with(&design, &ys, lanes, &mut bw, |_, ws| {
                supports.push(ws.support().to_vec());
            });
            assert_eq!(supports.len(), lanes);
            for (lane, support) in supports.iter().enumerate() {
                let mut single = MnWorkspace::new();
                decoder.decode_csr_with(&design, &ys[lane * m..(lane + 1) * m], &mut single);
                assert_eq!(support, single.support(), "n={n} lane={lane}");
            }
        }
    }

    #[test]
    fn lane_accessors_expose_the_sums() {
        let (design, ys) = batch_instance(150, 4, 60, 2, 9);
        let decoder = MnDecoder::new(4);
        let mut bw = BatchWorkspace::new();
        decoder.decode_batch_with(&design, &ys, 2, &mut bw, |_, _| {});
        let mut psi = vec![0u64; 150];
        let mut dstar = vec![0u64; 150];
        design.gather_distinct_into(&ys[60..120], &mut psi, &mut dstar);
        assert_eq!(bw.lane_psi(1), &psi[..]);
        assert_eq!(bw.dstar(), &dstar[..]);
    }

    #[test]
    #[should_panic(expected = "lane-major")]
    fn wrong_ys_length_panics() {
        let (design, _) = batch_instance(100, 3, 40, 1, 1);
        let mut bw = BatchWorkspace::new();
        MnDecoder::new(3).decode_batch_with(&design, &[0u64; 41], 1, &mut bw, |_, _| {});
    }
}
