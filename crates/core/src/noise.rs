//! Noisy query channels — the robustness extension.
//!
//! The paper assumes exact counts; real measurement pipelines (qPCR cycle
//! thresholds, neural-network pool classifiers) report perturbed values.
//! This module wraps query execution with configurable integer noise so the
//! `noise_robustness` experiment can chart how gracefully the MN decoder
//! degrades — its thresholding structure gives it natural slack of order
//! `(1−α)m/2` per score (Corollary 6).

use pooled_design::PoolingDesign;
use pooled_rng::discrete::Binomial;
use pooled_rng::SeedSequence;

use crate::query::execute_queries;
use crate::signal::Signal;

/// Integer noise applied independently to each query result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NoiseModel {
    /// No perturbation (the paper's setting).
    Exact,
    /// Symmetric binomial jitter `y + (Bin(2λ, 1/2) − λ)`, clamped at 0:
    /// integer-valued, mean 0, variance `λ/2`.
    SymmetricBinomial {
        /// Jitter half-width parameter λ.
        lambda: u32,
    },
    /// Each *individual draw* of a one-entry is missed independently with
    /// probability `p` (false-negative dilution, the DNA-pooling failure
    /// mode): `y' ~ Bin(y, 1−p)`.
    Dilution {
        /// Per-molecule drop-out probability.
        p: f64,
    },
}

/// Execute queries through a noise channel.
///
/// Noise for query `q` is drawn from `seeds.child("noise", q)`, so reruns
/// and thread counts cannot change the data.
pub fn execute_noisy<D: PoolingDesign + ?Sized>(
    design: &D,
    sigma: &Signal,
    model: NoiseModel,
    seeds: &SeedSequence,
) -> Vec<u64> {
    let clean = execute_queries(design, sigma);
    apply_noise(&clean, model, seeds)
}

/// Apply a noise model to already-computed exact results.
pub fn apply_noise(clean: &[u64], model: NoiseModel, seeds: &SeedSequence) -> Vec<u64> {
    match model {
        NoiseModel::Exact => clean.to_vec(),
        NoiseModel::SymmetricBinomial { lambda } => clean
            .iter()
            .enumerate()
            .map(|(q, &y)| {
                let mut rng = seeds.child("noise", q as u64).rng();
                let jitter = Binomial::new(2 * lambda as u64, 0.5).sample(&mut rng);
                (y + jitter).saturating_sub(lambda as u64)
            })
            .collect(),
        NoiseModel::Dilution { p } => {
            assert!((0.0..=1.0).contains(&p), "dilution probability {p} outside [0,1]");
            clean
                .iter()
                .enumerate()
                .map(|(q, &y)| {
                    let mut rng = seeds.child("noise", q as u64).rng();
                    Binomial::new(y, 1.0 - p).sample(&mut rng)
                })
                .collect()
        }
    }
}

/// Convenience wrapper bundling a noise model with its seed node.
#[derive(Clone, Copy, Debug)]
pub struct NoisyChannel {
    model: NoiseModel,
    seeds: SeedSequence,
}

impl NoisyChannel {
    /// Create a channel with the given model rooted at `seeds`.
    pub fn new(model: NoiseModel, seeds: SeedSequence) -> Self {
        Self { model, seeds }
    }

    /// The configured model.
    pub fn model(&self) -> NoiseModel {
        self.model
    }

    /// Execute queries through this channel.
    pub fn execute<D: PoolingDesign + ?Sized>(&self, design: &D, sigma: &Signal) -> Vec<u64> {
        execute_noisy(design, sigma, self.model, &self.seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mn::MnDecoder;
    use pooled_design::multigraph::RandomRegularDesign;
    use pooled_theory::thresholds::m_mn_finite;

    #[test]
    fn exact_model_is_identity() {
        let y = vec![3u64, 0, 7];
        assert_eq!(apply_noise(&y, NoiseModel::Exact, &SeedSequence::new(1)), y);
    }

    #[test]
    fn symmetric_noise_zero_lambda_is_identity() {
        let y = vec![5u64, 2, 9];
        let noisy =
            apply_noise(&y, NoiseModel::SymmetricBinomial { lambda: 0 }, &SeedSequence::new(2));
        assert_eq!(noisy, y);
    }

    #[test]
    fn symmetric_noise_is_mean_preserving() {
        let y = vec![100u64; 4000];
        let noisy =
            apply_noise(&y, NoiseModel::SymmetricBinomial { lambda: 8 }, &SeedSequence::new(3));
        let mean: f64 = noisy.iter().map(|&v| v as f64).sum::<f64>() / noisy.len() as f64;
        assert!((mean - 100.0).abs() < 0.3, "mean={mean}");
        assert!(noisy.iter().any(|&v| v != 100), "noise never fired");
    }

    #[test]
    fn dilution_reduces_counts() {
        let y = vec![50u64; 2000];
        let noisy = apply_noise(&y, NoiseModel::Dilution { p: 0.2 }, &SeedSequence::new(4));
        let mean: f64 = noisy.iter().map(|&v| v as f64).sum::<f64>() / noisy.len() as f64;
        assert!((mean - 40.0).abs() < 0.5, "mean={mean}");
        assert!(noisy.iter().all(|&v| v <= 50));
    }

    #[test]
    fn dilution_p_zero_is_identity_p_one_is_zero() {
        let y = vec![9u64, 4];
        let seeds = SeedSequence::new(5);
        assert_eq!(apply_noise(&y, NoiseModel::Dilution { p: 0.0 }, &seeds), y);
        assert_eq!(apply_noise(&y, NoiseModel::Dilution { p: 1.0 }, &seeds), vec![0, 0]);
    }

    #[test]
    fn noise_is_deterministic_in_seed() {
        let y = vec![20u64; 100];
        let model = NoiseModel::SymmetricBinomial { lambda: 4 };
        let a = apply_noise(&y, model, &SeedSequence::new(6));
        let b = apply_noise(&y, model, &SeedSequence::new(6));
        assert_eq!(a, b);
        let c = apply_noise(&y, model, &SeedSequence::new(7));
        assert_ne!(a, c);
    }

    #[test]
    fn mn_survives_mild_noise_with_margin() {
        // Generous queries + small λ: recovery should still succeed mostly.
        let n = 1000;
        let k = 8;
        let m = (2.0 * m_mn_finite(n, 0.3)).ceil() as usize;
        let mut successes = 0;
        for seed in 0..6 {
            let seeds = SeedSequence::new(900 + seed);
            let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
            let design = RandomRegularDesign::sample(n, m, &seeds.child("design", 0));
            let channel = NoisyChannel::new(
                NoiseModel::SymmetricBinomial { lambda: 2 },
                seeds.child("chan", 0),
            );
            let y = channel.execute(&design, &sigma);
            let out = MnDecoder::new(k).decode_design(&design, &y);
            if out.estimate == sigma {
                successes += 1;
            }
        }
        assert!(successes >= 4, "only {successes}/6 noisy recoveries");
    }
}
