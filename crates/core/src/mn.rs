//! The Maximum Neighborhood (MN) algorithm — Algorithm 1 of the paper.
//!
//! For each entry `i`, sum the results of all *distinct* queries containing
//! it (`Ψ_i`), count those queries (`Δ*_i`), and score the entry by
//! `Ψ_i − Δ*_i·k/2`. One-entries shift their own queries' results upward by
//! `Δ_i ≈ m/2`, so the `k` largest scores identify the support w.h.p. once
//! `m > (1+ε)·m_MN` (Theorem 1).
//!
//! Implementation notes:
//!
//! * Scores are computed in exact integer arithmetic as `2Ψ_i − k·Δ*_i`
//!   (the ×2 clears the `k/2` fraction), so ranking has no float ties.
//! * Two accumulation strategies ([`DecodeStrategy`]): query-parallel
//!   atomic *scatter* (works for any design) and entry-parallel *gather*
//!   over the CSR transpose (no atomics). Identical results.
//! * Two selection paths ([`SelectionMethod`]): the faithful full
//!   parallel sort of Algorithm 1 and an `O(n log k)` parallel top-k
//!   selection. Identical results (deterministic tie-break by index).

use pooled_design::csr::CsrDesign;
use pooled_design::fused::scatter_distinct_into;
use pooled_design::{PoolingDesign, RandomRegularDesign};
use pooled_par::sort::par_merge_sort_with;
use pooled_par::topk::top_k_into;

use crate::signal::Signal;
use crate::workspace::MnWorkspace;

/// How Ψ and Δ* are accumulated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DecodeStrategy {
    /// Pick gather when the design is materialized, scatter otherwise.
    #[default]
    Auto,
    /// Query-parallel atomic scatter-add (any design).
    Scatter,
    /// Entry-parallel gather over the CSR transpose (materialized only;
    /// falls back to scatter for streaming designs).
    Gather,
}

/// How the k best scores are selected (Lines 7–9 of Algorithm 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SelectionMethod {
    /// Parallel top-k selection, `O(n log k)` — the default.
    #[default]
    TopK,
    /// Faithful full parallel sort of all `n` scores, `O(n log n)`.
    FullSort,
}

/// Decoder configuration.
#[derive(Clone, Copy, Debug)]
pub struct MnDecoder {
    k: usize,
    strategy: DecodeStrategy,
    selection: SelectionMethod,
}

/// Decoder output: the estimate plus the per-entry evidence.
#[derive(Clone, Debug)]
pub struct MnOutput {
    /// The reconstructed signal `σ̃` (weight exactly `min(k, n)`).
    pub estimate: Signal,
    /// Integer scores `2Ψ_i − k·Δ*_i` for every entry.
    pub scores: Vec<i64>,
    /// Neighborhood sums `Ψ_i` (distinct queries only).
    pub psi: Vec<u64>,
    /// Distinct-query degrees `Δ*_i`.
    pub delta_star: Vec<u64>,
}

impl MnDecoder {
    /// Decoder for signals of known (or upper-bounded) weight `k`.
    pub fn new(k: usize) -> Self {
        Self { k, strategy: DecodeStrategy::Auto, selection: SelectionMethod::TopK }
    }

    /// Select the Ψ/Δ* accumulation strategy.
    pub fn with_strategy(mut self, strategy: DecodeStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Select the top-k selection method.
    pub fn with_selection(mut self, selection: SelectionMethod) -> Self {
        self.selection = selection;
        self
    }

    /// The target weight `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Run Algorithm 1 on the query results `y`.
    ///
    /// Thin wrapper over [`Self::decode_with`] on a fresh workspace; hot
    /// loops should hold an [`MnWorkspace`] and call `decode_with` directly
    /// so repeated decodes reuse memory.
    ///
    /// # Panics
    /// Panics if `y.len() != design.m()`.
    pub fn decode<D: PoolingDesign + ?Sized>(&self, design: &D, y: &[u64]) -> MnOutput {
        let mut ws = MnWorkspace::new();
        self.decode_with(design, y, &mut ws);
        ws_into_output(design.n(), ws)
    }

    /// Workspace decode: identical results to [`Self::decode`], but every
    /// buffer (Ψ, Δ*, scores, selection scratch, estimate) lives in `ws`
    /// and is reused across calls. With one rayon worker installed, this
    /// path performs zero heap allocations after warm-up.
    ///
    /// # Panics
    /// Panics if `y.len() != design.m()`.
    pub fn decode_with<D: PoolingDesign + ?Sized>(
        &self,
        design: &D,
        y: &[u64],
        ws: &mut MnWorkspace,
    ) {
        assert_eq!(y.len(), design.m(), "result vector length must equal m");
        let n = design.n();
        ws.prepare(n);
        let (psi, dstar, arena) = ws.sums_mut();
        scatter_distinct_into(design, y, psi, dstar, arena);
        self.finish_with(n, ws);
    }

    /// Gather-path decode for materialized designs (no atomics).
    pub fn decode_csr(&self, design: &CsrDesign, y: &[u64]) -> MnOutput {
        let mut ws = MnWorkspace::new();
        self.decode_csr_with(design, y, &mut ws);
        ws_into_output(design.n(), ws)
    }

    /// Workspace variant of [`Self::decode_csr`].
    ///
    /// # Panics
    /// Panics if `y.len() != design.m()`.
    pub fn decode_csr_with(&self, design: &CsrDesign, y: &[u64], ws: &mut MnWorkspace) {
        assert_eq!(y.len(), design.m(), "result vector length must equal m");
        let n = design.n();
        ws.prepare(n);
        design.gather_distinct_into(y, &mut ws.psi, &mut ws.dstar);
        self.finish_with(n, ws);
    }

    /// Strategy-dispatching decode for the wrapper design type.
    pub fn decode_design(&self, design: &RandomRegularDesign, y: &[u64]) -> MnOutput {
        let mut ws = MnWorkspace::new();
        self.decode_design_with(design, y, &mut ws);
        ws_into_output(design.n(), ws)
    }

    /// Workspace variant of [`Self::decode_design`].
    pub fn decode_design_with(
        &self,
        design: &RandomRegularDesign,
        y: &[u64],
        ws: &mut MnWorkspace,
    ) {
        match (self.strategy, design) {
            (DecodeStrategy::Scatter, _) => self.decode_with(design, y, ws),
            (DecodeStrategy::Gather | DecodeStrategy::Auto, RandomRegularDesign::Csr(c)) => {
                self.decode_csr_with(c, y, ws)
            }
            (_, d) => self.decode_with(d, y, ws),
        }
    }

    /// Complete Algorithm 1 (scores + selection + estimate) from the Ψ/Δ*
    /// sums already accumulated in `ws` — the entry point for external
    /// accumulation kernels like `pooled_design::fused::decode_sums_fused`.
    ///
    /// # Panics
    /// Panics if `ws` was not prepared for exactly this `n` (a stale
    /// workspace would otherwise decode over leftover prefix sums).
    pub fn finish_with(&self, n: usize, ws: &mut MnWorkspace) {
        assert_eq!(ws.n(), n, "workspace not prepared for this n");
        let k64 = self.k as i64;
        let scores = &mut ws.scores[..n];
        for ((score, &p), &d) in scores.iter_mut().zip(&ws.psi[..n]).zip(&ws.dstar[..n]) {
            *score = 2 * p as i64 - k64 * d as i64;
        }
        self.select_with(n, ws);
    }

    /// Complete Algorithm 1 from *external* Ψ/Δ* slices — the per-lane
    /// tail of the batched decode path ([`crate::batch`]), where a batch
    /// workspace owns the accumulation planes (Ψ lane-major, Δ* shared
    /// across lanes) and only the scores/selection/estimate scratch lives
    /// in `ws`. Identical results to copying the slices into the
    /// workspace and calling [`Self::finish_with`], without the copy.
    ///
    /// # Panics
    /// Panics if `psi.len() != dstar.len()`.
    pub fn finish_from_sums(&self, psi: &[u64], dstar: &[u64], ws: &mut MnWorkspace) {
        assert_eq!(psi.len(), dstar.len(), "psi/dstar length mismatch");
        let n = psi.len();
        ws.prepare(n);
        // Mirror the sums so the workspace accessors (`psi()`,
        // `delta_star()`) describe this decode, not a stale one.
        ws.psi[..n].copy_from_slice(psi);
        ws.dstar[..n].copy_from_slice(dstar);
        let k64 = self.k as i64;
        let scores = &mut ws.scores[..n];
        for ((score, &p), &d) in scores.iter_mut().zip(psi).zip(dstar) {
            *score = 2 * p as i64 - k64 * d as i64;
        }
        self.select_with(n, ws);
    }

    /// Lines 7–9 of Algorithm 1 over `ws.scores`: selection + estimate.
    fn select_with(&self, n: usize, ws: &mut MnWorkspace) {
        match self.selection {
            SelectionMethod::TopK => {
                top_k_into(&ws.scores[..n], self.k, &mut ws.support, &mut ws.topk);
            }
            SelectionMethod::FullSort => {
                ws.order.clear();
                ws.order.extend(ws.scores[..n].iter().enumerate().map(|(i, &s)| (s, i as u32)));
                par_merge_sort_with(&mut ws.order, &mut ws.order_scratch, |&(s, i)| {
                    (std::cmp::Reverse(s), i)
                });
                ws.order.truncate(self.k.min(n));
                ws.support.clear();
                ws.support.extend(ws.order.iter().map(|&(_, i)| i as usize));
            }
        }
        let estimate = &mut ws.estimate[..n];
        estimate.fill(0);
        for &i in &ws.support {
            estimate[i] = 1;
        }
    }
}

/// Move a decoded workspace's buffers into the allocating output type.
fn ws_into_output(n: usize, mut ws: MnWorkspace) -> MnOutput {
    MnOutput {
        estimate: ws.take_estimate_signal(n),
        scores: std::mem::take(&mut ws.scores),
        psi: std::mem::take(&mut ws.psi),
        delta_star: std::mem::take(&mut ws.dstar),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::execute_queries;
    use pooled_design::multigraph::StorageMode;
    use pooled_rng::SeedSequence;
    use pooled_theory::thresholds::{k_of, m_mn_finite};

    /// End-to-end helper: sample, execute, decode, compare.
    fn run(n: usize, k: usize, m: usize, seed: u64) -> (Signal, MnOutput) {
        let seeds = SeedSequence::new(seed);
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let design = RandomRegularDesign::sample(n, m, &seeds.child("design", 0));
        let y = execute_queries(&design, &sigma);
        let out = MnDecoder::new(k).decode_design(&design, &y);
        (sigma, out)
    }

    #[test]
    fn recovers_above_threshold_n1000_theta03() {
        // Theorem 1 + finite-size Remark: m ≈ 1.4·m_MN_finite ⇒ recovery.
        let n = 1000;
        let k = k_of(n, 0.3);
        let m = (1.4 * m_mn_finite(n, 0.3)).ceil() as usize;
        let mut successes = 0;
        for seed in 0..10 {
            let (sigma, out) = run(n, k, m, seed);
            if out.estimate == sigma {
                successes += 1;
            }
        }
        assert!(successes >= 8, "only {successes}/10 recoveries at m={m}");
    }

    #[test]
    fn fails_far_below_threshold() {
        // With a handful of queries, exact recovery of k=8 in n=1000 should
        // essentially never happen.
        let mut successes = 0;
        for seed in 0..10 {
            let (sigma, out) = run(1000, 8, 10, 100 + seed);
            if out.estimate == sigma {
                successes += 1;
            }
        }
        assert!(successes <= 1, "{successes} lucky recoveries at m=10");
    }

    #[test]
    fn estimate_weight_is_k() {
        let (_, out) = run(500, 7, 50, 1);
        assert_eq!(out.estimate.weight(), 7);
    }

    #[test]
    fn strategies_agree() {
        let seeds = SeedSequence::new(9);
        let n = 600;
        let sigma = Signal::random(n, 10, &mut seeds.child("signal", 0).rng());
        let design = RandomRegularDesign::sample_with(
            n,
            300,
            n / 2,
            &seeds.child("design", 0),
            StorageMode::Materialized,
        );
        let y = execute_queries(&design, &sigma);
        let dec = MnDecoder::new(10);
        let a = dec.with_strategy(DecodeStrategy::Scatter).decode_design(&design, &y);
        let b = dec.with_strategy(DecodeStrategy::Gather).decode_design(&design, &y);
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.estimate, b.estimate);
    }

    #[test]
    fn selection_methods_agree() {
        let seeds = SeedSequence::new(10);
        let n = 800;
        let sigma = Signal::random(n, 12, &mut seeds.child("signal", 0).rng());
        let design = RandomRegularDesign::sample(n, 200, &seeds.child("design", 0));
        let y = execute_queries(&design, &sigma);
        let a = MnDecoder::new(12).with_selection(SelectionMethod::TopK).decode_design(&design, &y);
        let b =
            MnDecoder::new(12).with_selection(SelectionMethod::FullSort).decode_design(&design, &y);
        assert_eq!(a.estimate, b.estimate);
    }

    #[test]
    fn streaming_and_csr_designs_decode_identically() {
        let seeds = SeedSequence::new(11);
        let n = 400;
        let sigma = Signal::random(n, 6, &mut seeds.child("signal", 0).rng());
        let csr = RandomRegularDesign::sample_with(
            n,
            150,
            n / 2,
            &seeds.child("design", 0),
            StorageMode::Materialized,
        );
        let stream = RandomRegularDesign::sample_with(
            n,
            150,
            n / 2,
            &seeds.child("design", 0),
            StorageMode::Streaming,
        );
        let y_c = execute_queries(&csr, &sigma);
        let y_s = execute_queries(&stream, &sigma);
        assert_eq!(y_c, y_s);
        let a = MnDecoder::new(6).decode_design(&csr, &y_c);
        let b = MnDecoder::new(6).decode_design(&stream, &y_s);
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn one_entry_scores_dominate_on_average() {
        let (sigma, out) = run(2000, 10, 400, 12);
        let avg = |pred: &dyn Fn(usize) -> bool| {
            let (mut sum, mut cnt) = (0i128, 0i128);
            for i in 0..2000 {
                if pred(i) {
                    sum += out.scores[i] as i128;
                    cnt += 1;
                }
            }
            sum as f64 / cnt as f64
        };
        let one_avg = avg(&|i| sigma.is_one(i));
        let zero_avg = avg(&|i| !sigma.is_one(i));
        assert!(
            one_avg > zero_avg + 100.0,
            "one-avg {one_avg} not separated from zero-avg {zero_avg}"
        );
    }

    #[test]
    fn psi_and_delta_star_consistency() {
        // Ψ_i ≤ Δ*_i · max(y); Δ*_i ≤ m.
        let seeds = SeedSequence::new(13);
        let n = 300;
        let sigma = Signal::random(n, 5, &mut seeds.child("signal", 0).rng());
        let design = RandomRegularDesign::sample(n, 80, &seeds.child("design", 0));
        let y = execute_queries(&design, &sigma);
        let out = MnDecoder::new(5).decode_design(&design, &y);
        let ymax = *y.iter().max().unwrap();
        for i in 0..n {
            assert!(out.delta_star[i] <= 80);
            assert!(out.psi[i] <= out.delta_star[i] * ymax);
        }
    }

    #[test]
    fn k_zero_returns_zero_signal() {
        let seeds = SeedSequence::new(14);
        let design = RandomRegularDesign::sample(50, 10, &seeds);
        let y = vec![0u64; 10];
        let out = MnDecoder::new(0).decode_design(&design, &y);
        assert_eq!(out.estimate.weight(), 0);
    }

    #[test]
    fn k_equal_n_returns_all_ones() {
        let seeds = SeedSequence::new(15);
        let design = RandomRegularDesign::sample(20, 10, &seeds);
        let sigma = Signal::from_dense(&[1u8; 20]);
        let y = execute_queries(&design, &sigma);
        let out = MnDecoder::new(20).decode_design(&design, &y);
        assert_eq!(out.estimate, sigma);
    }

    #[test]
    #[should_panic(expected = "length must equal m")]
    fn wrong_y_length_panics() {
        let seeds = SeedSequence::new(16);
        let design = RandomRegularDesign::sample(50, 10, &seeds);
        let _ = MnDecoder::new(3).decode_design(&design, &[0u64; 9]);
    }

    #[test]
    fn fig1_example_decodes() {
        // With enough tiny queries on n=7, MN finds σ = (1,1,0,0,1,0,0).
        let sigma = Signal::from_dense(&[1, 1, 0, 0, 1, 0, 0]);
        let seeds = SeedSequence::new(17);
        let design = RandomRegularDesign::sample_with(7, 60, 3, &seeds, StorageMode::Materialized);
        let y = execute_queries(&design, &sigma);
        let out = MnDecoder::new(3).decode_design(&design, &y);
        assert_eq!(out.estimate, sigma);
    }
}
