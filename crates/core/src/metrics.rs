//! Recovery metrics used by every figure of the evaluation.
//!
//! * Fig. 3 plots the **success rate**: the fraction of trials with
//!   `σ̃ = σ` exactly ([`exact_recovery`]).
//! * Fig. 4 plots the **overlap**: the fraction of one-entries correctly
//!   classified, `|supp(σ̃) ∩ supp(σ)| / k` ([`overlap_fraction`]).

use crate::signal::Signal;

/// Exact recovery indicator: `σ̃ = σ`.
pub fn exact_recovery(truth: &Signal, estimate: &Signal) -> bool {
    truth == estimate
}

/// The paper's overlap metric: fraction of true one-entries present in the
/// estimate. Returns 1.0 for the degenerate `k = 0` case (nothing to find).
pub fn overlap_fraction(truth: &Signal, estimate: &Signal) -> f64 {
    if truth.weight() == 0 {
        return 1.0;
    }
    truth.overlap(estimate) as f64 / truth.weight() as f64
}

/// Dense-slice variant of [`exact_recovery`] for workspace estimates
/// (`MnWorkspace::estimate_dense`), avoiding a `Signal` round trip.
pub fn exact_recovery_dense(truth: &Signal, estimate_dense: &[u8]) -> bool {
    truth.dense() == estimate_dense
}

/// Dense-slice variant of [`overlap_fraction`]; same `k = 0 ⇒ 1.0`
/// convention.
pub fn overlap_fraction_dense(truth: &Signal, estimate_dense: &[u8]) -> f64 {
    if truth.weight() == 0 {
        return 1.0;
    }
    let hits = truth.support().iter().filter(|&&i| estimate_dense[i] == 1).count();
    hits as f64 / truth.weight() as f64
}

/// Confusion counts of a reconstruction, for the extension experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Confusion {
    /// One-entries correctly recovered.
    pub true_positives: usize,
    /// Zero-entries wrongly reported as ones.
    pub false_positives: usize,
    /// One-entries missed.
    pub false_negatives: usize,
    /// Zero-entries correctly left out.
    pub true_negatives: usize,
}

impl Confusion {
    /// Compare an estimate against the ground truth.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn compare(truth: &Signal, estimate: &Signal) -> Self {
        assert_eq!(truth.n(), estimate.n(), "signals must have equal length");
        let tp = truth.overlap(estimate);
        let fp = estimate.weight() - tp;
        let fne = truth.weight() - tp;
        let tn = truth.n() - tp - fp - fne;
        Self { true_positives: tp, false_positives: fp, false_negatives: fne, true_negatives: tn }
    }

    /// Precision `tp / (tp + fp)`; 1.0 when nothing was reported.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 1.0 when there was nothing to find.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_recovery_detects_equality() {
        let a = Signal::from_support(10, vec![1, 2]);
        let b = Signal::from_support(10, vec![1, 2]);
        let c = Signal::from_support(10, vec![1, 3]);
        assert!(exact_recovery(&a, &b));
        assert!(!exact_recovery(&a, &c));
    }

    #[test]
    fn overlap_fraction_examples() {
        let truth = Signal::from_support(10, vec![0, 1, 2, 3]);
        let half = Signal::from_support(10, vec![0, 1, 8, 9]);
        assert_eq!(overlap_fraction(&truth, &half), 0.5);
        assert_eq!(overlap_fraction(&truth, &truth), 1.0);
    }

    #[test]
    fn overlap_empty_truth_is_one() {
        let truth = Signal::from_support(5, vec![]);
        let est = Signal::from_support(5, vec![2]);
        assert_eq!(overlap_fraction(&truth, &est), 1.0);
    }

    #[test]
    fn confusion_counts_add_up() {
        let truth = Signal::from_support(8, vec![0, 1, 2]);
        let est = Signal::from_support(8, vec![1, 2, 3]);
        let c = Confusion::compare(&truth, &est);
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.false_negatives, 1);
        assert_eq!(c.true_negatives, 4);
        assert_eq!(c.true_positives + c.false_positives + c.false_negatives + c.true_negatives, 8);
    }

    #[test]
    fn precision_recall_values() {
        let truth = Signal::from_support(8, vec![0, 1, 2, 3]);
        let est = Signal::from_support(8, vec![0, 1]);
        let c = Confusion::compare(&truth, &est);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 0.5);
    }

    #[test]
    fn empty_estimate_has_full_precision() {
        let truth = Signal::from_support(4, vec![0]);
        let est = Signal::from_support(4, vec![]);
        let c = Confusion::compare(&truth, &est);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 0.0);
    }
}
