//! The information-theoretic decoder of Theorem 2.
//!
//! Theorem 2 is a statement about *uniqueness*: above `m_IT`, the ground
//! truth is w.h.p. the only weight-`k` vector consistent with `(G, y)`, so
//! an exhaustive search reconstructs it (computational cost notwithstanding).
//! This module implements that search for small instances — it enumerates
//! all `C(n,k)` supports in parallel and counts the consistent ones, which
//! is exactly the quantity `Z_k(G, y)` the proof bounds.

use rayon::prelude::*;

use pooled_design::csr::CsrDesign;
use pooled_design::PoolingDesign;

use crate::signal::Signal;

/// Outcome of the exhaustive consistency search.
#[derive(Clone, Debug)]
pub struct ExhaustiveOutcome {
    /// Number of weight-`k` vectors consistent with the observations
    /// (`Z_k(G, y)` in the paper; includes the ground truth).
    pub consistent_count: u64,
    /// One consistent signal, if any (the lexicographically first found).
    pub witness: Option<Signal>,
}

impl ExhaustiveOutcome {
    /// Whether the observations identify the signal uniquely.
    pub fn is_unique(&self) -> bool {
        self.consistent_count == 1
    }
}

/// Practical safety cap: `C(n,k)` above this refuses to run.
const ENUMERATION_CAP: f64 = 5e8;

/// Enumerate all weight-`k` signals and count those consistent with `y`.
///
/// # Panics
/// Panics if `y.len() != design.m()`, if `k > n`, or if `C(n,k)` exceeds the
/// enumeration cap (~5·10⁸ candidates).
pub fn exhaustive_search(design: &CsrDesign, y: &[u64], k: usize) -> ExhaustiveOutcome {
    let n = design.n();
    assert_eq!(y.len(), design.m(), "result vector length must equal m");
    assert!(k <= n, "k={k} exceeds n={n}");
    let log_count = pooled_theory::special::ln_choose(n as u64, k as u64);
    assert!(log_count < ENUMERATION_CAP.ln(), "C({n},{k}) too large for exhaustive enumeration");
    if k == 0 {
        let consistent = y.iter().all(|&v| v == 0);
        return ExhaustiveOutcome {
            consistent_count: consistent as u64,
            witness: consistent.then(|| Signal::from_support(n, vec![])),
        };
    }
    // Parallelize over the first support element; enumerate the rest
    // recursively. Each task owns a scratch support vector.
    let results: Vec<(u64, Option<Vec<usize>>)> = (0..=n - k)
        .into_par_iter()
        .map(|first| {
            let mut support = Vec::with_capacity(k);
            support.push(first);
            let mut count = 0u64;
            let mut witness: Option<Vec<usize>> = None;
            enumerate_rest(design, y, k, n, &mut support, &mut count, &mut witness);
            (count, witness)
        })
        .collect();
    let consistent_count: u64 = results.iter().map(|(c, _)| c).sum();
    let witness =
        results.into_iter().filter_map(|(_, w)| w).next().map(|s| Signal::from_support(n, s));
    ExhaustiveOutcome { consistent_count, witness }
}

fn enumerate_rest(
    design: &CsrDesign,
    y: &[u64],
    k: usize,
    n: usize,
    support: &mut Vec<usize>,
    count: &mut u64,
    witness: &mut Option<Vec<usize>>,
) {
    if support.len() == k {
        if is_consistent(design, y, support) {
            *count += 1;
            if witness.is_none() {
                *witness = Some(support.clone());
            }
        }
        return;
    }
    let last = *support.last().unwrap();
    let remaining = k - support.len();
    for next in (last + 1)..=(n - remaining) {
        support.push(next);
        enumerate_rest(design, y, k, n, support, count, witness);
        support.pop();
    }
}

/// Check whether the support reproduces every query result.
fn is_consistent(design: &CsrDesign, y: &[u64], support: &[usize]) -> bool {
    // Sum each member's multiplicity column; early-out is impractical
    // per-query without a transpose walk, so accumulate per query.
    let mut acc = vec![0u64; design.m()];
    for &i in support {
        let (qs, mults) = design.entry_row(i);
        for (&q, &c) in qs.iter().zip(mults) {
            acc[q as usize] += c as u64;
            if acc[q as usize] > y[q as usize] {
                return false;
            }
        }
    }
    acc == y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::execute_queries;
    use pooled_rng::SeedSequence;

    fn setup(n: usize, k: usize, m: usize, seed: u64) -> (CsrDesign, Signal, Vec<u64>) {
        let seeds = SeedSequence::new(seed);
        let d = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let y = execute_queries(&d, &sigma);
        (d, sigma, y)
    }

    #[test]
    fn ground_truth_is_always_counted() {
        let (d, sigma, y) = setup(16, 3, 12, 1);
        let out = exhaustive_search(&d, &y, 3);
        assert!(out.consistent_count >= 1);
        if out.is_unique() {
            assert_eq!(out.witness.unwrap(), sigma);
        }
    }

    #[test]
    fn many_queries_force_uniqueness() {
        // m = 40 queries on n = 16 is far above the IT threshold.
        let (d, sigma, y) = setup(16, 3, 40, 2);
        let out = exhaustive_search(&d, &y, 3);
        assert!(out.is_unique(), "count = {}", out.consistent_count);
        assert_eq!(out.witness.unwrap(), sigma);
    }

    #[test]
    fn single_query_leaves_ambiguity() {
        // One query cannot identify a weight-2 signal in n = 12.
        let (d, _, y) = setup(12, 2, 1, 3);
        let out = exhaustive_search(&d, &y, 2);
        assert!(out.consistent_count > 1, "count = {}", out.consistent_count);
    }

    #[test]
    fn k_zero_cases() {
        let seeds = SeedSequence::new(4);
        let d = CsrDesign::sample(8, 5, 4, &seeds);
        let zero_y = vec![0u64; 5];
        let out = exhaustive_search(&d, &zero_y, 0);
        assert_eq!(out.consistent_count, 1);
        assert_eq!(out.witness.unwrap().weight(), 0);
        // Inconsistent y for k = 0:
        let bad_y = vec![1u64, 0, 0, 0, 0];
        assert_eq!(exhaustive_search(&d, &bad_y, 0).consistent_count, 0);
    }

    #[test]
    fn wrong_weight_hypothesis_finds_nothing_or_impostors() {
        // Searching k+1 with y from weight k: counts impostors only; the
        // truth itself is not in the candidate set.
        let (d, sigma, y) = setup(14, 2, 30, 5);
        let out = exhaustive_search(&d, &y, 3);
        if let Some(w) = &out.witness {
            assert_ne!(w, &sigma);
        }
    }

    #[test]
    fn consistency_check_respects_multiplicity() {
        // Query (1,1,2): y=2 under {1}, y=1 under {2} — not interchangeable.
        let d = CsrDesign::from_pools(4, &[vec![1, 1, 2]]);
        let s1 = Signal::from_support(4, vec![1]);
        let y1 = execute_queries(&d, &s1);
        assert_eq!(y1, vec![2]);
        let out = exhaustive_search(&d, &y1, 1);
        // {1} gives 2 ✓; {2} gives 1 ✗; {0},{3} give 0 ✗.
        assert_eq!(out.consistent_count, 1);
        assert_eq!(out.witness.unwrap(), s1);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn enumeration_cap_guards() {
        let seeds = SeedSequence::new(6);
        let d = CsrDesign::sample(100, 2, 50, &seeds);
        let y = vec![0u64; 2];
        let _ = exhaustive_search(&d, &y, 50);
    }
}
