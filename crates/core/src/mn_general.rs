//! The MN algorithm for arbitrary pool sizes and heterogeneous designs.
//!
//! [`crate::mn::MnDecoder`] hard-codes the paper's convention `Γ = n/2`,
//! where the centering term `Δ*_i·k/2` turns into the integer score
//! `2Ψ_i − k·Δ*_i`. For the pool-size ablation (`gamma_sweep`) and the
//! alternative design families (Bernoulli pools have *random* sizes) the
//! correct centering is per query: the expected contribution of query `q`
//! to `Ψ_i` under the null is `|a_q|·k/n`, so the score becomes
//!
//! ```text
//! score_i = n·Ψ_i − k·Σ_{q ∈ ∂*x_i} |a_q|        (exact, in i128)
//! ```
//!
//! where `|a_q|` is the number of draws of query `q` (with multiplicity).
//! For the regular design (`|a_q| = Γ` constant) this is `n·Ψ_i − kΓ·Δ*_i =
//! (n/2)·(2Ψ_i − k·Δ*_i)` at `Γ = n/2` — a positive multiple of the classic
//! score, so the two decoders rank identically (property-tested).

use pooled_design::fused::scatter_distinct_into;
use pooled_design::PoolingDesign;
use pooled_par::sort::par_merge_sort_with;

use crate::signal::Signal;
use crate::workspace::MnWorkspace;

/// MN decoding for designs with arbitrary (even per-query) pool sizes.
#[derive(Clone, Copy, Debug)]
pub struct GeneralMnDecoder {
    k: usize,
}

/// Output of the Γ-general decoder.
#[derive(Clone, Debug)]
pub struct GeneralMnOutput {
    /// The reconstructed signal (weight exactly `min(k, n)`).
    pub estimate: Signal,
    /// Exact integer scores `n·Ψ_i − k·Σ_{q∈∂*x_i}|a_q|`.
    pub scores: Vec<i128>,
    /// Neighborhood sums `Ψ_i` (distinct queries only).
    pub psi: Vec<u64>,
    /// Distinct-query degrees `Δ*_i`.
    pub delta_star: Vec<u64>,
}

impl GeneralMnDecoder {
    /// Decoder for signals of known (or upper-bounded) weight `k`.
    pub fn new(k: usize) -> Self {
        Self { k }
    }

    /// The target weight `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Run the Γ-general MN algorithm on the query results `y`.
    ///
    /// Thin wrapper over [`Self::decode_with`] on a fresh workspace.
    ///
    /// # Panics
    /// Panics if `y.len() != design.m()`.
    pub fn decode<D: PoolingDesign + ?Sized>(&self, design: &D, y: &[u64]) -> GeneralMnOutput {
        let mut ws = MnWorkspace::new();
        self.decode_with(design, y, &mut ws);
        let n = design.n();
        GeneralMnOutput {
            estimate: ws.take_estimate_signal(n),
            scores: std::mem::take(&mut ws.scores_wide),
            psi: std::mem::take(&mut ws.psi),
            delta_star: std::mem::take(&mut ws.dstar),
        }
    }

    /// Workspace decode: identical results to [`Self::decode`] with all
    /// buffers (including the exact `i128` scores, read back via
    /// [`MnWorkspace::scores_wide`]) reused across calls.
    ///
    /// # Panics
    /// Panics if `y.len() != design.m()`.
    pub fn decode_with<D: PoolingDesign + ?Sized>(
        &self,
        design: &D,
        y: &[u64],
        ws: &mut MnWorkspace,
    ) {
        assert_eq!(y.len(), design.m(), "result vector length must equal m");
        let (n, m) = (design.n(), design.m());
        ws.prepare(n);
        {
            let (psi, dstar, arena) = ws.sums_mut();
            scatter_distinct_into(design, y, psi, dstar, arena);
        }
        // Per-entry sum of neighbor pool sizes: reuse the Ψ kernel with the
        // pool sizes as the query weights (Δ* recomputed into scratch).
        ws.pool_lens.clear();
        ws.pool_lens.extend((0..m).map(|q| design.pool_len(q) as u64));
        ws.gamma_sums.clear();
        ws.gamma_sums.resize(n, 0);
        ws.dstar_scratch.clear();
        ws.dstar_scratch.resize(n, 0);
        scatter_distinct_into(
            design,
            &ws.pool_lens,
            &mut ws.gamma_sums,
            &mut ws.dstar_scratch,
            &mut ws.arena,
        );
        let (n_i, k_i) = (n as i128, self.k as i128);
        ws.scores_wide.clear();
        ws.scores_wide.extend(
            ws.psi[..n]
                .iter()
                .zip(&ws.gamma_sums[..n])
                .map(|(&p, &g)| n_i * p as i128 - k_i * g as i128),
        );
        // Rank by (score desc, index asc); the general decoder keeps the
        // faithful full sort (scores are i128, outside the top-k kernel's
        // i64 domain).
        ws.order_wide.clear();
        ws.order_wide.extend(ws.scores_wide.iter().enumerate().map(|(i, &s)| (s, i as u32)));
        par_merge_sort_with(&mut ws.order_wide, &mut ws.order_wide_scratch, |&(s, i)| {
            (std::cmp::Reverse(s), i)
        });
        ws.order_wide.truncate(self.k.min(n));
        ws.support.clear();
        ws.support.extend(ws.order_wide.iter().map(|&(_, i)| i as usize));
        let estimate = &mut ws.estimate[..n];
        estimate.fill(0);
        for &i in &ws.support {
            estimate[i] = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mn::MnDecoder;
    use crate::query::execute_queries;
    use pooled_design::factory::DesignKind;
    use pooled_design::CsrDesign;
    use pooled_rng::SeedSequence;

    #[test]
    fn matches_classic_decoder_on_regular_design() {
        let seeds = SeedSequence::new(21);
        let n = 800;
        let sigma = Signal::random(n, 9, &mut seeds.child("signal", 0).rng());
        let design = CsrDesign::sample(n, 250, n / 2, &seeds.child("design", 0));
        let y = execute_queries(&design, &sigma);
        let classic = MnDecoder::new(9).decode(&design, &y);
        let general = GeneralMnDecoder::new(9).decode(&design, &y);
        assert_eq!(classic.estimate, general.estimate);
        // Scores are positive multiples of each other: identical ranking.
        let mut classic_rank: Vec<usize> = (0..n).collect();
        classic_rank.sort_by_key(|&i| (std::cmp::Reverse(classic.scores[i]), i));
        let mut general_rank: Vec<usize> = (0..n).collect();
        general_rank.sort_by_key(|&i| (std::cmp::Reverse(general.scores[i]), i));
        assert_eq!(classic_rank, general_rank);
    }

    #[test]
    fn recovers_with_large_pools() {
        // Pool fraction c = 1 (Γ = n, with replacement): the classic scorer
        // would mis-center, the general scorer handles it. m = 400 is
        // comfortably above the corrected d(1,θ)-threshold (≈ 235 at
        // n = 1000, θ = 0.3).
        let seeds = SeedSequence::new(22);
        let (n, k) = (1000, 8);
        let m = 400;
        let mut successes = 0;
        for trial in 0..10u64 {
            let s = seeds.child("trial", trial);
            let sigma = Signal::random(n, k, &mut s.child("signal", 0).rng());
            let design = CsrDesign::sample(n, m, n, &s.child("design", 0));
            let y = execute_queries(&design, &sigma);
            let out = GeneralMnDecoder::new(k).decode(&design, &y);
            if out.estimate == sigma {
                successes += 1;
            }
        }
        assert!(successes >= 8, "only {successes}/10 at Γ=n, m={m}");
    }

    #[test]
    fn smaller_pools_beat_full_pools_at_fixed_m() {
        // theory::gamma_opt's shift-corrected constant d_cor(c,θ) is
        // increasing in c, so at a fixed sub-threshold query budget the
        // paper's Γ = n/2 should beat Γ = n, and Γ = n/8 should not lose to
        // Γ = n/2 (±2 trials of sampling noise on 12 trials).
        let seeds = SeedSequence::new(27);
        let (n, k, m) = (1000, 8, 260);
        let (mut eighth, mut half, mut full) = (0i32, 0i32, 0i32);
        for trial in 0..12u64 {
            let s = seeds.child("trial", trial);
            let sigma = Signal::random(n, k, &mut s.child("signal", 0).rng());
            let ok = |gamma: usize| {
                let d = CsrDesign::sample(n, m, gamma, &s.child("design", gamma as u64));
                let y = execute_queries(&d, &sigma);
                (GeneralMnDecoder::new(k).decode(&d, &y).estimate == sigma) as i32
            };
            eighth += ok(n / 8);
            half += ok(n / 2);
            full += ok(n);
        }
        assert!(half >= full, "Γ=n/2: {half}/12 vs Γ=n: {full}/12");
        assert!(eighth + 2 >= half, "Γ=n/8: {eighth}/12 vs Γ=n/2: {half}/12");
    }

    #[test]
    fn recovers_on_every_design_family() {
        let seeds = SeedSequence::new(23);
        let (n, k, m) = (1000, 8, 420);
        for kind in DesignKind::ALL {
            let mut successes = 0;
            for trial in 0..6u64 {
                let s = seeds.child(kind.name(), trial);
                let sigma = Signal::random(n, k, &mut s.child("signal", 0).rng());
                let design = kind.sample(n, m, 0.5, &s.child("design", 0));
                let y = execute_queries(&design, &sigma);
                let out = GeneralMnDecoder::new(k).decode(&design, &y);
                if out.estimate == sigma {
                    successes += 1;
                }
            }
            assert!(successes >= 5, "{}: {successes}/6 recoveries", kind.name());
        }
    }

    #[test]
    fn estimate_weight_is_min_k_n() {
        let seeds = SeedSequence::new(24);
        let design = CsrDesign::sample(30, 20, 15, &seeds);
        let sigma = Signal::random(30, 5, &mut seeds.child("signal", 0).rng());
        let y = execute_queries(&design, &sigma);
        assert_eq!(GeneralMnDecoder::new(5).decode(&design, &y).estimate.weight(), 5);
        assert_eq!(GeneralMnDecoder::new(40).decode(&design, &y).estimate.weight(), 30);
    }

    #[test]
    fn streaming_design_decodes_identically_to_csr() {
        use pooled_design::StreamingDesign;
        let seeds = SeedSequence::new(28);
        let n = 400;
        let sigma = Signal::random(n, 6, &mut seeds.child("signal", 0).rng());
        let stream = StreamingDesign::new(n, 120, n / 2, &seeds.child("design", 0));
        let csr = stream.materialize();
        let y = execute_queries(&csr, &sigma);
        let a = GeneralMnDecoder::new(6).decode(&stream, &y);
        let b = GeneralMnDecoder::new(6).decode(&csr, &y);
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    #[should_panic(expected = "length must equal m")]
    fn wrong_y_length_panics() {
        let seeds = SeedSequence::new(25);
        let design = CsrDesign::sample(20, 5, 10, &seeds);
        let _ = GeneralMnDecoder::new(2).decode(&design, &[0u64; 4]);
    }

    #[test]
    fn zero_scores_for_zero_results() {
        // All-zero y with nonzero pools: score = −k·Σ|a_q| ≤ 0, Ψ = 0.
        let seeds = SeedSequence::new(26);
        let design = CsrDesign::sample(40, 8, 20, &seeds);
        let y = vec![0u64; 8];
        let out = GeneralMnDecoder::new(3).decode(&design, &y);
        assert!(out.psi.iter().all(|&p| p == 0));
        assert!(out.scores.iter().all(|&s| s <= 0));
    }
}
