//! Reusable decode workspace: every buffer Algorithm 1 (and its Γ-general
//! variant and the refinement stage) needs, owned in one place so repeated
//! decodes allocate nothing after the first.
//!
//! Monte-Carlo sweeps decode thousands of times with identical shapes; the
//! seed implementation allocated fresh `psi`/`dstar`/`scores`/estimate
//! vectors (plus top-k scratch) on every call. [`MnWorkspace`] keeps them
//! all — including the fused-kernel arena from `pooled_design` — across
//! replicates. With a single worker installed the decode path through
//! [`crate::mn::MnDecoder::decode_with`] performs **zero** heap allocations
//! after warm-up (pinned by the workspace's allocation-counting test).
//!
//! The one-shot APIs (`decode`, `refine`, …) are thin wrappers that run a
//! fresh workspace and move its buffers into the output — same results,
//! same allocation profile as before.

use pooled_design::fused::FusedArena;
use pooled_par::topk::TopKScratch;

use crate::signal::Signal;

/// Scratch and result buffers for the decode pipeline. Create once per
/// worker (or replicate loop) and pass to the `*_with` entry points.
#[derive(Default)]
pub struct MnWorkspace {
    /// Current problem size (set by [`Self::prepare`]).
    n: usize,
    pub(crate) psi: Vec<u64>,
    pub(crate) dstar: Vec<u64>,
    pub(crate) scores: Vec<i64>,
    pub(crate) support: Vec<usize>,
    pub(crate) estimate: Vec<u8>,
    /// Full-sort selection scratch (pairs plus merge-sort ping-pong
    /// buffer, so repeated full sorts stay allocation-free).
    pub(crate) order: Vec<(i64, u32)>,
    pub(crate) order_scratch: Vec<(i64, u32)>,
    /// Γ-general decoder: exact wide scores and their sort scratch.
    pub(crate) scores_wide: Vec<i128>,
    pub(crate) order_wide: Vec<(i128, u32)>,
    pub(crate) order_wide_scratch: Vec<(i128, u32)>,
    pub(crate) pool_lens: Vec<u64>,
    pub(crate) gamma_sums: Vec<u64>,
    /// Secondary Δ* buffer for the Γ-sum accumulation (values discarded).
    pub(crate) dstar_scratch: Vec<u64>,
    /// Refinement-stage buffers.
    pub(crate) y_hat: Vec<u64>,
    pub(crate) residual: Vec<i64>,
    pub(crate) ins: Vec<usize>,
    pub(crate) outs: Vec<usize>,
    pub(crate) pairs: Vec<(usize, usize)>,
    /// Fused/blocked/atomic scatter arena (shared with `pooled_design`).
    pub(crate) arena: FusedArena,
    pub(crate) topk: TopKScratch,
}

impl MnWorkspace {
    /// Empty workspace; every buffer grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size the Ψ/Δ*/score/estimate buffers for a length-`n` problem.
    /// Reuses capacity; only the first call (or a growth in `n`) allocates.
    ///
    /// Contents are *unspecified* until a decode writes them: every
    /// accumulation and finish path fully overwrites its buffers, so
    /// `prepare` deliberately skips the redundant `O(n)` zeroing that would
    /// otherwise tax each Monte-Carlo replicate.
    pub fn prepare(&mut self, n: usize) {
        self.n = n;
        // Vec::resize truncates without writes when shrinking and
        // zero-extends only the grown tail.
        self.psi.resize(n, 0);
        self.dstar.resize(n, 0);
        self.scores.resize(n, 0);
        self.estimate.resize(n, 0);
    }

    /// The problem size of the last [`Self::prepare`].
    pub fn n(&self) -> usize {
        self.n
    }

    /// Neighborhood sums `Ψ_i` of the last decode.
    pub fn psi(&self) -> &[u64] {
        &self.psi[..self.n]
    }

    /// Distinct-query degrees `Δ*_i` of the last decode.
    pub fn delta_star(&self) -> &[u64] {
        &self.dstar[..self.n]
    }

    /// Integer scores `2Ψ_i − k·Δ*_i` of the last decode.
    pub fn scores(&self) -> &[i64] {
        &self.scores[..self.n]
    }

    /// Exact wide scores of the last Γ-general decode.
    ///
    /// Returns an empty slice when no Γ-general decode has run at the
    /// current problem size — unlike the other accessors (which the decode
    /// that just ran always refreshes), this buffer is only written by
    /// `GeneralMnDecoder::decode_with`, so serving a truncated stale vector
    /// after a re-`prepare` would be silently wrong.
    pub fn scores_wide(&self) -> &[i128] {
        if self.scores_wide.len() == self.n {
            &self.scores_wide
        } else {
            &[]
        }
    }

    /// Selected support indices, in ranking order (best first).
    pub fn support(&self) -> &[usize] {
        &self.support
    }

    /// Dense 0/1 estimate of the last decode (length `n`).
    pub fn estimate_dense(&self) -> &[u8] {
        &self.estimate[..self.n]
    }

    /// Mutable access to `(psi, dstar, arena)` for external accumulation
    /// kernels (the fused trial path). Call [`Self::prepare`] first.
    pub fn sums_mut(&mut self) -> (&mut [u64], &mut [u64], &mut FusedArena) {
        let n = self.n;
        (&mut self.psi[..n], &mut self.dstar[..n], &mut self.arena)
    }

    /// Move the selected support out into a [`Signal`] — the shared tail of
    /// the one-shot decode wrappers.
    pub(crate) fn take_estimate_signal(&mut self, n: usize) -> Signal {
        Signal::from_support(n, std::mem::take(&mut self.support))
    }
}

impl std::fmt::Debug for MnWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MnWorkspace").field("n", &self.n).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_reuses_capacity() {
        let mut ws = MnWorkspace::new();
        ws.prepare(1000);
        let cap = ws.psi.capacity();
        ws.prepare(500);
        assert_eq!(ws.n(), 500);
        assert_eq!(ws.psi.capacity(), cap, "shrinking must not reallocate");
        assert_eq!(ws.psi().len(), 500);
        ws.prepare(1000);
        assert_eq!(ws.psi.capacity(), cap, "regrowth within capacity must not reallocate");
    }

    #[test]
    fn prepare_sizes_all_buffers() {
        // Contents are unspecified after prepare (decode paths overwrite);
        // only the lengths are part of the contract.
        let mut ws = MnWorkspace::new();
        ws.prepare(8);
        assert_eq!(ws.psi().len(), 8);
        assert_eq!(ws.delta_star().len(), 8);
        assert_eq!(ws.scores().len(), 8);
        assert_eq!(ws.estimate_dense().len(), 8);
        ws.prepare(3);
        assert_eq!(ws.psi().len(), 3);
        assert_eq!(ws.estimate_dense().len(), 3);
    }
}
