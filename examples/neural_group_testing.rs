//! Neural group testing: pooled inference on an expensive classifier.
//!
//! Liang & Zou (the paper's reference [20]) accelerate deep-learning
//! inference by feeding *merged* samples through the network and only
//! recursing on positive pools — each query is a forward pass, so queries
//! dominate wall-clock exactly as in the paper's wet-lab story. This
//! example simulates a GPU that evaluates pools in fixed-size batches and
//! compares three strategies end-to-end on wall-clock *and* forward-pass
//! counts:
//!
//! * per-sample inference (no pooling),
//! * the paper's one-round pooled design + MN decoding,
//! * two-round counting Dorfman (pool, then resolve flagged pools).
//!
//! ```sh
//! cargo run --release --example neural_group_testing
//! ```

use pooled_data::adaptive::{
    counting_dorfman, makespan_fixed_latency, optimal_group_size, CountOracle,
};
use pooled_data::io::render_table;
use pooled_data::prelude::*;
use pooled_data::stats::replicate::{mn_trial, run_trials};

fn main() {
    // A screening corpus: n items, a rare positive class (θ = 0.25).
    let n = 10_000;
    let theta = 0.25;
    let k = thresholds::k_of(n, theta); // 10 positives
    let seeds = SeedSequence::new(2021);
    let trials = 15;
    // GPU model: batches of `batch` forward passes, `tau` ms per batch.
    let (batch, tau) = (64usize, 30.0);

    println!("neural group testing: n = {n} samples, k = {k} positives");
    println!("GPU batch = {batch} forward passes, {tau} ms per batch\n");

    let m_pooled = (1.2 * thresholds::m_mn_finite(n, theta)).ceil() as usize;
    let g_star = optimal_group_size(n, k);

    // Strategy A: per-sample inference — n forward passes, 1 round.
    let individual_ms = makespan_fixed_latency(&[n], batch, tau);

    // Strategy B: one-round pooled design + MN.
    let pooled_outs =
        run_trials(&seeds.child("mn", 0), trials, |_, node| mn_trial(n, k, m_pooled, &node));
    let pooled_success = pooled_outs.iter().filter(|o| o.exact).count() as f64 / trials as f64;
    let pooled_ms = makespan_fixed_latency(&[m_pooled], batch, tau);

    // Strategy C: counting Dorfman (2 rounds, adaptive).
    let dorfman_outs = run_trials(&seeds.child("dorf", 0), trials, |_, node| {
        let sigma = Signal::random(n, k, &mut node.child("signal", 0).rng());
        let mut oracle = CountOracle::new(&sigma);
        let res = counting_dorfman(&mut oracle, g_star);
        (res.estimate == sigma, res.queries, res.per_round)
    });
    let dorfman_queries = dorfman_outs.iter().map(|o| o.1 as f64).sum::<f64>() / trials as f64;
    let dorfman_ms =
        dorfman_outs.iter().map(|o| makespan_fixed_latency(&o.2, batch, tau)).sum::<f64>()
            / trials as f64;

    let header = ["strategy", "forward passes", "rounds", "wall-clock (ms)", "exact"];
    let rows = vec![
        vec![
            "per-sample".into(),
            n.to_string(),
            "1".into(),
            format!("{individual_ms:.0}"),
            "always".into(),
        ],
        vec![
            "one-round MN (paper)".into(),
            m_pooled.to_string(),
            "1".into(),
            format!("{pooled_ms:.0}"),
            format!("{pooled_success:.2}"),
        ],
        vec![
            format!("Dorfman g*={g_star}"),
            format!("{dorfman_queries:.0}"),
            "2".into(),
            format!("{dorfman_ms:.0}"),
            "always".into(),
        ],
    ];
    println!("{}", render_table(&header, &rows));
    let ratio = dorfman_queries / m_pooled as f64;
    println!(
        "\npooling cuts forward passes {:.0}× against per-sample inference.\n\
         the adaptive scheme is deterministic-exact at {:.1}× the one-round pass\n\
         count plus a pipeline stall between rounds; the one-round design is\n\
         fastest but succeeds with probability {:.2} at this budget — the §VI\n\
         trade-off in one table.",
        n as f64 / m_pooled as f64,
        ratio,
        pooled_success
    );
}
