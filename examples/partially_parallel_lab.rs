//! The §VI open problem made concrete: a lab with `L` liquid-handling
//! robots choosing between the fully parallel design (one round, 2× the
//! queries) and partially adaptive plans (fewer queries, more rounds).
//!
//! ```sh
//! cargo run --release --example partially_parallel_lab
//! ```

use pooled_data::io::render_table;
use pooled_data::lab::stages::tradeoff_curve;
use pooled_data::lab::LatencyModel;
use pooled_data::prelude::*;

fn main() {
    let n = 10_000;
    let theta = 0.3;
    let k = thresholds::k_of(n, theta);
    let m_seq = thresholds::m_counting_bound(n, k).ceil() as usize;
    let seeds = SeedSequence::new(42);
    // A PCR-like lab: each pooled assay takes ~1 time unit, small jitter.
    let latency = LatencyModel::Uniform { lo: 0.9, hi: 1.1 };

    println!(
        "n = {n}, θ = {theta}: sequential designs need m_seq ≈ {m_seq} queries,\n\
         fully parallel designs need ≈ 2·m_seq = {} (Theorem 2).\n",
        2 * m_seq
    );
    for units in [8usize, 64, 512] {
        let curve = tradeoff_curve(m_seq, units, &latency, &seeds.child("units", units as u64));
        let rows: Vec<Vec<String>> = curve
            .iter()
            .map(|p| {
                vec![p.rounds.to_string(), p.queries.to_string(), format!("{:.1}", p.makespan)]
            })
            .collect();
        println!("L = {units} robots:");
        println!("{}", render_table(&["rounds", "queries", "makespan"], &rows));
    }
    println!(
        "reading: with few robots the parallel design's extra queries cost real time,\n\
         so intermediate plans win; with many robots one round dominates everything."
    );
}
