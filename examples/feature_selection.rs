//! Parallel feature selection inspired by group testing (the paper's ML
//! motivation, ref. [33] Zhou et al., NeurIPS'14).
//!
//! Scenario: a model's quality gain is (approximately) additive in the
//! relevant features it sees. Evaluating a feature *pool* (train a cheap
//! probe model on that subset) returns how many relevant features the pool
//! contains — exactly an additive pooled query. All probe models train in
//! parallel; the MN decoder then names the relevant features.
//!
//! ```sh
//! cargo run --release --example feature_selection
//! ```

use pooled_data::core::metrics::Confusion;
use pooled_data::core::subset_select::SubsetSelectDecoder;
use pooled_data::prelude::*;

fn main() {
    // 5,000 candidate features, 12 actually relevant.
    let n_features = 5_000;
    let k_relevant = 12;
    let seeds = SeedSequence::new(7);
    let relevant = Signal::random(n_features, k_relevant, &mut seeds.child("truth", 0).rng());

    // Budget: how many probe models can we train in parallel?
    let theta = (k_relevant as f64).ln() / (n_features as f64).ln();
    let m = (1.25 * thresholds::m_mn_finite(n_features, theta)).ceil() as usize;
    println!("{n_features} candidate features, {k_relevant} relevant, {m} parallel probe models");

    // Each "probe model" scores its feature pool: the additive oracle.
    let design = RandomRegularDesign::sample(n_features, m, &seeds.child("design", 0));
    let scores = execute_queries(&design, &relevant);

    // Full reconstruction.
    let out = MnDecoder::new(k_relevant).decode_design(&design, &scores);
    let confusion = Confusion::compare(&relevant, &out.estimate);
    println!(
        "full MN decode: precision {:.3}, recall {:.3}",
        confusion.precision(),
        confusion.recall()
    );

    // High-confidence shortlist (Subset Select): features safe to ship now.
    let shortlist = SubsetSelectDecoder::new(k_relevant).with_margin(1.2).extract(&out);
    let precision = SubsetSelectDecoder::precision(&relevant, &shortlist);
    println!(
        "confident shortlist: {} features, precision {:.3}",
        shortlist.selected.len(),
        precision
    );
    assert!(precision >= 0.9, "shortlist should be high-precision");
}
