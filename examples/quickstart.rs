//! Quickstart: reconstruct a sparse binary signal from parallel pooled
//! queries in ~20 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pooled_data::prelude::*;

fn main() {
    // Hidden signal: n entries, k of them are ones (k = n^0.3 regime).
    let n = 2_000;
    let k = 10;
    let seeds = SeedSequence::new(1905);
    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());

    // How many parallel queries does Theorem 1 ask for? At n this small the
    // finite-size Remark's correction still underestimates slightly, so run
    // with a comfortable 1.7× margin.
    let theta = (k as f64).ln() / (n as f64).ln();
    let m = (1.7 * thresholds::m_mn_finite(n, theta)).ceil() as usize;
    println!("n = {n}, k = {k} (θ ≈ {theta:.2}); running m = {m} parallel queries");

    // Sample the design, execute all queries at once, decode greedily.
    let design = RandomRegularDesign::sample(n, m, &seeds.child("design", 0));
    let y = execute_queries(&design, &sigma);
    let out = MnDecoder::new(k).decode_design(&design, &y);

    println!("true support:      {:?}", sigma.support());
    println!("recovered support: {:?}", out.estimate.support());
    assert_eq!(out.estimate, sigma, "exact recovery expected at this m");
    println!("exact recovery ✓");
}
