//! Threshold screening: pooled tests whose readout is one bit.
//!
//! Many assays cannot report an exact count — a PCR pool fluoresces once
//! the viral load crosses a detection limit, a sensor trips above a
//! concentration. This is exactly the threshold group-testing setting the
//! paper's §VI names as an open problem. The example screens a population
//! with detectors of threshold T ∈ {1, 2, 4}, sizes the pools with the
//! separation-efficiency rule, decodes with the Threshold-MN decoder, and
//! shows what the lost count information costs relative to the additive
//! channel — including a detector with a *gap* (loads just under T
//! sometimes trip it).
//!
//! ```sh
//! cargo run --release --example threshold_screening
//! ```

use pooled_data::io::render_table;
use pooled_data::prelude::*;
use pooled_data::stats::replicate::run_trials;
use pooled_data::theory::threshold_gt::{m_threshold_estimate, recommended_gamma};
use pooled_data::threshold::{
    consistency_report, recommended_design, GappedChannel, ThresholdChannel, ThresholdMnDecoder,
};

fn main() {
    let n = 2000;
    let theta = 0.3;
    let k = thresholds::k_of(n, theta);
    let seeds = SeedSequence::new(2022);
    let trials = 20;
    println!("threshold screening: n = {n} specimens, k = {k} positives\n");

    let header = ["T", "pool size Γ*", "m (tests)", "success", "mean overlap", "consistent"];
    let mut rows = Vec::new();
    for t in [1u64, 2, 4] {
        let (gamma, _) = recommended_gamma(n, k, t);
        let m = (1.3 * m_threshold_estimate(n, k, gamma, t)).ceil() as usize;
        let outs = run_trials(&seeds.child("t", t), trials, |_, node| {
            let sigma = Signal::random(n, k, &mut node.child("signal", 0).rng());
            let design = recommended_design(n, k, t, m, &node.child("design", 0));
            let bits = ThresholdChannel::new(t).execute(&design, &sigma);
            let out = ThresholdMnDecoder::new(k).decode(&design, &bits);
            let consistent = consistency_report(&design, &bits, &out.estimate, t).is_consistent();
            let overlap = out.estimate.overlap(&sigma) as f64 / k as f64;
            (out.estimate == sigma, overlap, consistent)
        });
        let success = outs.iter().filter(|o| o.0).count() as f64 / trials as f64;
        let overlap = outs.iter().map(|o| o.1).sum::<f64>() / trials as f64;
        let consistent = outs.iter().filter(|o| o.2).count() as f64 / trials as f64;
        rows.push(vec![
            t.to_string(),
            gamma.to_string(),
            m.to_string(),
            format!("{success:.2}"),
            format!("{overlap:.4}"),
            format!("{consistent:.2}"),
        ]);
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "\nthe additive channel needs ≈ {:.0} tests here (m_MN finite-n);\n\
         one-bit readouts pay roughly the Γ/separation² premium above.\n",
        thresholds::m_mn_finite(n, theta)
    );

    // A leaky detector: loads in [T−1, T) trip it half the time.
    let t = 2u64;
    let (gamma, _) = recommended_gamma(n, k, t);
    let m = (1.6 * m_threshold_estimate(n, k, gamma, t)).ceil() as usize;
    let outs = run_trials(&seeds.child("gap", 0), trials, |_, node| {
        let sigma = Signal::random(n, k, &mut node.child("signal", 0).rng());
        let design = recommended_design(n, k, t, m, &node.child("design", 0));
        let channel = GappedChannel::new(t - 1, t, node.child("channel", 0));
        let bits = channel.execute(&design, &sigma);
        let out = ThresholdMnDecoder::new(k).decode(&design, &bits);
        out.estimate == sigma
    });
    let success = outs.iter().filter(|&&e| e).count() as f64 / trials as f64;
    println!(
        "leaky detector (gap [{}, {}), T = {t}, m = {m}): success {success:.2} — \
         the score decoder absorbs gap noise with a constant-factor budget bump",
        t - 1,
        t
    );
}
