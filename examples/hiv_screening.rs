//! The paper's §I-D epidemiology scenario: screening a population by
//! pooled PCR tests.
//!
//! “Out of about 67,220,000 residents of the UK, 105,200 are known to be
//! infected with the HI virus. Hence, by screening n = 10.000 random probes
//! we expect 16 positive entries … the choice θ = 0.3 describes the
//! situation quite well.”
//!
//! We screen n = 10,000 probes with ~16 positives and compare the pooled
//! design against testing everyone individually.
//!
//! ```sh
//! cargo run --release --example hiv_screening
//! ```

use pooled_data::io::render_table;
use pooled_data::prelude::*;
use pooled_data::stats::replicate::{mn_trial, run_trials};

fn main() {
    let n = 10_000;
    let theta = 0.3;
    let k = thresholds::k_of(n, theta); // 16 expected positives
    let seeds = SeedSequence::new(2022);
    println!("screening n = {n} probes, k = {k} infected (θ = {theta})");
    println!("individual testing would need {n} assays;");
    println!(
        "theory: m_MN = {:.0} (asymptotic), {:.0} (finite-n corrected)\n",
        thresholds::m_mn(n, theta),
        thresholds::m_mn_finite(n, theta)
    );

    let trials = 25;
    let header = ["m (pooled tests)", "assays saved", "success rate", "mean overlap"];
    let mut rows = Vec::new();
    for factor in [0.8, 1.0, 1.2, 1.5] {
        let m = (factor * thresholds::m_mn_finite(n, theta)).ceil() as usize;
        let outs =
            run_trials(&seeds.child("m", m as u64), trials, |_, node| mn_trial(n, k, m, &node));
        let success = outs.iter().filter(|o| o.exact).count() as f64 / trials as f64;
        let overlap = outs.iter().map(|o| o.overlap).sum::<f64>() / trials as f64;
        rows.push(vec![
            m.to_string(),
            format!("{:.1}%", 100.0 * (1.0 - m as f64 / n as f64)),
            format!("{success:.2}"),
            format!("{overlap:.4}"),
        ]);
    }
    println!("{}", render_table(&header, &rows));
    println!("all tests within one row run in parallel — one lab round trip.");
}
