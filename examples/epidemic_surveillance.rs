//! Rolling epidemic surveillance with a growing positive class.
//!
//! The paper motivates the sublinear regime with early-pandemic spread
//! (Heaps-law growth, references [5], [31]): week after week the same
//! population is screened while prevalence climbs `k(t) ≈ n^{θ(t)}`. This
//! example runs a 6-week surveillance program:
//!
//! 1. each week one extra "count everything" query reveals the current
//!    `k` exactly (the paper's §I-C trick — `k` need not be known ahead);
//! 2. the week's query budget is set from that measured `k` via the
//!    finite-size Theorem 1 formula;
//! 3. the MN estimate is refined with the residual swap search, and the
//!    consistency certificate is reported.
//!
//! ```sh
//! cargo run --release --example epidemic_surveillance
//! ```

use pooled_data::core::query::weight_revealing_query;
use pooled_data::core::refine::{refine, RefineConfig};
use pooled_data::design::CsrDesign;
use pooled_data::io::render_table;
use pooled_data::prelude::*;

fn main() {
    let n = 5000;
    let seeds = SeedSequence::new(2020);
    println!("weekly pooled surveillance of n = {n} residents\n");

    // Prevalence grows sub-linearly: θ ramps 0.20 → 0.45 over six weeks.
    let weeks: Vec<f64> = (0..6).map(|w| 0.20 + 0.05 * w as f64).collect();
    let header = ["week", "true k", "measured k", "m (tests)", "exact", "overlap", "certified"];
    let mut rows = Vec::new();
    let mut total_tests = 0usize;

    for (week, &theta) in weeks.iter().enumerate() {
        let node = seeds.child("week", week as u64);
        let k_true = thresholds::k_of(n, theta);
        let sigma = Signal::random(n, k_true, &mut node.child("signal", 0).rng());

        // One query over everyone reveals k (costs 1 test).
        let k_measured = weight_revealing_query(&sigma) as usize;

        // Budget from the measured k: invert k = n^θ, apply Theorem 1 + §V.
        let theta_hat = (k_measured as f64).ln() / (n as f64).ln();
        let m = (1.25 * thresholds::m_mn_finite(n, theta_hat)).ceil() as usize;
        total_tests += m + 1;

        let design = CsrDesign::sample(n, m, n / 2, &node.child("design", 0));
        let y = execute_queries(&design, &sigma);
        let out = MnDecoder::new(k_measured).decode(&design, &y);
        let refined = refine(&design, &y, &out.scores, &out.estimate, &RefineConfig::default());

        let overlap = refined.estimate.overlap(&sigma) as f64 / k_true as f64;
        rows.push(vec![
            (week + 1).to_string(),
            k_true.to_string(),
            k_measured.to_string(),
            (m + 1).to_string(),
            if refined.estimate == sigma { "yes" } else { "no" }.into(),
            format!("{overlap:.4}"),
            if refined.consistent { "r=0" } else { "r>0" }.into(),
        ]);
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "\n{total_tests} pooled tests over six weeks vs {} individual assays —\n\
         the budget tracks k(t) automatically because each week's single\n\
         weight-revealing query re-measures prevalence before pooling.",
        6 * n
    );
}
