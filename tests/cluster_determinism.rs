//! The cluster tier's correctness contract, end to end.
//!
//! Three layers, strictest first:
//!
//! 1. **Placement** — property-tested: [`Membership`]'s HRW ownership is
//!    a pure function of the key and the node-id *set* (independent of
//!    id order, arrival order, and router instance), and adding a node
//!    migrates exactly the keys the new node wins — the
//!    minimal-migration property the rebalance protocol relies on.
//! 2. **Topology invariance** — the headline invariant: a
//!    [`LoadProfile`] replayed through 1 local node, a 3-node local
//!    cluster, and a 3-node TCP loopback cluster produces
//!    **bit-identical** per-job result fingerprints (also pinned by the
//!    CI cluster smoke via `engine_load --cluster 3 --transport tcp`).
//! 3. **Operations** — a mid-stream rebalance (drain → swap → re-route)
//!    changes no fingerprints, and a node restarted from a design-key
//!    snapshot serves its first requests without a single cold miss.

use std::sync::Arc;

use proptest::prelude::*;

use pooled_data::engine::cluster::{LocalNode, Membership, NodeHandle, RemoteNode, Router};
use pooled_data::engine::engine::{Engine, EngineConfig};
use pooled_data::engine::job::{DecoderKind, JobResult};
use pooled_data::engine::traffic::LoadProfile;
use pooled_data::engine::transport::{TransportConfig, TransportServer};

/// A small, fast profile whose keys shard over several nodes.
fn profile(seed: u64) -> LoadProfile {
    LoadProfile {
        distinct_designs: 6,
        decoders: vec![DecoderKind::Mn, DecoderKind::GeneralMn],
        query_cost: None,
        ..LoadProfile::default_mix(300, 5, 180, seed)
    }
}

fn node_config(workers: usize) -> EngineConfig {
    EngineConfig {
        workers,
        queue_capacity: 8,
        results_capacity: 8,
        design_cache_capacity: 8,
        batch_window: 1,
    }
}

/// Fingerprint projection used by every cross-topology comparison.
fn fingerprints(results: &[JobResult]) -> Vec<(u64, u64)> {
    results.iter().map(|r| (r.id, r.fingerprint())).collect()
}

/// Serve the profile through a router over `nodes` local engines.
fn serve_local_cluster(
    p: &LoadProfile,
    jobs: usize,
    nodes: usize,
    workers: usize,
) -> Vec<JobResult> {
    let handles: Vec<(u64, Box<dyn NodeHandle>)> = (0..nodes as u64)
        .map(|id| (id, Box::new(LocalNode::start(node_config(workers))) as Box<dyn NodeHandle>))
        .collect();
    let mut router = Router::new(handles, 8);
    let mut out = Vec::new();
    router.run_batch(&p.specs(jobs), &mut out);
    let stats = router.shutdown();
    assert_eq!(stats.merged.jobs_completed, jobs as u64);
    out
}

/// Serve the profile through a router over `nodes` TCP loopback nodes —
/// engine → transport server → socket → [`RemoteNode`] per shard.
fn serve_tcp_cluster(p: &LoadProfile, jobs: usize, nodes: usize, workers: usize) -> Vec<JobResult> {
    let engines: Vec<Arc<Engine>> =
        (0..nodes).map(|_| Arc::new(Engine::start(node_config(workers)))).collect();
    let servers: Vec<TransportServer> = engines
        .iter()
        .map(|e| {
            TransportServer::bind(Arc::clone(e), "127.0.0.1:0", TransportConfig::default())
                .expect("bind loopback")
        })
        .collect();
    let handles: Vec<(u64, Box<dyn NodeHandle>)> = servers
        .iter()
        .enumerate()
        .map(|(id, s)| {
            let node = RemoteNode::connect(s.local_addr()).expect("connect loopback");
            (id as u64, Box::new(node) as Box<dyn NodeHandle>)
        })
        .collect();
    let mut router = Router::new(handles, 8);
    let mut out = Vec::new();
    router.run_batch(&p.specs(jobs), &mut out);
    router.shutdown();
    for server in servers {
        server.stop();
    }
    let mut served = 0;
    for engine in engines {
        served += Arc::try_unwrap(engine)
            .ok()
            .expect("server released the engine")
            .shutdown()
            .jobs_completed;
    }
    assert_eq!(served, jobs as u64, "every job must have been served by some node");
    out
}

#[test]
fn fingerprints_are_identical_across_1_local_3_local_and_3_tcp_nodes() {
    // The headline invariant: same profile, same fingerprints, whether
    // jobs run on one engine, across three engines behind a router, or
    // across three engines each behind a socket. The 1-node pass is
    // simultaneously checked against a bare engine, so "a single node
    // is a 1-node cluster" is literal.
    let p = profile(1905);
    let jobs = 30;
    let bare = Engine::start(node_config(2));
    let mut want = Vec::new();
    bare.run_batch(&p.specs(jobs), &mut want);
    bare.shutdown();
    let want = fingerprints(&want);

    let one = fingerprints(&serve_local_cluster(&p, jobs, 1, 2));
    assert_eq!(one, want, "a 1-node cluster diverged from the bare engine");
    let three = fingerprints(&serve_local_cluster(&p, jobs, 3, 2));
    assert_eq!(three, want, "sharding across 3 local nodes changed results");
    let tcp = fingerprints(&serve_tcp_cluster(&p, jobs, 3, 2));
    assert_eq!(tcp, want, "3 TCP loopback nodes changed results");
}

#[test]
fn rebalance_mid_stream_is_fingerprint_invisible() {
    // Stream half the profile into a 2-node cluster, add a third node
    // (drain → swap → re-route), stream the rest: results must be
    // bit-identical to the static 1-node serve, and the membership swap
    // must have moved only keys the new node owns.
    let p = profile(77);
    let jobs = 32;
    let specs = p.specs(jobs);
    let want = fingerprints(&serve_local_cluster(&p, jobs, 1, 1));

    let handles: Vec<(u64, Box<dyn NodeHandle>)> = (0..2u64)
        .map(|id| (id, Box::new(LocalNode::start(node_config(1))) as Box<dyn NodeHandle>))
        .collect();
    let mut router = Router::new(handles, 4);
    let before = router.membership().clone();
    for &s in &specs[..16] {
        router.submit(s);
    }
    router.add_node(9, Box::new(LocalNode::start(node_config(1))));
    let after = router.membership().clone();
    for &s in &specs[16..] {
        router.submit(s);
    }
    let mut out = Vec::new();
    router.collect(jobs, &mut out);
    out.sort_unstable_by_key(|r| r.id);
    assert_eq!(fingerprints(&out), want, "rebalance changed results");
    for s in &specs {
        let key = s.design_key();
        if before.owner(&key) != after.owner(&key) {
            assert_eq!(after.owner(&key), 9, "a key migrated to a survivor");
        }
    }
    router.shutdown();
}

#[test]
fn prewarmed_node_serves_first_requests_without_cold_misses() {
    // Snapshot/restore-lite at the node level: a "restarted" node warmed
    // from the profile's design keys before accepting traffic sees zero
    // cold misses on its first requests — no cold-start latency cliff.
    let p = profile(4242);
    let node = LocalNode::start_prewarmed(node_config(2), &p.design_keys());
    for spec in p.specs(12) {
        node.submit(spec).expect("submit");
    }
    for _ in 0..12 {
        node.recv().expect("result");
    }
    let stats = node.stats().expect("local stats");
    assert_eq!(stats.jobs_completed, 12);
    assert_eq!(stats.cache_misses, 0, "a prewarmed node must see no cold miss");
    assert_eq!(stats.cache_hits, 12);
    Box::new(node).shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Placement is a pure function of (key, id set): independent of the
    /// order ids were listed, of the order keys are asked, and of which
    /// membership instance answers.
    #[test]
    fn placement_is_independent_of_order_and_instance(
        seed in any::<u64>(),
        ids in proptest::collection::vec(any::<u64>(), 1..8),
        jobs in 4usize..40,
    ) {
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        let a = Membership::new(unique.clone());
        let mut reversed = unique.clone();
        reversed.reverse();
        let b = Membership::new(reversed);
        let keys: Vec<_> = profile(seed).specs(jobs).iter().map(|s| s.design_key()).collect();
        // Same owners forwards, backwards, and across instances.
        let forward: Vec<u64> = keys.iter().map(|k| a.owner(k)).collect();
        let backward: Vec<u64> = keys.iter().rev().map(|k| b.owner(k)).collect();
        prop_assert_eq!(
            forward.iter().rev().cloned().collect::<Vec<u64>>(),
            backward,
            "placement depended on order or instance"
        );
        // And it is stable under repetition.
        for (k, &owner) in keys.iter().zip(&forward) {
            prop_assert_eq!(a.owner(k), owner);
        }
    }

    /// HRW minimal migration: growing the membership moves exactly the
    /// keys the new node wins — every other key keeps its owner.
    #[test]
    fn adding_a_node_moves_only_keys_it_owns(
        seed in any::<u64>(),
        ids in proptest::collection::vec(any::<u64>(), 1..7),
        new_id in any::<u64>(),
        jobs in 8usize..60,
    ) {
        // Map the survivors and the newcomer into disjoint id ranges so
        // the added id is fresh by construction.
        let mut unique: Vec<u64> = ids.iter().map(|i| i % 1_000_000).collect();
        unique.sort_unstable();
        unique.dedup();
        let new_id = 1_000_000 + new_id % 1_000_000;
        let old = Membership::new(unique);
        let new = old.with_node(new_id);
        for spec in profile(seed).specs(jobs) {
            let key = spec.design_key();
            let before = old.owner(&key);
            let after = new.owner(&key);
            if before != after {
                prop_assert_eq!(after, new_id, "a key migrated between survivors");
            }
        }
    }

    /// Routing determinism at the cluster level: the same profile
    /// through clusters of different sizes (including 1) produces
    /// bit-identical fingerprints.
    #[test]
    fn cluster_size_is_fingerprint_invisible(
        seed in any::<u64>(),
        nodes in 2usize..4,
        jobs in 8usize..20,
    ) {
        let p = profile(seed);
        let one = fingerprints(&serve_local_cluster(&p, jobs, 1, 1));
        let many = fingerprints(&serve_local_cluster(&p, jobs, nodes, 2));
        prop_assert_eq!(one, many);
    }
}
