//! Cross-crate integration tests: the full pipeline from design sampling
//! through decoding, exercising both storage modes and both decode paths.

use pooled_data::core::metrics::overlap_fraction;
use pooled_data::core::mn::{DecodeStrategy, MnDecoder, SelectionMethod};
use pooled_data::design::multigraph::StorageMode;
use pooled_data::prelude::*;
use pooled_data::stats::replicate::{mn_trial, run_trials};
use pooled_data::theory::thresholds::{k_of, m_mn_finite};

#[test]
fn recovery_at_theorem1_scale_multiple_thetas() {
    for &theta in &[0.2, 0.3, 0.4] {
        let n = 1500;
        let k = k_of(n, theta);
        let m = (1.4 * m_mn_finite(n, theta)).ceil() as usize;
        let master = SeedSequence::new(100 + (theta * 10.0) as u64);
        let outs = run_trials(&master, 8, |_, seeds| mn_trial(n, k, m, &seeds));
        let successes = outs.iter().filter(|o| o.exact).count();
        assert!(successes >= 6, "θ={theta}: only {successes}/8 recoveries at m={m}");
    }
}

#[test]
fn pipeline_equivalence_csr_vs_streaming_and_all_decode_paths() {
    let seeds = SeedSequence::new(555);
    let n = 1200;
    let k = 9;
    let m = 420;
    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    let csr = RandomRegularDesign::sample_with(
        n,
        m,
        n / 2,
        &seeds.child("design", 0),
        StorageMode::Materialized,
    );
    let stream = RandomRegularDesign::sample_with(
        n,
        m,
        n / 2,
        &seeds.child("design", 0),
        StorageMode::Streaming,
    );
    let y1 = execute_queries(&csr, &sigma);
    let y2 = execute_queries(&stream, &sigma);
    assert_eq!(y1, y2, "storage modes must produce identical observations");

    let mut estimates = Vec::new();
    for strategy in [DecodeStrategy::Scatter, DecodeStrategy::Gather, DecodeStrategy::Auto] {
        for selection in [SelectionMethod::TopK, SelectionMethod::FullSort] {
            let out = MnDecoder::new(k)
                .with_strategy(strategy)
                .with_selection(selection)
                .decode_design(&csr, &y1);
            estimates.push(out.estimate);
        }
    }
    let out_stream = MnDecoder::new(k).decode_design(&stream, &y2);
    estimates.push(out_stream.estimate);
    for w in estimates.windows(2) {
        assert_eq!(w[0], w[1], "decode paths disagree");
    }
}

#[test]
fn overlap_grows_monotonically_with_m_on_average() {
    let n = 800;
    let k = 7;
    let master = SeedSequence::new(77);
    let mut means = Vec::new();
    for &m in &[20usize, 80, 240, 480] {
        let outs =
            run_trials(&master.child("m", m as u64), 10, |_, seeds| mn_trial(n, k, m, &seeds));
        means.push(outs.iter().map(|o| o.overlap).sum::<f64>() / 10.0);
    }
    assert!(means[3] > means[0] + 0.3, "no learning curve: {means:?}");
    assert!(
        means.windows(2).filter(|w| w[1] + 0.10 < w[0]).count() == 0,
        "overlap regressed sharply along m: {means:?}"
    );
}

#[test]
fn facade_prelude_round_trip() {
    // The README example, verbatim semantics.
    let seeds = SeedSequence::new(1905);
    let n = 512;
    let k = 6;
    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    let design = RandomRegularDesign::sample(n, 400, &seeds.child("design", 0));
    let y = execute_queries(&design, &sigma);
    let decoded = MnDecoder::new(k).decode_design(&design, &y);
    assert_eq!(decoded.estimate, sigma);
}

#[test]
fn weight_mismatch_degrades_gracefully() {
    // Decoder told k+2: estimate has k+2 ones but must contain the truth
    // at generous m.
    let seeds = SeedSequence::new(31);
    let n = 600;
    let k = 5;
    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    let design = RandomRegularDesign::sample(n, 500, &seeds.child("design", 0));
    let y = execute_queries(&design, &sigma);
    let out = MnDecoder::new(k + 2).decode_design(&design, &y);
    assert_eq!(out.estimate.weight(), k + 2);
    assert_eq!(overlap_fraction(&sigma, &out.estimate), 1.0, "true support must be included");
}
