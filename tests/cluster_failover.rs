//! The failure-domain contract, end to end: **node death is a handled
//! event**, and it is fingerprint-invisible.
//!
//! Layered like `tests/cluster_determinism.rs`, strictest first:
//!
//! 1. **Kill mid-stream** — a 3-node cluster (local and TCP loopback)
//!    loses a node partway through a profile; every job still
//!    completes and the fingerprints are bit-identical to the
//!    fault-free run. The local variant additionally pins the HRW
//!    top-2 warm-standby guarantee: the failed-over key slice lands on
//!    survivors **without a single cold design miss**, because the
//!    router prewarmed each key's standby as traffic first named it.
//! 2. **Black hole** — a node that accepts submissions and never
//!    answers is caught by probation, not by a hung `collect`.
//! 3. **Degenerate and adversarial edges** — the last node dying
//!    fails jobs per-job instead of wedging the fan-in; duplicated and
//!    delayed events are absorbed as stale, changing nothing; a
//!    planned [`Router::remove_node`] drain is fingerprint-invisible
//!    and loses no telemetry.
//!
//! All fault schedules are seeded ([`ChaosConfig`]), so every failure
//! here replays bit-for-bit.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use pooled_data::engine::cluster::chaos::{self, ChaosConfig, ChaosController};
use pooled_data::engine::cluster::{FailoverConfig, LocalNode, NodeHandle, RemoteNode, Router};
use pooled_data::engine::engine::{Engine, EngineConfig};
use pooled_data::engine::job::{DecoderKind, JobResult, JobSpec};
use pooled_data::engine::traffic::LoadProfile;
use pooled_data::engine::transport::{TransportConfig, TransportServer};

/// A small, fast profile whose keys shard over several nodes.
fn profile(seed: u64) -> LoadProfile {
    LoadProfile {
        distinct_designs: 6,
        decoders: vec![DecoderKind::Mn, DecoderKind::GeneralMn],
        query_cost: None,
        ..LoadProfile::default_mix(300, 5, 180, seed)
    }
}

fn node_config(workers: usize) -> EngineConfig {
    EngineConfig {
        workers,
        queue_capacity: 8,
        results_capacity: 8,
        design_cache_capacity: 8,
        batch_window: 1,
    }
}

/// Fingerprint projection used by every comparison.
fn fingerprints(results: &[JobResult]) -> Vec<(u64, u64)> {
    let mut sorted: Vec<&JobResult> = results.iter().collect();
    sorted.sort_unstable_by_key(|r| r.id);
    sorted.iter().map(|r| (r.id, r.fingerprint())).collect()
}

/// Fault-free ground truth: the same specs through one local node.
fn ground_truth(specs: &[JobSpec]) -> Vec<(u64, u64)> {
    let node: Box<dyn NodeHandle> = Box::new(LocalNode::start(node_config(1)));
    let mut router = Router::new(vec![(0, node)], 8);
    let mut out = Vec::new();
    router.run_batch(specs, &mut out);
    router.shutdown();
    fingerprints(&out)
}

/// A cluster of chaos-wrapped local nodes, returning the controllers
/// keyed in node-id order.
fn chaos_local_cluster(
    nodes: u64,
    workers: usize,
    config: impl Fn(u64) -> ChaosConfig,
) -> (Router, Vec<ChaosController>) {
    let mut controllers = Vec::new();
    let handles: Vec<(u64, Box<dyn NodeHandle>)> = (0..nodes)
        .map(|id| {
            let inner: Box<dyn NodeHandle> = Box::new(LocalNode::start(node_config(workers)));
            let (node, controller) = chaos::wrap(inner, config(id));
            controllers.push(controller);
            (id, Box::new(node) as Box<dyn NodeHandle>)
        })
        .collect();
    (Router::new(handles, 8), controllers)
}

#[test]
fn killing_a_node_mid_stream_loses_no_jobs_and_no_bits() {
    // The headline: 3 nodes, kill one between two streaming phases.
    // Every job completes, fingerprints match the fault-free run, and
    // the failed-over slice costs the survivors zero cold misses — the
    // router prewarmed every key's standby during phase 1, and HRW
    // top-2 makes the standby exactly the post-failure owner.
    let p = profile(6001);
    let specs = p.specs(40);
    let want = ground_truth(&specs);

    let (mut router, controllers) = chaos_local_cluster(3, 1, ChaosConfig::quiet);
    // Phase 1: stream half; this names every design key to the router,
    // which prewarms each key's standby as a side effect.
    let phase1_keys: HashSet<_> = specs[..20].iter().map(|s| s.design_key()).collect();
    assert_eq!(phase1_keys.len(), 6, "phase 1 must name every design key");
    let mut out = Vec::new();
    for &s in &specs[..20] {
        router.submit(s);
    }
    assert_eq!(router.collect(20, &mut out), 20);

    // Snapshot survivor cache traffic, then kill the node that owns
    // the next spec's key (so phase 2 *must* fail over).
    let victim = router.membership().owner(&specs[20].design_key());
    let misses_before: HashMap<u64, u64> = router
        .stats()
        .nodes
        .iter()
        .filter(|(id, _)| *id != victim)
        .map(|(id, s)| (*id, s.as_ref().expect("local stats").cache_misses))
        .collect();
    controllers[victim as usize].kill();

    // Phase 2: stream the rest; the router discovers the corpse on the
    // first touch and re-routes to the prewarmed standbys.
    for &s in &specs[20..] {
        router.submit(s);
    }
    assert_eq!(router.collect(20, &mut out), 20, "every phase-2 job must complete");

    assert_eq!(out.len(), 40);
    assert_eq!(fingerprints(&out), want, "failover changed results");
    assert!(router.failed().is_empty(), "no job may fail terminally");
    assert_eq!(router.failed_nodes(), &[victim], "exactly the killed node failed");
    assert_eq!(router.nodes(), 2);

    // Zero cold misses on the survivors: the failed-over slice was
    // already resident (prewarm), and their own slices were warm.
    for (id, stats) in router.stats().nodes {
        let miss_delta = stats.as_ref().expect("local stats").cache_misses - misses_before[&id];
        assert_eq!(miss_delta, 0, "node {id} paid {miss_delta} cold misses after failover");
    }
    router.shutdown();
}

#[test]
fn killing_a_tcp_node_mid_stream_loses_no_jobs_and_no_bits() {
    // Same headline over sockets: engine → transport server → loopback
    // → RemoteNode, with the victim's *connection* severed mid-stream
    // (its server-side engine keeps running, as in a network partition
    // — the dangerous case, because the victim may still serve jobs
    // whose results no one hears).
    let p = profile(6002);
    let specs = p.specs(40);
    let want = ground_truth(&specs);

    let engines: Vec<Arc<Engine>> =
        (0..3).map(|_| Arc::new(Engine::start(node_config(1)))).collect();
    let servers: Vec<TransportServer> = engines
        .iter()
        .map(|e| {
            TransportServer::bind(Arc::clone(e), "127.0.0.1:0", TransportConfig::default())
                .expect("bind loopback")
        })
        .collect();
    let mut controllers = Vec::new();
    let handles: Vec<(u64, Box<dyn NodeHandle>)> = servers
        .iter()
        .enumerate()
        .map(|(id, s)| {
            let inner: Box<dyn NodeHandle> =
                Box::new(RemoteNode::connect(s.local_addr()).expect("connect loopback"));
            let (node, controller) = chaos::wrap(inner, ChaosConfig::quiet(id as u64));
            controllers.push(controller);
            (id as u64, Box::new(node) as Box<dyn NodeHandle>)
        })
        .collect();
    let mut router = Router::new(handles, 8);

    // Phase 1: stream half and resolve it completely, so the cut below
    // lands at a known point — nothing in flight, but the victim's key
    // slice still has unserved traffic coming.
    let mut out = Vec::new();
    for &s in &specs[..20] {
        router.submit(s);
    }
    assert_eq!(router.collect(20, &mut out), 20);

    // Cut the wire of the node that owns the next spec's key, then
    // stream the rest: the router discovers the corpse on the first
    // phase-2 touch — a failed write, or a closed completion stream
    // under unresolved work — and re-routes the victim's slice.
    // (Cutting at a resolved point makes the failover deterministic:
    // phase-2 jobs for the victim's keys can never be answered over the
    // severed socket. Cutting mid-window instead races the 1-worker
    // victim draining its whole slice — these µs-scale decodes finish
    // in under a millisecond — after which the clean close correctly
    // fails nothing over.)
    let victim = router.membership().owner(&specs[20].design_key());
    controllers[victim as usize].kill();
    for &s in &specs[20..] {
        router.submit(s);
    }
    assert_eq!(router.collect(20, &mut out), 20, "every phase-2 job must complete");

    assert_eq!(out.len(), 40);
    assert_eq!(fingerprints(&out), want, "TCP failover changed results");
    assert!(router.failed().is_empty());
    assert_eq!(router.failed_nodes(), &[victim]);

    router.shutdown();
    for server in servers {
        server.stop();
    }
    let mut served = 0;
    for engine in engines {
        served += Arc::try_unwrap(engine)
            .ok()
            .expect("transport released the engine")
            .shutdown()
            .jobs_completed;
    }
    // The victim's engine outlives the cut and may still have served
    // phase-2 jobs whose results died with the wire (the OS buffers
    // writes for a moment after the far side is gone) — those were
    // re-served elsewhere, so the cluster-wide total is at least the
    // job count, never less.
    assert!(served >= 40, "only {served} jobs served across all engines");
}

#[test]
fn a_black_holed_node_is_caught_by_probation_not_a_hang() {
    // Node 0 swallows every submission (the wire says yes, the peer
    // never answers). No error, no close — only silence. Probation
    // must declare it dead and re-route; collect must never hang.
    let p = profile(6003);
    let specs = p.specs(24);
    let want = ground_truth(&specs);

    let config = FailoverConfig {
        probation: Duration::from_millis(150),
        retry_backoff: Duration::from_millis(1),
        ..FailoverConfig::default()
    };
    let mut controllers = Vec::new();
    let handles: Vec<(u64, Box<dyn NodeHandle>)> = (0..2u64)
        .map(|id| {
            let inner: Box<dyn NodeHandle> = Box::new(LocalNode::start(node_config(1)));
            let chaos_config = if id == 0 {
                ChaosConfig { drop_milli: 1000, ..ChaosConfig::quiet(13) }
            } else {
                ChaosConfig::quiet(13)
            };
            let (node, controller) = chaos::wrap(inner, chaos_config);
            controllers.push(controller);
            (id, Box::new(node) as Box<dyn NodeHandle>)
        })
        .collect();
    let mut router = Router::with_config(handles, 8, config);

    let mut out = Vec::new();
    router.run_batch(&specs, &mut out);

    assert_eq!(out.len(), 24);
    assert_eq!(fingerprints(&out), want, "probation failover changed results");
    assert_eq!(router.failed_nodes(), &[0], "the black hole must be declared dead");
    assert!(controllers[0].dropped() > 0, "the schedule must actually have swallowed jobs");
    let stats = router.shutdown();
    assert_eq!(stats.jobs_failed, 0);
}

#[test]
fn the_last_node_dying_fails_jobs_per_job_instead_of_wedging() {
    // A 1-node cluster loses its node with work outstanding: collect
    // returns short (taken + failed = submitted), later submissions
    // fail immediately, and shutdown still works. The old behavior —
    // recv blocking forever — is the bug this pins closed.
    let p = profile(6004);
    let specs = p.specs(4);
    let (mut router, controllers) = chaos_local_cluster(1, 1, ChaosConfig::quiet);
    for &s in &specs {
        router.submit(s);
    }
    controllers[0].kill();
    let mut out = Vec::new();
    let taken = router.collect(4, &mut out);
    assert_eq!(
        taken + router.failed().len(),
        4,
        "every job resolves: served before the kill, or failed by it"
    );
    assert_eq!(router.outstanding(), 0, "nothing may be left dangling");
    assert_eq!(router.nodes(), 0);
    assert_eq!(router.failed_nodes(), &[0]);

    // With no nodes left, new work fails terminally and immediately.
    let failed_before = router.failed().len();
    router.submit(p.specs(5)[4]);
    assert_eq!(router.failed().len(), failed_before + 1);
    router.shutdown();
}

#[test]
fn duplicated_and_delayed_events_are_absorbed_as_stale() {
    // A flaky (but live) cluster: both nodes duplicate half their
    // events and delay a fifth. The router must tolerate every replay
    // — counting them, not crashing on them — and results must be
    // bit-identical to the clean run.
    let p = profile(6005);
    let specs = p.specs(30);
    let want = ground_truth(&specs);

    let (mut router, _controllers) = chaos_local_cluster(2, 1, |id| ChaosConfig {
        duplicate_milli: 500,
        delay_milli: 200,
        ..ChaosConfig::quiet(17 + id)
    });
    let mut out = Vec::new();
    router.run_batch(&specs, &mut out);

    assert_eq!(out.len(), 30);
    assert_eq!(fingerprints(&out), want, "event replay changed results");
    assert!(router.stale_events() > 0, "the schedule must actually have duplicated events");
    assert!(router.failed().is_empty());
    assert!(router.failed_nodes().is_empty(), "flaky events alone must not kill a node");
    router.shutdown();
}

#[test]
fn remove_node_drains_gracefully_and_changes_no_bits() {
    // The planned inverse of add_node, driven mid-stream on the
    // profile workload: half the jobs in flight when a node is drained
    // out. Results bit-identical, the drained node's telemetry
    // survives in the merged view, and nothing counts as a failure.
    let p = profile(6006);
    let specs = p.specs(32);
    let want = ground_truth(&specs);

    let handles: Vec<(u64, Box<dyn NodeHandle>)> = (0..3u64)
        .map(|id| (id, Box::new(LocalNode::start(node_config(1))) as Box<dyn NodeHandle>))
        .collect();
    let mut router = Router::new(handles, 8);
    for &s in &specs[..16] {
        router.submit(s);
    }
    let drained = router.remove_node(1).expect("owned local node reports final stats");
    assert_eq!(router.nodes(), 2);
    for &s in &specs[16..] {
        router.submit(s);
    }
    let mut out = Vec::new();
    assert_eq!(router.collect(32, &mut out), 32);

    assert_eq!(fingerprints(&out), want, "remove_node changed results");
    let stats = router.shutdown();
    assert_eq!(
        stats.merged.jobs_completed, 32,
        "the drained node's {} served jobs must stay in the merged totals",
        drained.jobs_completed
    );
    assert!(stats.failed_nodes.is_empty(), "a planned drain is not a failure");
    assert_eq!(stats.jobs_failed, 0);
}
