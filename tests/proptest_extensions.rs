//! Property-based invariants for the extension stack (threshold, adaptive,
//! alternative designs, radix/histogram primitives).

use proptest::prelude::*;

use pooled_data::adaptive::{counting_dorfman, quantitative_bisect, CountOracle};
use pooled_data::core::mn_general::GeneralMnDecoder;
use pooled_data::design::{CsrDesign, DesignKind, PoolingDesign};
use pooled_data::par::histogram::par_histogram;
use pooled_data::par::radix::{par_radix_sort_pairs, radix_rank_desc};
use pooled_data::prelude::*;
use pooled_data::threshold::ThresholdChannel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Radix sort agrees with the standard library on arbitrary inputs.
    #[test]
    fn radix_sort_matches_std(mut keys in proptest::collection::vec(any::<u64>(), 0..3000)) {
        let mut pairs: Vec<(u64, u32)> =
            keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        par_radix_sort_pairs(&mut pairs);
        keys.sort_unstable();
        prop_assert!(pairs.iter().map(|&(k, _)| k).eq(keys.iter().copied()));
        // Stability: ties keep ascending payload order.
        for w in pairs.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }

    /// Descending score ranking agrees with a comparison sort.
    #[test]
    fn radix_rank_matches_comparison(scores in proptest::collection::vec(any::<i64>(), 0..2000)) {
        let got = radix_rank_desc(&scores);
        let mut want: Vec<u32> = (0..scores.len() as u32).collect();
        want.sort_by_key(|&i| (std::cmp::Reverse(scores[i as usize]), i));
        prop_assert_eq!(got, want);
    }

    /// Histogram counts are exact for any bin function.
    #[test]
    fn histogram_matches_sequential(
        data in proptest::collection::vec(any::<u32>(), 0..5000),
        bins in 1usize..64,
    ) {
        let par = par_histogram(&data, bins, |&x| x as usize % bins);
        let mut seq = vec![0u64; bins];
        for &x in &data {
            seq[x as usize % bins] += 1;
        }
        prop_assert_eq!(par, seq);
    }

    /// Quantitative bisection is exact on arbitrary signals and respects
    /// its query bound.
    #[test]
    fn bisect_exact_on_arbitrary_signals(
        n in 1usize..600,
        seed in any::<u64>(),
        density in 0.0f64..1.0,
    ) {
        let k = ((n as f64) * density) as usize;
        let sigma = Signal::random(n, k.min(n), &mut SeedSequence::new(seed).rng());
        let mut oracle = CountOracle::new(&sigma);
        let res = quantitative_bisect(&mut oracle);
        prop_assert_eq!(&res.estimate, &sigma);
        let bound = 1 + 2 * n; // trivial upper bound: every split queries once
        prop_assert!(res.queries <= bound);
    }

    /// Counting Dorfman is exact for every group size.
    #[test]
    fn dorfman_exact_for_any_group_size(
        n in 1usize..400,
        g in 1usize..50,
        seed in any::<u64>(),
        density in 0.0f64..1.0,
    ) {
        let k = (((n as f64) * density) as usize).min(n);
        let sigma = Signal::random(n, k, &mut SeedSequence::new(seed).rng());
        let mut oracle = CountOracle::new(&sigma);
        let res = counting_dorfman(&mut oracle, g);
        prop_assert_eq!(&res.estimate, &sigma);
        prop_assert!(res.rounds <= 2);
    }

    /// Threshold bits are monotone in T and match the load definition.
    #[test]
    fn threshold_bits_monotone_and_faithful(
        n in 2usize..200,
        m in 1usize..30,
        seed in any::<u64>(),
    ) {
        let seeds = SeedSequence::new(seed);
        let k = (n / 4).max(1);
        let sigma = Signal::random(n, k, &mut seeds.child("sig", 0).rng());
        let design = CsrDesign::sample(n, m, (n / 2).max(1), &seeds.child("d", 0));
        let mut prev: Option<Vec<u8>> = None;
        for t in 1..=4u64 {
            let bits = ThresholdChannel::new(t).execute(&design, &sigma);
            // Faithfulness against a direct load computation.
            #[allow(clippy::needless_range_loop)]
            for q in 0..m {
                let mut load = 0u64;
                design.for_each_distinct(q, &mut |e, _| load += sigma.get(e) as u64);
                prop_assert_eq!(bits[q], u8::from(load >= t));
            }
            if let Some(p) = prev {
                // Monotone: raising T can only turn bits off.
                prop_assert!(p.iter().zip(&bits).all(|(&a, &b)| a >= b));
            }
            prev = Some(bits);
        }
    }

    /// Every design family conserves its own pool-size accounting: draws
    /// visited equal `pool_len`, distinct ≤ draws, and multiplicities sum
    /// to the draw count.
    #[test]
    fn design_families_conserve_draws(
        n in 2usize..300,
        m in 1usize..25,
        seed in any::<u64>(),
        kind_idx in 0usize..4,
    ) {
        let kind = DesignKind::ALL[kind_idx];
        let d = kind.sample(n, m, 0.5, &SeedSequence::new(seed));
        for q in 0..d.m() {
            let mut draws = 0usize;
            d.for_each_draw(q, &mut |_| draws += 1);
            prop_assert_eq!(draws, d.pool_len(q));
            let mut mult_sum = 0usize;
            let mut distinct = 0usize;
            d.for_each_distinct(q, &mut |_, c| {
                mult_sum += c as usize;
                distinct += 1;
            });
            prop_assert_eq!(mult_sum, draws);
            prop_assert!(distinct <= draws.max(1));
            prop_assert_eq!(distinct, d.distinct_len(q));
        }
    }

    /// The Γ-general decoder ranks identically to the classic decoder on
    /// the paper's design whenever `Γ = n/2` **exactly** (even `n`): then
    /// `n·Ψ − kΓΔ* = (n/2)·(2Ψ − kΔ*)`. For odd `n` the classic score's
    /// `k/2` centering assumes a pool fraction the design cannot provide
    /// (`⌊n/2⌋/n ≠ 1/2`) and the two decoders may legitimately disagree on
    /// marginal instances — the general decoder is the exactly-centered
    /// one.
    #[test]
    fn general_and_classic_decoders_rank_identically(
        half_n in 5usize..150,
        m in 1usize..60,
        seed in any::<u64>(),
    ) {
        let n = 2 * half_n;
        let seeds = SeedSequence::new(seed);
        let k = (n / 10).max(1);
        let sigma = Signal::random(n, k, &mut seeds.child("sig", 0).rng());
        let design = CsrDesign::sample(n, m, n / 2, &seeds.child("d", 0));
        let y = execute_queries(&design, &sigma);
        let classic = MnDecoder::new(k).decode(&design, &y);
        let general = GeneralMnDecoder::new(k).decode(&design, &y);
        prop_assert_eq!(classic.estimate, general.estimate);
    }
}
