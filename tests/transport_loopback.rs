//! The transport's correctness contract, end to end over loopback TCP.
//!
//! Three layers, strictest first:
//!
//! 1. **Codec** — property-tested round-trips of random `JobSpec` /
//!    `JobResult` frames, plus rejection of every truncation and every
//!    single-byte corruption (the checksum covers header and payload).
//! 2. **Conversation** — BUSY retry under a deliberately tiny submission
//!    queue, REJECT for infeasible specs, multiple concurrent tenants on
//!    one server each seeing exactly their own completions.
//! 3. **The headline invariant** — a `LoadProfile` replayed over TCP
//!    yields result fingerprints **bit-identical** to in-process
//!    `run_batch` submission, across worker counts and design-affinity
//!    batch windows.

use std::sync::Arc;

use proptest::prelude::*;

use pooled_data::design::factory::DesignKind;
use pooled_data::engine::engine::{Engine, EngineConfig};
use pooled_data::engine::job::{DecoderKind, DesignSpec, JobResult, JobSpec};
use pooled_data::engine::traffic::LoadProfile;
use pooled_data::engine::transport::frame::{decode_frame, encode_frame, Frame};
use pooled_data::engine::transport::{TransportClient, TransportConfig, TransportServer};
use pooled_data::lab::split::LatencySplit;

fn spec_from(rng_words: [u64; 8]) -> JobSpec {
    JobSpec {
        id: rng_words[0],
        n: (rng_words[1] % (1 << 40)) as usize,
        k: (rng_words[2] % (1 << 40)) as usize,
        m: (rng_words[3] % (1 << 40)) as usize,
        design: DesignSpec {
            kind: DesignKind::ALL[(rng_words[4] % DesignKind::ALL.len() as u64) as usize],
            c_milli: (rng_words[4] >> 32) as u32,
            seed: rng_words[5],
        },
        decoder: DecoderKind::ALL[(rng_words[6] % DecoderKind::ALL.len() as u64) as usize],
        seed: rng_words[7],
        query_cost_micros: (rng_words[6] >> 32) as u32,
    }
}

fn result_from(w: [u64; 8]) -> JobResult {
    JobResult {
        id: w[0],
        decoder: DecoderKind::ALL[(w[1] % DecoderKind::ALL.len() as u64) as usize],
        exact: w[1] & (1 << 60) != 0,
        hits: w[2] as u32,
        weight: (w[2] >> 32) as u32,
        support_digest: w[3],
        score_digest: w[4],
        decode_micros: w[5],
        queue_micros: w[6],
        total_micros: w[7],
        worker: (w[1] >> 32) as u32 & 0xFFFF,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Codec round-trip: struct → bytes → the same struct, for random
    /// field values across the whole wire domain.
    #[test]
    fn spec_frames_round_trip(
        a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), d in any::<u64>(),
        e in any::<u64>(), f in any::<u64>(), g in any::<u64>(), h in any::<u64>(),
    ) {
        let spec = spec_from([a, b, c, d, e, f, g, h]);
        let mut buf = Vec::new();
        encode_frame(&Frame::Submit(spec), &mut buf);
        let (decoded, consumed) = decode_frame(&buf).expect("valid frame");
        prop_assert_eq!(decoded, Frame::Submit(spec));
        prop_assert_eq!(consumed, buf.len());
    }

    /// Same for results.
    #[test]
    fn result_frames_round_trip(
        a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), d in any::<u64>(),
        e in any::<u64>(), f in any::<u64>(), g in any::<u64>(), h in any::<u64>(),
    ) {
        let result = result_from([a, b, c, d, e, f, g, h]);
        let mut buf = Vec::new();
        encode_frame(&Frame::Result(result), &mut buf);
        let (decoded, consumed) = decode_frame(&buf).expect("valid frame");
        prop_assert_eq!(decoded, Frame::Result(result));
        prop_assert_eq!(consumed, buf.len());
    }

    /// A random truncation point never yields a frame, and a random
    /// single-byte corruption is always detected (checksum or a header
    /// check — either way, never a silently different frame).
    #[test]
    fn torn_and_corrupted_frames_are_rejected(
        a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), d in any::<u64>(),
        cut_sel in any::<u64>(), flip_sel in any::<u64>(), flip_bit in 0u32..8,
    ) {
        let spec = spec_from([a, b, c, d, a ^ b, c ^ d, a ^ c, b ^ d]);
        let mut buf = Vec::new();
        encode_frame(&Frame::Submit(spec), &mut buf);
        let cut = (cut_sel % buf.len() as u64) as usize;
        prop_assert!(decode_frame(&buf[..cut]).is_err(), "truncation at {} accepted", cut);
        let flip = (flip_sel % buf.len() as u64) as usize;
        let mut corrupt = buf.clone();
        corrupt[flip] ^= 1 << flip_bit;
        prop_assert!(decode_frame(&corrupt).is_err(), "bit flip at {} accepted", flip);
    }
}

/// A small, fast profile mixing decoders and designs.
fn profile(seed: u64) -> LoadProfile {
    LoadProfile {
        distinct_designs: 2,
        decoders: vec![DecoderKind::Mn, DecoderKind::GeneralMn],
        query_cost: None,
        ..LoadProfile::default_mix(300, 5, 180, seed)
    }
}

fn engine(workers: usize, queue: usize, batch_window: usize) -> Arc<Engine> {
    Arc::new(Engine::start(EngineConfig {
        workers,
        queue_capacity: queue,
        results_capacity: queue,
        design_cache_capacity: 4,
        batch_window,
    }))
}

/// Fingerprint projection used by every cross-wire comparison.
fn fingerprints(results: &[JobResult]) -> Vec<(u64, u64)> {
    results.iter().map(|r| (r.id, r.fingerprint())).collect()
}

/// Serve the profile in-process (the pre-transport ground truth).
fn serve_in_process(p: &LoadProfile, jobs: usize, workers: usize, window: usize) -> Vec<JobResult> {
    let engine = Engine::start(EngineConfig {
        workers,
        queue_capacity: 16,
        results_capacity: 16,
        design_cache_capacity: 4,
        batch_window: window,
    });
    let mut out = Vec::new();
    engine.run_batch(&p.specs(jobs), &mut out);
    engine.shutdown();
    out
}

/// Serve the profile over loopback TCP.
fn serve_over_tcp(
    p: &LoadProfile,
    jobs: usize,
    workers: usize,
    window: usize,
    queue: usize,
) -> (Vec<JobResult>, u64) {
    let engine = engine(workers, queue, window);
    let server = TransportServer::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        TransportConfig { route_capacity: 32, ..TransportConfig::default() },
    )
    .expect("bind loopback");
    let mut client = TransportClient::connect(server.local_addr()).expect("connect loopback");
    let mut out = Vec::new();
    client.run_batch(&p.specs(jobs), &mut out).expect("tcp batch");
    let retries = client.busy_retries();
    drop(client);
    server.stop();
    Arc::try_unwrap(engine).ok().expect("server released the engine").shutdown();
    (out, retries)
}

#[test]
fn tcp_fingerprints_are_bit_identical_to_in_process() {
    // The headline invariant: same profile, same fingerprints, whether
    // jobs arrive through the in-process queue or over the wire — at one
    // worker and several, per-job and batched.
    let p = profile(1905);
    let jobs = 24;
    let want = fingerprints(&serve_in_process(&p, jobs, 1, 1));
    for (workers, window) in [(1, 1), (4, 1), (1, 4), (4, 4)] {
        let in_proc = fingerprints(&serve_in_process(&p, jobs, workers, window));
        assert_eq!(in_proc, want, "in-process determinism broke at {workers}w/{window}b");
        let (tcp, _) = serve_over_tcp(&p, jobs, workers, window, 16);
        assert_eq!(
            fingerprints(&tcp),
            want,
            "TCP results diverged at {workers} workers, batch window {window}"
        );
    }
}

#[test]
fn busy_backpressure_retries_until_everything_is_served() {
    // A 1-slot submission queue with pipelined submissions forces BUSY
    // replies; the client must absorb them and still serve the full
    // batch with fingerprints intact.
    let p = LoadProfile {
        query_cost: Some(pooled_data::lab::latency::LatencyModel::Fixed(500.0)),
        ..profile(7)
    };
    let jobs = 30;
    let want = fingerprints(&serve_in_process(&p, jobs, 1, 1));
    let (tcp, retries) = serve_over_tcp(&p, jobs, 2, 1, 1);
    assert_eq!(fingerprints(&tcp), want, "BUSY retries changed results");
    // Not asserted > 0 (timing-dependent), but with queue=1 and 500µs
    // jobs the retry path essentially always runs; print for the log.
    eprintln!("busy_backpressure test absorbed {retries} BUSY retries");
}

#[test]
fn infeasible_specs_are_rejected_not_served() {
    let engine = engine(1, 8, 1);
    let server =
        TransportServer::bind(Arc::clone(&engine), "127.0.0.1:0", TransportConfig::default())
            .expect("bind");
    let mut client = TransportClient::connect(server.local_addr()).expect("connect");
    let mut bad = profile(3).spec(0);
    bad.k = bad.n + 1; // infeasible: heavier than the universe
    client.submit(&bad).expect("submit");
    client.flush().expect("flush");
    match client.poll().expect("reply") {
        pooled_data::engine::transport::Reply::Rejected(id) => assert_eq!(id, bad.id),
        other => panic!("expected REJECT, got {other:?}"),
    }
    // The connection survives a reject: a good job still round-trips.
    let good = profile(3).spec(1);
    client.submit(&good).expect("submit good");
    client.flush().expect("flush good");
    match client.poll().expect("reply") {
        pooled_data::engine::transport::Reply::Result(r) => assert_eq!(r.id, good.id),
        other => panic!("expected RESULT, got {other:?}"),
    }
    drop(client);
    server.stop();
    Arc::try_unwrap(engine).ok().expect("engine released").shutdown();
}

#[test]
fn concurrent_tenants_see_exactly_their_own_results() {
    let engine = engine(3, 16, 1);
    let server =
        TransportServer::bind(Arc::clone(&engine), "127.0.0.1:0", TransportConfig::default())
            .expect("bind");
    let addr = server.local_addr();
    let p = profile(11);
    let all = p.specs(40);
    let (first_half, second_half) = all.split_at(20);
    let spawn = |specs: Vec<JobSpec>| {
        std::thread::spawn(move || {
            let mut client = TransportClient::connect(addr).expect("connect");
            let mut out = Vec::new();
            client.run_batch(&specs, &mut out).expect("tenant batch");
            out
        })
    };
    let a = spawn(first_half.to_vec());
    let b = spawn(second_half.to_vec());
    let got_a = a.join().expect("tenant A");
    let got_b = b.join().expect("tenant B");
    let ids = |rs: &[JobResult]| rs.iter().map(|r| r.id).collect::<Vec<_>>();
    assert_eq!(ids(&got_a), (0..20).collect::<Vec<u64>>());
    assert_eq!(ids(&got_b), (20..40).collect::<Vec<u64>>());
    // And both tenants' results match the in-process ground truth.
    let want = fingerprints(&serve_in_process(&p, 40, 1, 1));
    let mut merged = got_a;
    merged.extend_from_slice(&got_b);
    merged.sort_unstable_by_key(|r| r.id);
    assert_eq!(fingerprints(&merged), want);
    server.stop();
    Arc::try_unwrap(engine).ok().expect("engine released").shutdown();
}

#[test]
fn oversized_feasible_specs_are_rejected_at_the_door() {
    // `is_feasible` admits any self-consistent shape; the server must
    // still refuse a well-formed spec whose buffers would exhaust memory
    // (n = 2^21 here against a 2^20 cap standing in for "astronomical").
    let engine = engine(1, 8, 1);
    let server = TransportServer::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        TransportConfig { route_capacity: 8, max_dimension: 1 << 20, ..TransportConfig::default() },
    )
    .expect("bind");
    let mut client = TransportClient::connect(server.local_addr()).expect("connect");
    let mut huge = profile(5).spec(0);
    huge.n = 1 << 21;
    huge.k = 1;
    assert!(huge.is_feasible(), "the attack spec passes semantic validation");
    client.submit(&huge).expect("submit");
    client.flush().expect("flush");
    match client.poll().expect("reply") {
        pooled_data::engine::transport::Reply::Rejected(id) => assert_eq!(id, huge.id),
        other => panic!("expected REJECT for the oversized spec, got {other:?}"),
    }
    drop(client);
    server.stop();
    Arc::try_unwrap(engine).ok().expect("engine released").shutdown();
}

#[test]
fn a_tenant_at_its_window_gets_busy_not_a_parked_worker() {
    // Per-connection in-flight cap: with route_capacity 1 and a 100 ms
    // job occupying the only slot, the second submission must bounce
    // with BUSY *immediately* — the server never lets more results
    // accumulate than the tenant's queue can hold, which is what keeps a
    // stalled tenant from ever blocking an engine worker.
    let engine = engine(2, 8, 1);
    let server = TransportServer::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        TransportConfig { route_capacity: 1, ..TransportConfig::default() },
    )
    .expect("bind");
    let mut client = TransportClient::connect(server.local_addr()).expect("connect");
    let p = LoadProfile {
        query_cost: Some(pooled_data::lab::latency::LatencyModel::Fixed(100_000.0)),
        ..profile(13)
    };
    let first = p.spec(0);
    let second = p.spec(1);
    client.submit(&first).expect("submit 1");
    client.submit(&second).expect("submit 2");
    client.flush().expect("flush");
    // The BUSY for job 2 must arrive while job 1 (100 ms) is still in
    // service — long before its RESULT.
    match client.poll().expect("first reply") {
        pooled_data::engine::transport::Reply::Busy(id) => assert_eq!(id, second.id),
        other => panic!("expected BUSY for the over-window job, got {other:?}"),
    }
    match client.poll().expect("second reply") {
        pooled_data::engine::transport::Reply::Result(r) => assert_eq!(r.id, first.id),
        other => panic!("expected RESULT for job 1, got {other:?}"),
    }
    drop(client);
    server.stop();
    Arc::try_unwrap(engine).ok().expect("engine released").shutdown();
}

#[test]
fn disconnected_tenants_do_not_leak_connections() {
    // Regression: the server kept a socket clone per connection for its
    // whole lifetime — one leaked fd per tenant that ever connected.
    let engine = engine(1, 8, 1);
    let server =
        TransportServer::bind(Arc::clone(&engine), "127.0.0.1:0", TransportConfig::default())
            .expect("bind");
    for round in 0..3 {
        let mut client = TransportClient::connect(server.local_addr()).expect("connect");
        let mut out = Vec::new();
        client.run_batch(&profile(round).specs(4), &mut out).expect("batch");
        assert_eq!(out.len(), 4);
        drop(client);
    }
    // Teardown is asynchronous (reader sees EOF, joins its writer, then
    // deregisters); poll briefly instead of racing it.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.live_connections() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(server.live_connections(), 0, "dead connections must deregister");
    server.stop();
    Arc::try_unwrap(engine).ok().expect("engine released").shutdown();
}

#[test]
fn latency_split_accounts_every_job() {
    let engine = engine(2, 16, 1);
    let server =
        TransportServer::bind(Arc::clone(&engine), "127.0.0.1:0", TransportConfig::default())
            .expect("bind");
    let mut client = TransportClient::connect(server.local_addr()).expect("connect");
    let specs = profile(23).specs(16);
    let mut out = Vec::new();
    let mut split = LatencySplit::new();
    client.run_batch_split(&specs, &mut out, &mut split).expect("batch");
    assert_eq!(out.len(), 16);
    assert_eq!(split.count(), 16, "one split record per served job");
    drop(client);
    server.stop();
    Arc::try_unwrap(engine).ok().expect("engine released").shutdown();
}
