//! Failure injection: corrupt inputs, adversarial results, and robustness
//! envelopes — across the decoder stack (below) and the cluster tier
//! (the `cluster_tier` module: a Byzantine wire peer forging RESULT
//! frames that arrive torn or bit-flipped).

use pooled_data::core::refine::{refine, RefineConfig};
use pooled_data::design::CsrDesign;
use pooled_data::prelude::*;
use pooled_data::threshold::{ThresholdChannel, ThresholdMnDecoder};

fn setup(n: usize, k: usize, m: usize, seed: u64) -> (Signal, CsrDesign, Vec<u64>) {
    let seeds = SeedSequence::new(seed);
    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    let design = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
    let y = execute_queries(&design, &sigma);
    (sigma, design, y)
}

/// A handful of corrupted query results degrade MN gracefully: the decoder
/// still recovers when the budget has slack, because each entry's score
/// averages over ~0.39·m queries.
#[test]
fn mn_tolerates_sparse_corruption() {
    let (n, k, m) = (1000usize, 8usize, 450usize);
    let mut ok = 0;
    for seed in 0..8u64 {
        let (sigma, design, mut y) = setup(n, k, m, 17_000 + seed);
        // Corrupt 2% of the results by ±k (worst-case magnitude for a
        // query's one-count).
        let mut rng = SeedSequence::new(seed).child("corrupt", 0).rng();
        for _ in 0..m / 50 {
            let q = rng.index(m);
            y[q] = y[q].saturating_add_signed(if rng.flip() { k as i64 } else { -(k as i64) });
        }
        let out = MnDecoder::new(k).decode(&design, &y);
        ok += (out.estimate == sigma) as u32;
    }
    assert!(ok >= 7, "only {ok}/8 under 2% corruption");
}

/// Total corruption is not survivable — and must not panic either.
#[test]
fn mn_survives_garbage_input_without_panicking() {
    let (_, design, _) = setup(500, 6, 100, 3);
    let garbage: Vec<u64> = (0..100).map(|q| (q * 7919) as u64 % 251).collect();
    let out = MnDecoder::new(6).decode(&design, &garbage);
    assert_eq!(out.estimate.weight(), 6, "weight contract holds even on garbage");
}

/// Refinement on corrupted results still never *increases* the residual,
/// and stays within its swap budget.
#[test]
fn refine_is_safe_under_corruption() {
    let (_, design, mut y) = setup(800, 9, 200, 4);
    for q in (0..200).step_by(17) {
        y[q] += 3;
    }
    let out = MnDecoder::new(9).decode(&design, &y);
    let cfg = RefineConfig { window: 16, max_swaps: 40 };
    let refined = refine(&design, &y, &out.scores, &out.estimate, &cfg);
    assert!(refined.final_residual <= refined.initial_residual);
    assert!(refined.swaps <= 40);
    // With inconsistent y there may be no consistent vector at all; the
    // refiner must terminate and say so rather than loop.
    if refined.final_residual > 0 {
        assert!(!refined.consistent);
    }
}

/// Flipped threshold bits: the score decoder degrades smoothly — a few
/// flipped bits leave recovery intact at a generous budget.
#[test]
fn threshold_decoder_tolerates_bit_flips() {
    let (n, k, t, m) = (800usize, 7usize, 2u64, 1800usize);
    let mut ok = 0;
    for seed in 0..8u64 {
        let seeds = SeedSequence::new(23_000 + seed);
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let design =
            pooled_data::threshold::recommended_design(n, k, t, m, &seeds.child("design", 0));
        let mut bits = ThresholdChannel::new(t).execute(&design, &sigma);
        let mut rng = seeds.child("flips", 0).rng();
        for _ in 0..m / 100 {
            let q = rng.index(m);
            bits[q] ^= 1;
        }
        let out = ThresholdMnDecoder::new(k).decode(&design, &bits);
        ok += (out.estimate == sigma) as u32;
    }
    assert!(ok >= 7, "only {ok}/8 with 1% flipped bits");
}

/// Dimension mismatches fail loudly everywhere, not silently.
#[test]
fn dimension_mismatches_panic() {
    let (_, design, y) = setup(300, 5, 60, 5);
    let r1 = std::panic::catch_unwind(|| {
        let _ = MnDecoder::new(5).decode(&design, &y[..59]);
    });
    assert!(r1.is_err(), "short y must panic");
    let sigma_wrong = Signal::from_support(301, vec![0]);
    let r2 = std::panic::catch_unwind(|| {
        let _ = execute_queries(&design, &sigma_wrong);
    });
    assert!(r2.is_err(), "wrong-n signal must panic");
}

/// k mis-specification: decoding with k′ > k yields a weight-k′ estimate
/// that still contains (nearly) the whole support — capturing all of it is
/// harder than ranking it first (the subset-select effect), so the
/// contract is "no more than one straggler" at a generous budget.
#[test]
fn overestimated_k_still_captures_support() {
    let mut worst = 8usize;
    for seed in 0..6u64 {
        let (sigma, design, y) = setup(1000, 8, 600, 6 + seed);
        let out = MnDecoder::new(16).decode(&design, &y); // k′ = 2k
        assert_eq!(out.estimate.weight(), 16);
        let captured = sigma.support().iter().filter(|&&i| out.estimate.is_one(i)).count();
        worst = worst.min(captured);
    }
    assert!(worst >= 7, "a top-2k list lost {} true ones", 8 - worst);
}

/// Cluster-tier failure injection: a **Byzantine node** on the wire.
///
/// The adversary here is worse than a dead peer: it answers — with a
/// forged RESULT frame carrying wrong digests — but the frame arrives
/// damaged (truncated mid-frame, or with a flipped payload bit). The
/// contract under test: the checksum/length layer rejects the frame,
/// the connection fails closed, the router fails the node over, and
/// the job is **re-served correctly on the standby** — never silently
/// miscounted from the forged bytes.
mod cluster_tier {
    use std::io::Write;
    use std::net::{Shutdown, SocketAddr, TcpListener};

    use pooled_data::engine::cluster::{LocalNode, Membership, NodeHandle, RemoteNode, Router};
    use pooled_data::engine::engine::EngineConfig;
    use pooled_data::engine::job::{DecoderKind, JobResult, JobSpec};
    use pooled_data::engine::traffic::LoadProfile;
    use pooled_data::engine::transport::frame::{encode_frame, read_frame, Frame, HEADER_LEN};

    #[derive(Clone, Copy)]
    enum Sabotage {
        /// Flip one payload byte after the checksum is computed: the
        /// frame parses as damaged, not as a different valid result.
        BitFlip,
        /// Send only a prefix of the frame, then slam the connection.
        Truncate,
    }

    /// A server that forges a plausible-but-wrong RESULT for every
    /// SUBMIT it reads, delivered via `mode`'s damage.
    fn byzantine_server(mode: Sabotage) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
            let mut scratch = Vec::new();
            loop {
                match read_frame(&mut reader, &mut scratch) {
                    Ok(Some(Frame::Submit(spec))) => {
                        // Wrong on purpose: if these bytes ever reach a
                        // fingerprint, the test's comparison catches it.
                        let forged = JobResult {
                            id: spec.id,
                            decoder: spec.decoder,
                            exact: true,
                            hits: spec.k as u32,
                            weight: spec.k as u32,
                            support_digest: 0xBAD0_BAD0_BAD0_BAD0,
                            score_digest: 0xBAD1_BAD1_BAD1_BAD1,
                            decode_micros: 1,
                            queue_micros: 1,
                            total_micros: 2,
                            worker: 0,
                        };
                        let mut buf = Vec::new();
                        encode_frame(&Frame::Result(forged), &mut buf);
                        match mode {
                            Sabotage::BitFlip => {
                                buf[HEADER_LEN + 8] ^= 0x40;
                                if stream.write_all(&buf).is_err() {
                                    return;
                                }
                                let _ = stream.flush();
                            }
                            Sabotage::Truncate => {
                                let _ = stream.write_all(&buf[..buf.len() - 5]);
                                let _ = stream.flush();
                                let _ = stream.shutdown(Shutdown::Both);
                                return;
                            }
                        }
                    }
                    // PREWARM and anything else: ignore and keep reading.
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => return,
                }
            }
        });
        (addr, handle)
    }

    fn node_config() -> EngineConfig {
        EngineConfig {
            workers: 1,
            queue_capacity: 8,
            results_capacity: 8,
            design_cache_capacity: 8,
            batch_window: 1,
        }
    }

    /// A spec whose `DesignKey` the 2-node membership `[0, 1]` routes
    /// to node 0 — the Byzantine one.
    fn spec_owned_by_evil_node() -> JobSpec {
        let membership = Membership::new(vec![0, 1]);
        let p = LoadProfile {
            distinct_designs: 6,
            decoders: vec![DecoderKind::Mn],
            query_cost: None,
            ..LoadProfile::default_mix(300, 5, 180, 909)
        };
        p.specs(64)
            .into_iter()
            .find(|s| membership.owner(&s.design_key()) == 0)
            .expect("some key must land on node 0")
    }

    fn forged_frames_are_rejected_and_the_job_reserved(mode: Sabotage) {
        let spec = spec_owned_by_evil_node();
        // Ground truth from an honest bare node.
        let truth = {
            let node = LocalNode::start(node_config());
            node.submit(spec).expect("submit");
            let event = node.recv().expect("one result");
            let pooled_data::engine::cluster::NodeEvent::Result(r) = event else {
                panic!("expected a result event");
            };
            Box::new(node).shutdown();
            r.fingerprint()
        };

        let (addr, server) = byzantine_server(mode);
        let evil: Box<dyn NodeHandle> =
            Box::new(RemoteNode::connect(addr).expect("connect loopback"));
        let honest: Box<dyn NodeHandle> = Box::new(LocalNode::start(node_config()));
        let mut router = Router::new(vec![(0, evil), (1, honest)], 4);

        router.submit(spec);
        let mut out = Vec::new();
        assert_eq!(router.collect(1, &mut out), 1, "the job must complete, not vanish");
        assert_eq!(out[0].id, spec.id);
        assert_eq!(
            out[0].fingerprint(),
            truth,
            "the forged result leaked through — the job was silently miscounted"
        );
        assert_ne!(out[0].support_digest, 0xBAD0_BAD0_BAD0_BAD0, "forged digest surfaced");
        assert!(router.failed().is_empty(), "the job must be re-served, not failed");
        assert_eq!(router.failed_nodes(), &[0], "the Byzantine node must be failed over");
        router.shutdown();
        server.join().expect("byzantine server panicked");
    }

    #[test]
    fn a_bit_flipped_result_frame_fails_the_node_not_the_job() {
        forged_frames_are_rejected_and_the_job_reserved(Sabotage::BitFlip);
    }

    #[test]
    fn a_truncated_result_frame_fails_the_node_not_the_job() {
        forged_frames_are_rejected_and_the_job_reserved(Sabotage::Truncate);
    }
}
