//! Failure injection: corrupt inputs, adversarial results, and robustness
//! envelopes across the decoder stack.

use pooled_data::core::refine::{refine, RefineConfig};
use pooled_data::design::CsrDesign;
use pooled_data::prelude::*;
use pooled_data::threshold::{ThresholdChannel, ThresholdMnDecoder};

fn setup(n: usize, k: usize, m: usize, seed: u64) -> (Signal, CsrDesign, Vec<u64>) {
    let seeds = SeedSequence::new(seed);
    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    let design = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
    let y = execute_queries(&design, &sigma);
    (sigma, design, y)
}

/// A handful of corrupted query results degrade MN gracefully: the decoder
/// still recovers when the budget has slack, because each entry's score
/// averages over ~0.39·m queries.
#[test]
fn mn_tolerates_sparse_corruption() {
    let (n, k, m) = (1000usize, 8usize, 450usize);
    let mut ok = 0;
    for seed in 0..8u64 {
        let (sigma, design, mut y) = setup(n, k, m, 17_000 + seed);
        // Corrupt 2% of the results by ±k (worst-case magnitude for a
        // query's one-count).
        let mut rng = SeedSequence::new(seed).child("corrupt", 0).rng();
        for _ in 0..m / 50 {
            let q = rng.index(m);
            y[q] = y[q].saturating_add_signed(if rng.flip() { k as i64 } else { -(k as i64) });
        }
        let out = MnDecoder::new(k).decode(&design, &y);
        ok += (out.estimate == sigma) as u32;
    }
    assert!(ok >= 7, "only {ok}/8 under 2% corruption");
}

/// Total corruption is not survivable — and must not panic either.
#[test]
fn mn_survives_garbage_input_without_panicking() {
    let (_, design, _) = setup(500, 6, 100, 3);
    let garbage: Vec<u64> = (0..100).map(|q| (q * 7919) as u64 % 251).collect();
    let out = MnDecoder::new(6).decode(&design, &garbage);
    assert_eq!(out.estimate.weight(), 6, "weight contract holds even on garbage");
}

/// Refinement on corrupted results still never *increases* the residual,
/// and stays within its swap budget.
#[test]
fn refine_is_safe_under_corruption() {
    let (_, design, mut y) = setup(800, 9, 200, 4);
    for q in (0..200).step_by(17) {
        y[q] += 3;
    }
    let out = MnDecoder::new(9).decode(&design, &y);
    let cfg = RefineConfig { window: 16, max_swaps: 40 };
    let refined = refine(&design, &y, &out.scores, &out.estimate, &cfg);
    assert!(refined.final_residual <= refined.initial_residual);
    assert!(refined.swaps <= 40);
    // With inconsistent y there may be no consistent vector at all; the
    // refiner must terminate and say so rather than loop.
    if refined.final_residual > 0 {
        assert!(!refined.consistent);
    }
}

/// Flipped threshold bits: the score decoder degrades smoothly — a few
/// flipped bits leave recovery intact at a generous budget.
#[test]
fn threshold_decoder_tolerates_bit_flips() {
    let (n, k, t, m) = (800usize, 7usize, 2u64, 1800usize);
    let mut ok = 0;
    for seed in 0..8u64 {
        let seeds = SeedSequence::new(23_000 + seed);
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let design =
            pooled_data::threshold::recommended_design(n, k, t, m, &seeds.child("design", 0));
        let mut bits = ThresholdChannel::new(t).execute(&design, &sigma);
        let mut rng = seeds.child("flips", 0).rng();
        for _ in 0..m / 100 {
            let q = rng.index(m);
            bits[q] ^= 1;
        }
        let out = ThresholdMnDecoder::new(k).decode(&design, &bits);
        ok += (out.estimate == sigma) as u32;
    }
    assert!(ok >= 7, "only {ok}/8 with 1% flipped bits");
}

/// Dimension mismatches fail loudly everywhere, not silently.
#[test]
fn dimension_mismatches_panic() {
    let (_, design, y) = setup(300, 5, 60, 5);
    let r1 = std::panic::catch_unwind(|| {
        let _ = MnDecoder::new(5).decode(&design, &y[..59]);
    });
    assert!(r1.is_err(), "short y must panic");
    let sigma_wrong = Signal::from_support(301, vec![0]);
    let r2 = std::panic::catch_unwind(|| {
        let _ = execute_queries(&design, &sigma_wrong);
    });
    assert!(r2.is_err(), "wrong-n signal must panic");
}

/// k mis-specification: decoding with k′ > k yields a weight-k′ estimate
/// that still contains (nearly) the whole support — capturing all of it is
/// harder than ranking it first (the subset-select effect), so the
/// contract is "no more than one straggler" at a generous budget.
#[test]
fn overestimated_k_still_captures_support() {
    let mut worst = 8usize;
    for seed in 0..6u64 {
        let (sigma, design, y) = setup(1000, 8, 600, 6 + seed);
        let out = MnDecoder::new(16).decode(&design, &y); // k′ = 2k
        assert_eq!(out.estimate.weight(), 16);
        let captured = sigma.support().iter().filter(|&&i| out.estimate.is_one(i)).count();
        worst = worst.min(captured);
    }
    assert!(worst >= 7, "a top-2k list lost {} true ones", 8 - worst);
}
