//! Regression pins for the extension experiments' headline findings, at
//! reduced trial counts. Each test encodes a *direction* the full-scale
//! experiment measured (EXPERIMENTS.md records the full numbers); if a
//! refactor flips one of these, something real broke.

use pooled_data::core::mn_general::GeneralMnDecoder;
use pooled_data::core::refine::{refine, RefineConfig};
use pooled_data::design::{CsrDesign, DesignKind};
use pooled_data::prelude::*;

fn success_count<F>(trials: u64, base_seed: u64, mut trial: F) -> u32
where
    F: FnMut(SeedSequence) -> bool,
{
    (0..trials).filter(|&t| trial(SeedSequence::new(base_seed + t))).count() as u32
}

/// EXT-GAMMA headline: at fixed sub-threshold m the paper's Γ = n/2 beats
/// Γ = 2n decisively (measured m50: 201 vs 539 at n = 1000, θ = 0.3).
#[test]
fn gamma_half_beats_gamma_two_n() {
    let (n, k, m, trials) = (1000usize, 8usize, 260usize, 12u64);
    let run = |gamma: usize, base: u64| {
        success_count(trials, base, |seeds| {
            let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
            let d = CsrDesign::sample(n, m, gamma, &seeds.child("design", 0));
            let y = execute_queries(&d, &sigma);
            GeneralMnDecoder::new(k).decode(&d, &y).estimate == sigma
        })
    };
    let (half, double) = (run(n / 2, 60_000), run(2 * n, 60_000));
    assert!(
        half >= double + 3,
        "Γ=n/2: {half}/{trials} should clearly beat Γ=2n: {double}/{trials}"
    );
}

/// EXT-REFINE headline: at m = 150 (half the finite-size MN threshold)
/// refinement lifts the success rate from ~0.2 to ~1.0.
#[test]
fn refinement_dominates_at_half_threshold() {
    let (n, k, m, trials) = (1000usize, 8usize, 150usize, 12u64);
    let mut plain = 0u32;
    let refined = success_count(trials, 61_000, |seeds| {
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let d = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
        let y = execute_queries(&d, &sigma);
        let out = MnDecoder::new(k).decode(&d, &y);
        plain += (out.estimate == sigma) as u32;
        let r = refine(&d, &y, &out.scores, &out.estimate, &RefineConfig::default());
        r.estimate == sigma
    });
    assert!(
        refined >= plain + 4,
        "refined {refined}/{trials} should clearly beat plain {plain}/{trials} at m={m}"
    );
}

/// EXT-DSGN headline: without-replacement pools are never worse than the
/// paper's with-replacement pools at matched density (measured m50: 178
/// vs 207), and entry-regular is the weakest family (m50: 237).
#[test]
fn design_family_ordering() {
    let (n, k, m, trials) = (1000usize, 8usize, 205usize, 16u64);
    let run = |kind: DesignKind, base: u64| {
        success_count(trials, base, |seeds| {
            let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
            let d = kind.sample(n, m, 0.5, &seeds.child(kind.name(), 0));
            let y = execute_queries(&d, &sigma);
            GeneralMnDecoder::new(k).decode(&d, &y).estimate == sigma
        })
    };
    let no_replace = run(DesignKind::NoReplace, 62_000);
    let regular = run(DesignKind::RandomRegular, 62_000);
    let entry_regular = run(DesignKind::EntryRegular, 62_000);
    // Allow 2 trials of noise on each comparison.
    assert!(no_replace + 2 >= regular, "no_replace {no_replace} vs random_regular {regular}");
    assert!(
        regular + 2 >= entry_regular,
        "random_regular {regular} vs entry_regular {entry_regular}"
    );
}
