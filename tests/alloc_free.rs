//! Allocation accounting for the workspace decode path.
//!
//! The acceptance bar for the workspace refactor: after warm-up, a
//! 100-replicate repeated decode through `MnDecoder::decode_with` performs
//! **zero** heap allocations. A counting wrapper around the system
//! allocator pins this down exactly (single-worker pool: with more workers
//! the scoped-thread fan-out itself allocates, which is outside the decode
//! path's contract).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

use pooled_data::core::mn::MnDecoder;
use pooled_data::core::query::execute_queries;
use pooled_data::core::workspace::MnWorkspace;
use pooled_data::design::csr::CsrDesign;
use pooled_data::engine::engine::{Engine, EngineConfig};
use pooled_data::engine::job::DecoderKind;
use pooled_data::engine::traffic::LoadProfile;
use pooled_data::par::pool::pool_with_threads;
use pooled_data::prelude::*;

#[test]
fn workspace_decode_is_allocation_free_after_warmup() {
    let (n, m, k) = (20_000usize, 600usize, 12usize);
    let seeds = SeedSequence::new(1905);
    let design = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    let y = execute_queries(&design, &sigma);
    let decoder = MnDecoder::new(k);
    let reference = decoder.decode(&design, &y);

    let pool = pool_with_threads(1);
    pool.install(|| {
        let mut ws = MnWorkspace::new();
        // Warm-up: grows every buffer to the workload's shape.
        decoder.decode_with(&design, &y, &mut ws);
        decoder.decode_with(&design, &y, &mut ws);

        let before = allocation_count();
        for _ in 0..100 {
            decoder.decode_with(&design, &y, &mut ws);
        }
        let after = allocation_count();
        assert_eq!(
            after - before,
            0,
            "workspace decode allocated {} times across 100 replicates",
            after - before
        );

        // And it still computes the right answer.
        assert_eq!(ws.estimate_dense(), reference.estimate.dense());
        assert_eq!(ws.scores(), &reference.scores[..]);

        // The gather path (entry-parallel over the CSR transpose) must be
        // allocation-free too.
        decoder.decode_csr_with(&design, &y, &mut ws);
        let before = allocation_count();
        for _ in 0..100 {
            decoder.decode_csr_with(&design, &y, &mut ws);
        }
        let after = allocation_count();
        assert_eq!(
            after - before,
            0,
            "gather-path decode allocated {} times across 100 replicates",
            after - before
        );
        assert_eq!(ws.estimate_dense(), reference.estimate.dense());
    });
}

#[test]
fn engine_steady_state_serving_is_allocation_free_after_warmup() {
    // The full serving path — submission queue, design-cache hit, signal
    // draw, query execution, workspace decode, telemetry, completion
    // queue, batch drain — performs zero heap allocations per job once
    // every worker has warmed its scratch to the traffic's shape. This is
    // the engine's core scaling contract: steady-state throughput cannot
    // degrade from allocator pressure.
    let profile = LoadProfile {
        distinct_designs: 1,
        decoders: vec![DecoderKind::Mn, DecoderKind::GeneralMn],
        query_cost: None,
        ..LoadProfile::default_mix(2000, 9, 300, 77)
    };
    let engine = Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 32,
        results_capacity: 32,
        design_cache_capacity: 4,
        batch_window: 1,
    });
    let specs = profile.specs(24);
    let mut results = Vec::with_capacity(256);

    // Warm-up: several passes so *both* workers have served both decoder
    // kinds at this shape (work stealing is nondeterministic, so one pass
    // is not a guarantee) and every queue/scratch buffer has grown.
    for _ in 0..6 {
        results.clear();
        engine.run_batch(&specs, &mut results);
    }
    let reference: Vec<(u64, u64)> = results.iter().map(|r| (r.id, r.fingerprint())).collect();

    results.clear();
    let before = allocation_count();
    for _ in 0..4 {
        engine.run_batch(&specs, &mut results);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "steady-state engine serving allocated {} times across {} jobs",
        after - before,
        4 * specs.len()
    );

    // And the served results are still correct and deterministic.
    for pass in results.chunks(specs.len()) {
        let got: Vec<(u64, u64)> = pass.iter().map(|r| (r.id, r.fingerprint())).collect();
        assert_eq!(got, reference);
    }
    engine.shutdown();
}

#[test]
fn batched_engine_serving_is_allocation_free_after_warmup() {
    // The design-affinity batched path — pop_run, one cache hit per run,
    // lane-major signal draw, the batched fused kernel, per-lane finish,
    // telemetry, completion queue — must also serve with zero heap
    // allocations per job at steady state. Same contract as the per-job
    // path, now with the batch planes in the worker scratch.
    let profile = LoadProfile {
        distinct_designs: 1,
        decoders: vec![DecoderKind::Mn],
        query_cost: None,
        ..LoadProfile::default_mix(2000, 9, 300, 78)
    };
    let engine = Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 32,
        results_capacity: 32,
        design_cache_capacity: 4,
        batch_window: 8,
    });
    let specs = profile.specs(24);
    let mut results = Vec::with_capacity(256);

    // Warm-up: both workers must have seen full and partial batches at
    // this shape (run lengths depend on queue timing, so several passes).
    for _ in 0..6 {
        results.clear();
        engine.run_batch(&specs, &mut results);
    }
    let reference: Vec<(u64, u64)> = results.iter().map(|r| (r.id, r.fingerprint())).collect();

    results.clear();
    let before = allocation_count();
    for _ in 0..4 {
        engine.run_batch(&specs, &mut results);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "steady-state batched serving allocated {} times across {} jobs",
        after - before,
        4 * specs.len()
    );

    // Batched results remain correct, deterministic, and identical to the
    // per-job engine's fingerprints for the same traffic.
    for pass in results.chunks(specs.len()) {
        let got: Vec<(u64, u64)> = pass.iter().map(|r| (r.id, r.fingerprint())).collect();
        assert_eq!(got, reference);
    }
    engine.shutdown();

    let per_job = Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 32,
        results_capacity: 32,
        design_cache_capacity: 4,
        batch_window: 1,
    });
    let mut unbatched = Vec::new();
    per_job.run_batch(&specs, &mut unbatched);
    per_job.shutdown();
    let got: Vec<(u64, u64)> = unbatched.iter().map(|r| (r.id, r.fingerprint())).collect();
    assert_eq!(got, reference, "batching must be fingerprint-invisible");
}

#[test]
fn full_tracing_engine_serving_is_allocation_free_after_warmup() {
    // The telemetry plane's zero-allocation contract: with every job
    // traced (sampling 1-in-1) and every span landing in the flight
    // recorder's ring, steady-state serving still performs zero heap
    // allocations per job. The ring overwrites its oldest slot instead
    // of growing, metric counters are fixed atomics, and JobTrace rides
    // the queue by value — so tracing at full rate must be invisible to
    // the allocator once workers are warm.
    use pooled_data::engine::telemetry::{Metric, TelemetryConfig};

    let profile = LoadProfile {
        distinct_designs: 1,
        decoders: vec![DecoderKind::Mn, DecoderKind::GeneralMn],
        query_cost: None,
        ..LoadProfile::default_mix(2000, 9, 300, 79)
    };
    let engine = Engine::start_with(
        EngineConfig {
            workers: 2,
            queue_capacity: 32,
            results_capacity: 32,
            design_cache_capacity: 4,
            batch_window: 1,
        },
        TelemetryConfig::full(),
    );
    let specs = profile.specs(24);
    let mut results = Vec::with_capacity(256);

    // Warm-up: same regime as the untraced test — both workers, both
    // decoder kinds, every ring and scratch buffer at final shape.
    for _ in 0..6 {
        results.clear();
        engine.run_batch(&specs, &mut results);
    }
    let reference: Vec<(u64, u64)> = results.iter().map(|r| (r.id, r.fingerprint())).collect();

    results.clear();
    let before = allocation_count();
    for _ in 0..4 {
        engine.run_batch(&specs, &mut results);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "full-tracing steady-state serving allocated {} times across {} jobs",
        after - before,
        4 * specs.len()
    );

    // Tracing actually happened (this wasn't a vacuous pass)...
    let metrics = engine.metrics();
    assert!(
        metrics.get(Metric::TracesRecorded) >= (10 * specs.len()) as u64,
        "full sampling must trace every job"
    );
    // ...and did not move a single result bit.
    for pass in results.chunks(specs.len()) {
        let got: Vec<(u64, u64)> = pass.iter().map(|r| (r.id, r.fingerprint())).collect();
        assert_eq!(got, reference);
    }
    engine.shutdown();
}

#[test]
fn allocating_api_allocates_per_decode() {
    // Sanity check on the counter itself: the one-shot API must allocate.
    let (n, m, k) = (2_000usize, 100usize, 6usize);
    let seeds = SeedSequence::new(3);
    let design = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
    let y = execute_queries(&design, &sigma);
    let decoder = MnDecoder::new(k);
    let before = allocation_count();
    std::hint::black_box(decoder.decode(&design, &y));
    let after = allocation_count();
    assert!(after > before, "counting allocator must observe the allocating path");
}
