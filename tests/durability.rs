//! The durable tier's correctness contract, end to end.
//!
//! Three layers, strictest first:
//!
//! 1. **WAL codec under damage** — property-tested: *every* truncation
//!    point and *every* single-bit flip of a write-ahead log recovers
//!    the exact valid record prefix (or errors cleanly) — never any
//!    other key set. Mirrors the transport codec's corruption proptests.
//! 2. **Crash recovery** — a durable engine dropped abruptly (the crash
//!    path: no shutdown checkpoint) restarts from its directory at full
//!    warmth: zero cold misses on its old working set, and result
//!    fingerprints **bit-identical** to a never-crashed run.
//! 3. **Storage-fault sweep** — deterministic crash-point / torn-write /
//!    bit-flip injection ([`StorageFault::roll`]) into the recovered
//!    directory across a seed sweep, pinning the headline invariant:
//!    recovery yields a correct prefix of the log or a clean error, and
//!    the recovered node's fingerprints never diverge.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use pooled_data::design::factory::DesignKind;
use pooled_data::engine::cache::DesignKey;
use pooled_data::engine::durability::fault::StorageFault;
use pooled_data::engine::durability::wal::{
    decode_record, replay_dir, segment_paths, WalRecord, WalWriter,
};
use pooled_data::engine::durability::{recover, DurabilityConfig};
use pooled_data::engine::engine::{Engine, EngineConfig, EngineStats};
use pooled_data::engine::job::{DecoderKind, JobResult};
use pooled_data::engine::telemetry::{Metric, MetricsRegistry};
use pooled_data::engine::traffic::LoadProfile;

/// A fresh scratch directory under the OS temp dir, unique per process
/// and call.
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("pooled-durable-it-{}-{tag}-{seq}", std::process::id()));
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Flat-copy a durability directory (WAL segments + snapshots).
fn copy_dir(from: &Path, to: &Path) {
    fs::create_dir_all(to).expect("copy target");
    for entry in fs::read_dir(from).expect("source dir") {
        let entry = entry.expect("dir entry");
        fs::copy(entry.path(), to.join(entry.file_name())).expect("copy file");
    }
}

fn key(seed: u64) -> DesignKey {
    DesignKey { n: 64, m: 16, kind: DesignKind::RandomRegular, c_milli: 500, seed }
}

/// Apply `records` the way replay does, returning the live key set.
fn apply_prefix(records: &[WalRecord], upto: usize) -> Vec<DesignKey> {
    let mut keys: Vec<DesignKey> = Vec::new();
    for record in &records[..upto] {
        match record {
            WalRecord::Admit(k) => {
                keys.retain(|have| have != k);
                keys.push(*k);
            }
            WalRecord::Evict(k) => keys.retain(|have| have != k),
            WalRecord::Stats(_) => {}
        }
    }
    keys
}

/// Write an admit/evict sequence derived from `ops` into one segment;
/// returns the decoded record list and the segment's bytes.
fn build_log(dir: &Path, ops: &[u64]) -> (Vec<WalRecord>, PathBuf, Vec<u8>) {
    let metrics = Arc::new(MetricsRegistry::new());
    let mut writer = WalWriter::open(dir, u64::MAX, false, metrics).expect("open WAL");
    let mut records = Vec::new();
    for &op in ops {
        // Small key space so evictions actually hit resident keys.
        let record =
            if op % 3 == 0 { WalRecord::Evict(key(op % 5)) } else { WalRecord::Admit(key(op % 5)) };
        writer.append(&record).expect("append");
        records.push(record);
    }
    drop(writer);
    let (_, path) = segment_paths(dir).expect("segments").pop().expect("one segment");
    let bytes = fs::read(&path).expect("segment bytes");
    (records, path, bytes)
}

/// Byte offset where each record ends, in order.
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        let (_, consumed) = decode_record(&bytes[at..]).expect("clean log");
        at += consumed;
        boundaries.push(at);
    }
    boundaries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every truncation point recovers the exact valid record prefix:
    /// the records wholly before the cut are applied, everything after
    /// is discarded, and a mid-record cut is flagged as a torn tail.
    #[test]
    fn every_wal_truncation_recovers_the_exact_valid_prefix(
        a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), d in any::<u64>(),
        e in any::<u64>(), f in any::<u64>(), cut_sel in any::<u64>(),
    ) {
        let dir = scratch_dir("prop-trunc");
        let (records, path, bytes) = build_log(&dir, &[a, b, c, d, e, f]);
        let boundaries = record_boundaries(&bytes);
        let cut = (cut_sel % (bytes.len() as u64 + 1)) as usize;
        fs::write(&path, &bytes[..cut]).expect("truncate");
        let replay = replay_dir(&dir).expect("truncation is never a hard error");
        let whole = boundaries.iter().filter(|&&end| end <= cut).count();
        prop_assert_eq!(&replay.keys, &apply_prefix(&records, whole));
        prop_assert_eq!(replay.records_replayed, whole as u64);
        let clean = cut == 0 || boundaries.contains(&cut);
        prop_assert_eq!(replay.torn_tail, !clean, "cut at {} of {:?}", cut, boundaries);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// Every single-bit flip stops replay exactly at the damaged record:
    /// the prefix before it survives, nothing after it is applied, and
    /// the outcome is never some other key set.
    #[test]
    fn every_wal_bit_flip_recovers_the_prefix_before_the_damage(
        a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), d in any::<u64>(),
        e in any::<u64>(), f in any::<u64>(), flip_sel in any::<u64>(), flip_bit in 0u32..8,
    ) {
        let dir = scratch_dir("prop-flip");
        let (records, path, bytes) = build_log(&dir, &[a, b, c, d, e, f]);
        let boundaries = record_boundaries(&bytes);
        let flip = (flip_sel % bytes.len() as u64) as usize;
        let mut damaged = bytes.clone();
        damaged[flip] ^= 1 << flip_bit;
        fs::write(&path, &damaged).expect("corrupt");
        let replay = replay_dir(&dir).expect("last-segment damage is a torn tail, not a hard error");
        // The record holding the flipped byte is the first rejected one.
        let whole = boundaries.iter().filter(|&&end| end <= flip).count();
        prop_assert_eq!(&replay.keys, &apply_prefix(&records, whole));
        prop_assert!(replay.torn_tail, "flip at byte {} bit {} went undetected", flip, flip_bit);
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// A small, fast profile mixing decoders over two distinct designs.
fn profile(seed: u64) -> LoadProfile {
    LoadProfile {
        distinct_designs: 2,
        decoders: vec![DecoderKind::Mn, DecoderKind::GeneralMn],
        query_cost: None,
        ..LoadProfile::default_mix(300, 5, 180, seed)
    }
}

fn config() -> EngineConfig {
    EngineConfig {
        workers: 2,
        queue_capacity: 32,
        results_capacity: 32,
        design_cache_capacity: 8,
        batch_window: 1,
    }
}

fn fingerprints(results: &[JobResult]) -> Vec<(u64, u64)> {
    results.iter().map(|r| (r.id, r.fingerprint())).collect()
}

/// Serve `jobs` of the profile on a non-durable engine (ground truth).
fn serve_cold(p: &LoadProfile, jobs: usize) -> (Vec<JobResult>, EngineStats) {
    let engine = Engine::start(config());
    let mut out = Vec::new();
    engine.run_batch(&p.specs(jobs), &mut out);
    let stats = engine.shutdown();
    (out, stats)
}

/// Serve on a durable engine; returns results, live stats, and the
/// engine itself so the caller chooses crash (drop) vs clean shutdown.
fn serve_durable(dir: &Path, p: &LoadProfile, jobs: usize) -> (Vec<JobResult>, Engine) {
    let engine =
        Engine::start_durable(config(), DurabilityConfig::new(dir)).expect("durable start");
    let mut out = Vec::new();
    engine.run_batch(&p.specs(jobs), &mut out);
    (out, engine)
}

#[test]
fn crash_recovery_is_warm_and_bit_identical_to_a_never_crashed_run() {
    let p = profile(2201);
    let jobs = 24;
    let (want, cold_stats) = serve_cold(&p, jobs);
    let want = fingerprints(&want);
    assert!(cold_stats.cache_misses > 0, "cold run must pay cold misses");

    let dir = scratch_dir("crash-warm");
    let (first, engine) = serve_durable(&dir, &p, jobs);
    assert_eq!(fingerprints(&first), want, "durable serving must not change results");
    let pre_crash = engine.stats();
    assert!(engine.metrics().get(Metric::WalAppends) > 0, "admissions must hit the WAL");
    drop(engine); // crash: no shutdown checkpoint

    // The replacement reaches full warmth before its first job: the
    // whole profile serves without one cold miss, and fingerprints are
    // bit-identical to the never-crashed ground truth.
    let (second, recovered) = serve_durable(&dir, &p, jobs);
    assert_eq!(fingerprints(&second), want, "recovered node diverged from ground truth");
    let stats = recovered.stats();
    assert_eq!(stats.cache_misses, 0, "recovered node paid cold misses: {stats:?}");
    assert!(stats.cache_hits > 0);
    assert!(
        stats.cache_hit_rate() >= pre_crash.cache_hit_rate(),
        "recovery must reach at least the pre-crash warm hit rate"
    );
    assert!(recovered.metrics().get(Metric::RecoveryRecordsReplayed) > 0);
    recovered.shutdown();
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn stats_and_histograms_survive_a_clean_restart_cycle() {
    let p = profile(3307);
    let dir = scratch_dir("stats-survive");

    let (_, engine) = serve_durable(&dir, &p, 12);
    let run1 = engine.shutdown(); // clean: checkpoints cumulative stats
    assert_eq!(run1.jobs_completed, 12);
    assert_eq!(run1.histogram.count(), 12);

    let (_, engine) = serve_durable(&dir, &p, 12);
    let merged = engine.stats();
    assert_eq!(merged.jobs_completed, 24, "restart must keep counting, not reset");
    assert_eq!(merged.histogram.count(), 24, "latency histogram must merge across restarts");
    assert_eq!(merged.total_latency.count(), 24);
    assert_eq!(merged.exact_recoveries, run1.exact_recoveries * 2, "same jobs, same outcomes");
    assert_eq!(merged.cache_misses, run1.cache_misses, "second run is fully warm");
    let run2 = engine.shutdown();

    // And the cycle composes: a third incarnation sees both runs.
    let (_, engine) = serve_durable(&dir, &p, 12);
    let third = engine.stats();
    assert_eq!(third.jobs_completed, 36);
    assert_eq!(third.histogram.count(), 36);
    assert!(third.total_latency.mean() > 0.0);
    assert_eq!(run2.jobs_completed, 24);
    engine.shutdown();
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn storage_fault_sweep_recovers_a_correct_prefix_never_a_wrong_design() {
    let p = profile(4403);
    let jobs = 16;
    let (want, _) = serve_cold(&p, jobs);
    let want = fingerprints(&want);

    // Build one healthy durability directory, then crash.
    let healthy = scratch_dir("sweep-healthy");
    let (_, engine) = serve_durable(&healthy, &p, jobs);
    let full_keys = {
        let replay = replay_dir(&healthy).expect("healthy replay");
        drop(engine); // crash after reading: replay keys are the admitted set
        replay.keys
    };
    assert!(!full_keys.is_empty());

    for seed in 0..24u64 {
        let damaged = scratch_dir(&format!("sweep-{seed}"));
        copy_dir(&healthy, &damaged);
        let (_, segment) =
            segment_paths(&damaged).expect("segments").pop().expect("at least one segment");
        let len = fs::metadata(&segment).expect("segment meta").len();
        let fault = StorageFault::roll(seed, len);
        pooled_data::engine::durability::fault::inject(&segment, &fault).expect("inject");

        // Damage to the newest segment is always the torn-tail shape:
        // recovery must succeed with a prefix of the admitted keys.
        let metrics = MetricsRegistry::new();
        let rec = recover(&DurabilityConfig::new(&damaged), &metrics)
            .unwrap_or_else(|e| panic!("seed {seed} ({fault:?}): tail damage must recover: {e}"));
        assert!(
            rec.keys.len() <= full_keys.len() && rec.keys.iter().all(|k| full_keys.contains(k)),
            "seed {seed} ({fault:?}): recovered keys are not a subset of the admitted set"
        );

        // And a node started from the damaged directory serves the
        // exact ground-truth fingerprints (missing keys just resample).
        let (results, engine) = serve_durable(&damaged, &p, jobs);
        assert_eq!(
            fingerprints(&results),
            want,
            "seed {seed} ({fault:?}): recovered node fingerprints diverged"
        );
        engine.shutdown();
        fs::remove_dir_all(&damaged).expect("cleanup");
    }
    fs::remove_dir_all(&healthy).expect("cleanup");
}

#[test]
fn corruption_behind_surviving_history_is_a_clean_refusal() {
    // A corrupt record *before* intact segments cannot satisfy the
    // prefix rule: the durable constructor must refuse with a clean
    // error — serving from a guessed key set is the one forbidden
    // outcome.
    let dir = scratch_dir("refuse");
    let metrics = Arc::new(MetricsRegistry::new());
    let mut writer = WalWriter::open(&dir, u64::MAX, false, metrics).expect("open WAL");
    writer.append(&WalRecord::Admit(key(1))).expect("append");
    writer.rotate().expect("rotate");
    writer.append(&WalRecord::Admit(key(2))).expect("append");
    drop(writer);
    let (_, first) = segment_paths(&dir).expect("segments").remove(0);
    let mut bytes = fs::read(&first).expect("first segment");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    fs::write(&first, bytes).expect("corrupt first segment");

    let err = Engine::start_durable(config(), DurabilityConfig::new(&dir))
        .err()
        .expect("corrupt history must refuse to start");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn corrupt_design_snapshots_are_rejected_and_resampled_not_served() {
    let p = profile(5501);
    let jobs = 16;
    let (want, _) = serve_cold(&p, jobs);
    let want = fingerprints(&want);

    let dir = scratch_dir("snap-fallback");
    let (_, engine) = serve_durable(&dir, &p, jobs);
    drop(engine); // crash

    // Corrupt every spilled design snapshot.
    let mut corrupted = 0;
    for entry in fs::read_dir(&dir).expect("dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "snap") {
            let mut bytes = fs::read(&path).expect("snapshot");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            fs::write(&path, bytes).expect("corrupt snapshot");
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "durable run must have spilled snapshots");

    let metrics = MetricsRegistry::new();
    let rec = recover(&DurabilityConfig::new(&dir), &metrics).expect("recover");
    assert_eq!(rec.snapshots_rejected, corrupted, "every corrupt snapshot must be rejected");
    assert_eq!(rec.snapshots_loaded, 0);
    assert!(!rec.keys.is_empty(), "the key set comes from the WAL, not the snapshots");

    // Recovery falls back to resampling: still warm before traffic,
    // still bit-identical.
    let (results, engine) = serve_durable(&dir, &p, jobs);
    assert_eq!(fingerprints(&results), want);
    assert_eq!(engine.stats().cache_misses, 0, "resampled prewarm must still be warm");
    engine.shutdown();
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn wal_and_recovery_counters_surface_in_the_expositions() {
    let p = profile(6607);
    let dir = scratch_dir("counters");
    let (_, engine) = serve_durable(&dir, &p, 8);
    drop(engine); // crash

    let (_, engine) = serve_durable(&dir, &p, 8);
    let snap = engine.metrics().snapshot();
    assert!(snap.get(Metric::RecoveryRecordsReplayed) > 0);
    assert!(snap.get(Metric::WalSegmentsCompacted) > 0, "recovery compacts the replayed log");
    let stats = engine.stats();
    let text = pooled_data::engine::render_prometheus(&stats, Some(&snap));
    for needle in [
        "pooled_wal_appends_total",
        "pooled_wal_bytes_total",
        "pooled_wal_fsyncs_total",
        "pooled_wal_segments_compacted_total",
        "pooled_recovery_records_replayed_total",
        "pooled_recovery_torn_tail_total",
    ] {
        assert!(text.contains(needle), "missing {needle} in exposition");
    }
    let json = pooled_data::engine::render_json(&stats, Some(&snap));
    assert!(json.contains("\"pooled_recovery_records_replayed_total\":"));
    engine.shutdown();
    fs::remove_dir_all(&dir).expect("cleanup");
}
