//! Property-based invariants across the workspace, driven by proptest.

use proptest::prelude::*;

use pooled_data::core::mn::MnDecoder;
use pooled_data::core::query::execute_queries;
use pooled_data::design::csr::CsrDesign;
use pooled_data::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every sampled design conserves the pool size: multiplicities of each
    /// query sum to Γ, and the transpose mirrors the forward rows exactly.
    #[test]
    fn design_conservation_and_transpose(
        n in 2usize..300,
        m in 0usize..40,
        seed in any::<u64>(),
    ) {
        let gamma = (n / 2).max(1);
        let d = CsrDesign::sample(n, m, gamma, &SeedSequence::new(seed));
        let mut forward_pairs = 0usize;
        for q in 0..m {
            let (es, cs) = d.query_row(q);
            prop_assert_eq!(cs.iter().map(|&c| c as usize).sum::<usize>(), gamma);
            prop_assert!(es.windows(2).all(|w| w[0] < w[1]));
            forward_pairs += es.len();
            for (&e, &c) in es.iter().zip(cs) {
                let (qs, tcs) = d.entry_row(e as usize);
                let pos = qs.binary_search(&(q as u32)).ok().unwrap();
                prop_assert_eq!(tcs[pos], c);
            }
        }
        let backward_pairs: usize = (0..n).map(|i| d.entry_row(i).0.len()).sum();
        prop_assert_eq!(forward_pairs, backward_pairs);
    }

    /// y = Aᵀσ is bounded by Γ and exactly reproduced by the dense matrix.
    #[test]
    fn query_results_bounded_and_linear(
        n in 4usize..200,
        m in 1usize..30,
        k_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let seeds = SeedSequence::new(seed);
        let gamma = (n / 2).max(1);
        let k = ((n as f64 * k_frac) as usize).min(n);
        let d = CsrDesign::sample(n, m, gamma, &seeds.child("d", 0));
        let sigma = Signal::random(n, k, &mut seeds.child("s", 0).rng());
        let y = execute_queries(&d, &sigma);
        prop_assert_eq!(y.len(), m);
        for &v in &y {
            prop_assert!(v as usize <= gamma);
        }
        // Superposition: y(σ) + y(complement) = Γ for every query.
        let complement: Vec<usize> =
            (0..n).filter(|&i| !sigma.is_one(i)).collect();
        let comp_sig = Signal::from_support(n, complement);
        let y2 = execute_queries(&d, &comp_sig);
        for (a, b) in y.iter().zip(&y2) {
            prop_assert_eq!((a + b) as usize, gamma);
        }
    }

    /// The decoder output always has weight min(k, n) and never depends on
    /// the accumulation path.
    #[test]
    fn decoder_weight_and_path_independence(
        n in 8usize..200,
        m in 1usize..40,
        k in 0usize..12,
        seed in any::<u64>(),
    ) {
        let seeds = SeedSequence::new(seed);
        let d = CsrDesign::sample(n, m, (n / 2).max(1), &seeds.child("d", 0));
        let sigma = Signal::random(n, k.min(n), &mut seeds.child("s", 0).rng());
        let y = execute_queries(&d, &sigma);
        let a = MnDecoder::new(k).decode(&d, &y);
        let b = MnDecoder::new(k).decode_csr(&d, &y);
        prop_assert_eq!(a.estimate.weight(), k.min(n));
        prop_assert_eq!(a.scores, b.scores);
        prop_assert_eq!(a.estimate, b.estimate);
    }

    /// Signals: support/dense round trip and overlap symmetry.
    #[test]
    fn signal_round_trip_and_overlap_symmetry(
        n in 1usize..500,
        seed in any::<u64>(),
    ) {
        let seeds = SeedSequence::new(seed);
        let k1 = seeds.child("k1", 0).seed() as usize % (n + 1);
        let k2 = seeds.child("k2", 0).seed() as usize % (n + 1);
        let a = Signal::random(n, k1, &mut seeds.child("a", 0).rng());
        let b = Signal::random(n, k2, &mut seeds.child("b", 0).rng());
        prop_assert_eq!(Signal::from_dense(a.dense()), a.clone());
        prop_assert_eq!(a.overlap(&b), b.overlap(&a));
        prop_assert!(a.overlap(&b) <= k1.min(k2));
        prop_assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
    }

    /// Parallel primitives agree with their sequential references.
    #[test]
    fn parallel_primitives_match_reference(
        data in prop::collection::vec(-1000i64..1000, 0..2000),
        k in 0usize..64,
    ) {
        // top-k
        let fast = pooled_data::par::topk::top_k_indices(&data, k);
        let slow = pooled_data::par::topk::top_k_indices_by_sort(&data, k);
        prop_assert_eq!(fast, slow);
        // merge sort
        let mut a = data.clone();
        let mut b = data.clone();
        pooled_data::par::sort::par_merge_sort(&mut a, |x| *x);
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Exclusive scan matches the fold-based reference.
    #[test]
    fn scan_matches_reference(data in prop::collection::vec(0u64..1000, 0..3000)) {
        let mut got = data.clone();
        let total = pooled_data::par::scan::exclusive_scan_u64(&mut got);
        let mut acc = 0u64;
        for (g, &x) in got.iter().zip(&data) {
            prop_assert_eq!(*g, acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    /// The ground truth is always consistent in the exhaustive search and
    /// uniqueness implies the witness equals the truth.
    #[test]
    fn exhaustive_search_soundness(
        n in 6usize..14,
        k in 1usize..3,
        m in 1usize..20,
        seed in any::<u64>(),
    ) {
        let seeds = SeedSequence::new(seed);
        let d = CsrDesign::sample(n, m, (n / 2).max(1), &seeds.child("d", 0));
        let sigma = Signal::random(n, k, &mut seeds.child("s", 0).rng());
        let y = execute_queries(&d, &sigma);
        let out = pooled_data::core::exhaustive::exhaustive_search(&d, &y, k);
        prop_assert!(out.consistent_count >= 1, "truth must be counted");
        if out.consistent_count == 1 {
            prop_assert_eq!(out.witness.unwrap(), sigma);
        }
    }

    /// Peeling never misclassifies a resolved entry on exact data.
    #[test]
    fn peeling_partial_correctness(
        n in 10usize..150,
        k in 1usize..8,
        m in 1usize..60,
        seed in any::<u64>(),
    ) {
        let seeds = SeedSequence::new(seed);
        let d = pooled_data::baselines::peeling::sparse_design_for(
            n, m, k.min(n), 1.0, &seeds.child("d", 0));
        let sigma = Signal::random(n, k.min(n), &mut seeds.child("s", 0).rng());
        let y = execute_queries(&d, &sigma);
        let out = pooled_data::baselines::peeling::peel(&d, &y);
        for (i, r) in out.resolved.iter().enumerate() {
            if let Some(v) = r {
                prop_assert_eq!(*v, sigma.is_one(i), "entry {} misresolved", i);
            }
        }
    }
}
