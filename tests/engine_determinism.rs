//! The engine's determinism contract, property-tested: a traffic mix
//! served by 1 worker and by `L` workers produces **bit-identical**
//! [`JobResult`] fingerprints for the same seeds — placement, scheduling,
//! queue sizing and cache temperature must all be invisible in results.
//!
//! Style follows `tests/proptest_kernels.rs`: randomized shapes, exact
//! equality everywhere (digests are `u64`s; no tolerances).

use proptest::prelude::*;

use pooled_data::design::factory::DesignKind;
use pooled_data::engine::engine::{Engine, EngineConfig};
use pooled_data::engine::job::{DecoderKind, JobResult};
use pooled_data::engine::traffic::LoadProfile;

/// Serve `specs`-worth of the profile on a fresh engine and return the
/// results (sorted by id — `run_batch` guarantees it).
fn serve(
    profile: &LoadProfile,
    jobs: usize,
    workers: usize,
    queue: usize,
    batch_window: usize,
) -> Vec<JobResult> {
    let engine = Engine::start(EngineConfig {
        workers,
        queue_capacity: queue,
        results_capacity: queue,
        design_cache_capacity: 4,
        batch_window,
    });
    let mut out = Vec::new();
    engine.run_batch(&profile.specs(jobs), &mut out);
    engine.shutdown();
    out
}

/// The deterministic projection of a result list.
fn fingerprints(results: &[JobResult]) -> Vec<(u64, u64)> {
    results.iter().map(|r| (r.id, r.fingerprint())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// 1 worker vs L workers (with a random design-affinity batch
    /// window): bit-identical results for every decoder mix and design
    /// family, under deliberately tight queues (backpressure reordering
    /// and batching must not leak into results either).
    #[test]
    fn one_worker_and_l_workers_agree(
        seed in any::<u64>(),
        workers in 2usize..5,
        queue in 1usize..8,
        batch_window in 1usize..6,
        n in 150usize..400,
        design_idx in 0usize..4,
        jobs in 10usize..40,
    ) {
        let k = 4 + (seed % 4) as usize;
        let profile = LoadProfile {
            design_kind: DesignKind::ALL[design_idx],
            distinct_designs: 3,
            decoders: vec![
                DecoderKind::Mn,
                DecoderKind::GeneralMn,
                DecoderKind::ThresholdMn,
                DecoderKind::PsiOnly,
            ],
            query_cost: None,
            ..LoadProfile::default_mix(n, k, n / 2, seed)
        };
        let serial = serve(&profile, jobs, 1, queue, 1);
        let sharded = serve(&profile, jobs, workers, queue, batch_window);
        prop_assert_eq!(serial.len(), jobs);
        prop_assert_eq!(fingerprints(&serial), fingerprints(&sharded));
    }

    /// Cache temperature is invisible: replaying the same batch on the
    /// same (now warm) engine reproduces the cold-pass results exactly.
    #[test]
    fn warm_cache_replay_is_bit_identical(
        seed in any::<u64>(),
        workers in 1usize..4,
        jobs in 8usize..24,
    ) {
        let profile = LoadProfile {
            distinct_designs: 2,
            decoders: vec![DecoderKind::Mn, DecoderKind::GeneralMn],
            query_cost: None,
            ..LoadProfile::default_mix(250, 5, 120, seed)
        };
        let engine = Engine::start(EngineConfig {
            workers,
            queue_capacity: 8,
            results_capacity: 8,
            design_cache_capacity: 2,
            batch_window: 1,
        });
        let specs = profile.specs(jobs);
        let mut cold = Vec::new();
        engine.run_batch(&specs, &mut cold);
        let mut warm = Vec::new();
        engine.run_batch(&specs, &mut warm);
        let stats = engine.shutdown();
        prop_assert_eq!(fingerprints(&cold), fingerprints(&warm));
        // The second pass must have been served from cache: at most one
        // cold sample per design key per racing worker.
        prop_assert!(stats.cache_misses <= 2 * workers as u64);
    }
}

/// Deterministic spot check with the exact acceptance-shaped mix (all six
/// registry decoders on a small instance, including the dense OMP
/// baseline) — slower than the proptest shapes, so one fixed case.
#[test]
fn full_registry_mix_is_worker_count_invariant() {
    let profile = LoadProfile {
        distinct_designs: 2,
        decoders: DecoderKind::ALL.to_vec(),
        query_cost: None,
        ..LoadProfile::default_mix(120, 4, 80, 1905)
    };
    let a = serve(&profile, 18, 1, 4, 1);
    let b = serve(&profile, 18, 3, 4, 1);
    let c = serve(&profile, 18, 2, 2, 4);
    assert_eq!(fingerprints(&a), fingerprints(&b));
    assert_eq!(fingerprints(&a), fingerprints(&c));
    // Every decoder actually ran.
    for kind in DecoderKind::ALL {
        assert!(a.iter().any(|r| r.decoder == kind), "{} never served", kind.name());
    }
}
