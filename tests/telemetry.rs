//! The telemetry plane's correctness contract, end to end.
//!
//! Three claims, strictest first:
//!
//! 1. **Determinism** — tracing is fingerprint-invisible: the same
//!    traffic served with tracing off, sampled 1-in-4, or tracing every
//!    job yields **bit-identical** result fingerprints, at 1 and 4
//!    workers, in process and over loopback TCP. Timestamps never feed
//!    a seed or a kernel.
//! 2. **Wire-scraped cluster stats** — a 3-node TCP cluster's
//!    [`ClusterStats`] is *complete*: every node reports real far-side
//!    `EngineStats` over the STATS frame, the merged view equals the
//!    per-node sum, and a node that cannot be scraped lands in
//!    `stats_unavailable` instead of silently zero-merging.
//! 3. **Flight recorder** — full tracing drains real span timelines
//!    (admit → … → route hop, plus wire spans on TCP paths) into the
//!    per-shard rings, and the JSON dump carries them.
//!
//! [`ClusterStats`]: pooled_data::engine::cluster::ClusterStats

use std::sync::Arc;

use pooled_data::engine::cluster::{chaos, ChaosConfig, LocalNode, NodeHandle, RemoteNode, Router};
use pooled_data::engine::engine::{Engine, EngineConfig};
use pooled_data::engine::job::{DecoderKind, JobResult};
use pooled_data::engine::telemetry::{CausalKind, Metric, Span, TelemetryConfig};
use pooled_data::engine::traffic::LoadProfile;
use pooled_data::engine::transport::{TransportClient, TransportConfig, TransportServer};

/// A small, fast profile whose keys shard over several nodes.
fn profile(seed: u64) -> LoadProfile {
    LoadProfile {
        distinct_designs: 6,
        decoders: vec![DecoderKind::Mn, DecoderKind::GeneralMn],
        query_cost: None,
        ..LoadProfile::default_mix(300, 5, 180, seed)
    }
}

fn node_config(workers: usize) -> EngineConfig {
    EngineConfig {
        workers,
        queue_capacity: 8,
        results_capacity: 8,
        design_cache_capacity: 8,
        batch_window: 1,
    }
}

/// Fingerprint projection used by every comparison.
fn fingerprints(results: &[JobResult]) -> Vec<(u64, u64)> {
    results.iter().map(|r| (r.id, r.fingerprint())).collect()
}

/// Serve the profile in process under a given telemetry config.
fn serve_traced(telemetry: TelemetryConfig, workers: usize, jobs: usize) -> Vec<JobResult> {
    let engine = Engine::start_with(node_config(workers), telemetry);
    let mut out = Vec::new();
    engine.run_batch(&profile(41).specs(jobs), &mut out);
    engine.shutdown();
    out
}

#[test]
fn tracing_is_fingerprint_invisible_at_any_sampling_rate() {
    let baseline = fingerprints(&serve_traced(TelemetryConfig::off(), 1, 48));
    for workers in [1usize, 4] {
        for (label, telemetry) in [
            ("off", TelemetryConfig::off()),
            ("sampled-1-in-4", TelemetryConfig::sampled(4)),
            ("full", TelemetryConfig::full()),
        ] {
            let got = fingerprints(&serve_traced(telemetry, workers, 48));
            assert_eq!(
                got, baseline,
                "tracing={label} at {workers} workers changed result fingerprints"
            );
        }
    }
}

#[test]
fn sampling_records_exactly_the_selected_jobs() {
    let jobs = 48u64;
    let engine = Engine::start_with(node_config(2), TelemetryConfig::sampled(4));
    let mut out = Vec::new();
    engine.run_batch(&profile(42).specs(jobs as usize), &mut out);
    let metrics = engine.metrics();
    // Ids are 0..48, so exactly the multiples of 4 are sampled — the
    // knob is a pure function of the id, not of timing or topology.
    assert_eq!(metrics.get(Metric::TracesRecorded), jobs / 4);
    assert_eq!(metrics.get(Metric::JobsCompleted), jobs);
    let traced: Vec<u64> =
        engine.flight_recorder().traces().into_iter().flatten().map(|t| t.id).collect();
    assert!(!traced.is_empty());
    assert!(traced.iter().all(|id| id % 4 == 0), "only sampled ids may be recorded: {traced:?}");
    engine.shutdown();
}

#[test]
fn full_tracing_over_tcp_matches_untraced_in_process_and_stamps_wire_spans() {
    let specs = profile(43).specs(32);
    let baseline = {
        let engine = Engine::start(node_config(2));
        let mut out = Vec::new();
        engine.run_batch(&specs, &mut out);
        engine.shutdown();
        fingerprints(&out)
    };

    let engine = Arc::new(Engine::start_with(node_config(2), TelemetryConfig::full()));
    let server =
        TransportServer::bind(Arc::clone(&engine), "127.0.0.1:0", TransportConfig::default())
            .expect("bind loopback");
    let mut client = TransportClient::connect(server.local_addr()).expect("connect loopback");
    let mut out = Vec::new();
    client.run_batch(&specs, &mut out).expect("tcp replay failed");
    drop(client);
    server.stop();

    assert_eq!(fingerprints(&out), baseline, "full tracing over TCP changed result bits");

    // The wire path left its marks: every trace carries the server's
    // frame-ingress stamp ahead of its admit, and RESULT frames left
    // wire-tx causal records behind.
    let recorder = engine.flight_recorder();
    let traces: Vec<_> = recorder.traces().into_iter().flatten().collect();
    assert!(!traces.is_empty(), "full tracing over TCP must record traces");
    for t in &traces {
        let rx = t.span_micros(Span::WireRx).expect("TCP-submitted jobs stamp wire_rx");
        let admit = t.span_micros(Span::Admit).expect("every trace stamps admit");
        assert!(rx <= admit, "frame ingress precedes admission (rx={rx}, admit={admit})");
        assert!(t.span_micros(Span::RouteHop).is_some(), "completed jobs stamp route_hop");
    }
    let wire_tx = recorder.causal_records().iter().filter(|r| r.kind == CausalKind::WireTx).count();
    assert_eq!(wire_tx, specs.len(), "one wire-tx record per RESULT frame sent");

    let stats = Arc::try_unwrap(engine).ok().expect("transport released the engine").shutdown();
    assert_eq!(stats.jobs_completed, specs.len() as u64);
}

/// Build a pinned 3-node TCP loopback cluster; returns the engines (so
/// the test can stop them), the servers, and the router.
fn tcp_cluster(workers: usize) -> (Vec<Arc<Engine>>, Vec<TransportServer>, Router) {
    let engines: Vec<Arc<Engine>> =
        (0..3).map(|_| Arc::new(Engine::start(node_config(workers)))).collect();
    let servers: Vec<TransportServer> = engines
        .iter()
        .map(|e| {
            TransportServer::bind(Arc::clone(e), "127.0.0.1:0", TransportConfig::default())
                .expect("bind loopback")
        })
        .collect();
    let handles: Vec<(u64, Box<dyn NodeHandle>)> = servers
        .iter()
        .enumerate()
        .map(|(id, s)| {
            let node = RemoteNode::connect(s.local_addr()).expect("connect loopback");
            (id as u64, Box::new(node) as Box<dyn NodeHandle>)
        })
        .collect();
    let router = Router::new(handles, 8);
    (engines, servers, router)
}

#[test]
fn cluster_stats_merge_is_complete_over_tcp() {
    // The satellite contract: `RemoteNode::stats()` scrapes real
    // far-side EngineStats over the STATS frame, so the router's merged
    // view over a 3-node TCP cluster equals the per-node sum — no node
    // is a silent zero.
    let jobs = 48usize;
    let (engines, servers, mut router) = tcp_cluster(1);
    let mut out = Vec::new();
    router.run_batch(&profile(44).specs(jobs), &mut out);
    assert_eq!(out.len(), jobs);

    let stats = router.stats();
    assert!(
        stats.stats_unavailable.is_empty(),
        "healthy nodes must all answer the scrape: {:?}",
        stats.stats_unavailable
    );
    let mut sum_completed = 0u64;
    let mut sum_exact = 0u64;
    let mut sum_hits = 0u64;
    let mut sum_misses = 0u64;
    for (id, node_stats) in &stats.nodes {
        let s = node_stats.as_ref().unwrap_or_else(|| panic!("node {id} scrape failed"));
        sum_completed += s.jobs_completed;
        sum_exact += s.exact_recoveries;
        sum_hits += s.cache_hits;
        sum_misses += s.cache_misses;
    }
    assert_eq!(sum_completed, jobs as u64, "per-node scrapes must cover every job");
    assert_eq!(stats.merged.jobs_completed, sum_completed);
    assert_eq!(stats.merged.exact_recoveries, sum_exact);
    assert_eq!(stats.merged.cache_hits, sum_hits);
    assert_eq!(stats.merged.cache_misses, sum_misses);

    router.shutdown();
    for server in servers {
        server.stop();
    }
    for engine in engines {
        Arc::try_unwrap(engine).ok().expect("transport released the engine").shutdown();
    }
}

#[test]
fn an_unscrapable_node_is_marked_unavailable_not_zero_merged() {
    let jobs = 24usize;
    let (engines, mut servers, mut router) = tcp_cluster(1);
    let mut out = Vec::new();
    router.run_batch(&profile(45).specs(jobs), &mut out);
    assert_eq!(out.len(), jobs);
    let healthy = router.stats();
    assert!(healthy.stats_unavailable.is_empty());

    // Sever node 1's connection (its engine keeps running — a network
    // partition, the case where "zero jobs" would be a lie).
    let victim = servers.remove(1);
    victim.stop();
    let partitioned = router.stats();
    assert_eq!(
        partitioned.stats_unavailable,
        vec![1],
        "the severed node must be marked a blind spot"
    );
    let (_, victim_stats) =
        partitioned.nodes.iter().find(|(id, _)| *id == 1).expect("node 1 still in the view");
    assert!(victim_stats.is_none(), "an unscrapable node reports None, not zeros");
    // The survivors' contribution is still real.
    assert!(partitioned.merged.jobs_completed > 0);
    assert!(partitioned.merged.jobs_completed < jobs as u64);

    router.shutdown();
    for server in servers {
        server.stop();
    }
    for engine in engines {
        Arc::try_unwrap(engine).ok().expect("transport released the engine").shutdown();
    }
}

#[test]
fn a_killed_chaos_node_goes_stats_unavailable() {
    // Same satellite, local flavor: a chaos-killed node cannot be
    // scraped, and the router's view says so explicitly.
    let handles_and_controllers: Vec<_> = (0..3u64)
        .map(|id| {
            let inner = Box::new(LocalNode::start(node_config(1)));
            chaos::wrap(inner, ChaosConfig::quiet(id))
        })
        .collect();
    let mut controllers = Vec::new();
    let handles: Vec<(u64, Box<dyn NodeHandle>)> = handles_and_controllers
        .into_iter()
        .enumerate()
        .map(|(id, (node, controller))| {
            controllers.push(controller);
            (id as u64, Box::new(node) as Box<dyn NodeHandle>)
        })
        .collect();
    let mut router = Router::new(handles, 8);
    let mut out = Vec::new();
    router.run_batch(&profile(46).specs(12), &mut out);
    assert!(router.stats().stats_unavailable.is_empty());

    controllers[2].kill();
    let stats = router.stats();
    assert_eq!(stats.stats_unavailable, vec![2]);
    router.shutdown();
}

#[test]
fn the_flight_recorder_dump_carries_span_timelines() {
    let engine = Engine::start_with(node_config(2), TelemetryConfig::full());
    let mut out = Vec::new();
    engine.run_batch(&profile(47).specs(24), &mut out);
    let recorder = engine.flight_recorder();
    assert!(recorder.traces_recorded() >= 24);

    // Every recorded trace is a causally ordered timeline. (DecodeStart
    // is back-computed from the decode duration, so it is only checked
    // against its own end, not against the independently rounded
    // dequeue stamp.)
    for t in recorder.traces().into_iter().flatten() {
        let admit = t.span_micros(Span::Admit).expect("admit stamped");
        let dequeue = t.span_micros(Span::Dequeue).expect("dequeue stamped");
        let probe = t.span_micros(Span::CacheProbe).expect("cache_probe stamped");
        let start = t.span_micros(Span::DecodeStart).expect("decode_start stamped");
        let end = t.span_micros(Span::DecodeEnd).expect("decode_end stamped");
        let route = t.span_micros(Span::RouteHop).expect("route_hop stamped");
        assert!(admit <= dequeue && dequeue <= probe && start <= end && end <= route);
    }

    // And the JSON dump carries them by name.
    let json = engine.flight_recorder().dump_json();
    for needle in
        ["\"admit\":", "\"dequeue\":", "\"decode_start\":", "\"decode_end\":", "\"route_hop\":"]
    {
        assert!(json.contains(needle), "dump missing {needle} in:\n{json}");
    }
    engine.shutdown();
}
