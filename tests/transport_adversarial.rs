//! Hostile tenants against the readiness-driven connection front.
//!
//! The event-loop server multiplexes every tenant on a handful of loop
//! threads, so its real contract is *containment*: one misbehaving
//! socket — dribbling bytes, never reading its replies, or going silent
//! — must cost the server one connection's bounded state and nothing
//! else. Each test here pairs an adversarial raw socket with a
//! well-behaved [`TransportClient`] on the same server and asserts the
//! well-behaved tenant's results stay bit-identical to the in-process
//! ground truth while the adversary is contained (or evicted).
//!
//! The file also pins the two resource contracts the refactor exists
//! for: server thread count is O(event loops), not O(connections), and
//! a client parked in [`TransportClient::poll`] burns no CPU.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pooled_data::engine::engine::{Engine, EngineConfig};
use pooled_data::engine::job::{DecoderKind, JobResult, JobSpec};
use pooled_data::engine::telemetry::Metric;
use pooled_data::engine::traffic::LoadProfile;
use pooled_data::engine::transport::frame::{encode_frame, Frame, FrameAssembler};
use pooled_data::engine::transport::reactor::{
    raise_fd_limit, thread_count, thread_cpu_time, thread_cpu_time_by_name,
};
use pooled_data::engine::transport::{
    BackendChoice, Reply, TransportClient, TransportConfig, TransportServer,
};
use pooled_data::lab::latency::LatencyModel;

/// Every test here measures wall-clock behavior (eviction deadlines,
/// CPU accounting, thread counts) on what may be a single-core CI box;
/// running them concurrently makes scheduler noise look like transport
/// bugs. Each test holds this lock for its whole body.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn profile(seed: u64) -> LoadProfile {
    LoadProfile {
        distinct_designs: 2,
        decoders: vec![DecoderKind::Mn, DecoderKind::GeneralMn],
        query_cost: None,
        ..LoadProfile::default_mix(300, 5, 180, seed)
    }
}

fn engine(workers: usize, queue: usize) -> Arc<Engine> {
    Arc::new(Engine::start(EngineConfig {
        workers,
        queue_capacity: queue,
        results_capacity: queue,
        design_cache_capacity: 4,
        batch_window: 1,
    }))
}

fn fingerprints(results: &[JobResult]) -> Vec<(u64, u64)> {
    results.iter().map(|r| (r.id, r.fingerprint())).collect()
}

fn in_process_ground_truth(p: &LoadProfile, jobs: usize) -> Vec<(u64, u64)> {
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_capacity: 16,
        results_capacity: 16,
        design_cache_capacity: 4,
        batch_window: 1,
    });
    let mut out = Vec::new();
    engine.run_batch(&p.specs(jobs), &mut out);
    engine.shutdown();
    fingerprints(&out)
}

fn encoded_submit(spec: &JobSpec) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_frame(&Frame::Submit(*spec), &mut buf);
    buf
}

/// Read raw frames off an adversary's socket until `want` frames have
/// arrived (the adversaries speak the protocol by hand, without the
/// client's conveniences).
fn read_frames_raw(stream: &mut TcpStream, want: usize) -> Vec<Frame> {
    let mut asm = FrameAssembler::new();
    let mut got = Vec::new();
    let mut chunk = [0u8; 4096];
    while got.len() < want {
        while let Some((frame, _)) = asm.next_frame().expect("clean stream") {
            got.push(frame);
            if got.len() == want {
                return got;
            }
        }
        let n = stream.read(&mut chunk).expect("read reply bytes");
        assert!(n > 0, "server hung up before all replies arrived");
        asm.extend(&chunk[..n]);
    }
    got
}

fn wait_for_live(server: &TransportServer, want: usize, within: Duration) {
    let deadline = Instant::now() + within;
    while server.live_connections() != want && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.live_connections(), want, "live connection count never converged");
}

#[test]
fn a_dribbling_tenant_cannot_stall_other_tenants() {
    let _serial = serial();
    // Slowloris, read side: the adversary feeds one SUBMIT frame a byte
    // at a time. Under the old thread-per-connection front that cost a
    // dedicated (mostly idle) thread; under the event loop it must cost
    // one partial-frame buffer — and zero latency for anyone else.
    let engine = engine(1, 16);
    let server =
        TransportServer::bind(Arc::clone(&engine), "127.0.0.1:0", TransportConfig::default())
            .expect("bind");
    let addr = server.local_addr();

    let p = profile(41);
    let spec = p.spec(1_000); // id disjoint from the well-behaved batch
    let wire = encoded_submit(&spec);
    let dribbler = std::thread::spawn(move || {
        let mut socket = TcpStream::connect(addr).expect("dribbler connect");
        socket.set_nodelay(true).expect("nodelay");
        for byte in &wire {
            socket.write_all(std::slice::from_ref(byte)).expect("dribble");
            std::thread::sleep(Duration::from_millis(1));
        }
        // The frame is finally whole; the server must serve it like any
        // other submission.
        match read_frames_raw(&mut socket, 1).remove(0) {
            Frame::Result(r) => assert_eq!(r.id, spec.id),
            other => panic!("dribbler expected its RESULT, got {other:?}"),
        }
    });

    // While ~100 ms of dribbling is in progress, a well-behaved tenant
    // serves a whole batch with the usual bit-identical fingerprints.
    let jobs = 16;
    let mut client = TransportClient::connect(addr).expect("connect");
    let mut out = Vec::new();
    let served_in = Instant::now();
    client.run_batch(&p.specs(jobs), &mut out).expect("well-behaved batch");
    let served_in = served_in.elapsed();
    assert_eq!(fingerprints(&out), in_process_ground_truth(&p, jobs));
    // Not a tight latency bound — just "not serialized behind a 100 ms
    // dribble" (the old design never had this failure mode; the shared
    // event loop must not introduce it).
    assert!(served_in < Duration::from_secs(5), "batch took {served_in:?} behind a dribbler");

    dribbler.join().expect("dribbler thread");
    drop(client);
    server.stop();
    Arc::try_unwrap(engine).ok().expect("engine released").shutdown();
}

#[test]
fn a_write_blocked_tenant_is_contained() {
    let _serial = serial();
    // The adversary fires a burst of submissions and then never reads a
    // byte back. The in-flight cap must bound what the server buffers
    // for it (BUSY past route_capacity, pause-read past the high-water
    // mark) — and the engine's workers must never block on its socket,
    // so a concurrent tenant sees full service.
    let engine = engine(2, 16);
    let server = TransportServer::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        TransportConfig { route_capacity: 4, ..TransportConfig::default() },
    )
    .expect("bind");
    let addr = server.local_addr();

    let p = profile(43);
    let mut blocked = TcpStream::connect(addr).expect("blocked connect");
    let mut burst = Vec::new();
    for i in 0..64u64 {
        burst.extend_from_slice(&encoded_submit(&p.spec(10_000 + i)));
    }
    blocked.write_all(&burst).expect("burst");
    // ...and now the adversary goes deaf: no reads, ever.

    let jobs = 24;
    let mut client = TransportClient::connect(addr).expect("connect");
    let mut out = Vec::new();
    client.run_batch(&p.specs(jobs), &mut out).expect("batch beside a deaf tenant");
    assert_eq!(fingerprints(&out), in_process_ground_truth(&p, jobs));

    // Containment is also cleanup: dropping the deaf socket must reap
    // its connection (and its buffered replies) promptly.
    drop(blocked);
    drop(client);
    wait_for_live(&server, 0, Duration::from_secs(5));
    server.stop();
    Arc::try_unwrap(engine).ok().expect("engine released").shutdown();
}

#[test]
fn idle_tenants_are_evicted_after_the_timeout() {
    let _serial = serial();
    // Slowloris, connection-hoarding side: a tenant that connects and
    // sends nothing must be evicted once `idle_timeout` elapses — while
    // a tenant doing steady work sails through untouched, because
    // activity resets its clock.
    let engine = engine(1, 16);
    let server = TransportServer::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        TransportConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            ..TransportConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let idler = TcpStream::connect(addr).expect("idler connect");
    // Steady work spanning several eviction sweeps: 20 jobs at a fixed
    // 20 ms apiece ≈ 400 ms of continuous traffic on one worker.
    let p = LoadProfile { query_cost: Some(LatencyModel::Fixed(20_000.0)), ..profile(47) };
    let jobs = 20;
    // Ground truth first: computing it replays 400 ms of real job cost,
    // and doing that *between* wire calls would idle the client past
    // its own eviction deadline.
    let want = in_process_ground_truth(&p, jobs);
    let mut client = TransportClient::connect(addr).expect("connect");
    let mut out = Vec::new();
    client.run_batch(&p.specs(jobs), &mut out).expect("batch beside an idler");
    assert_eq!(fingerprints(&out), want);

    // The batch spanned many sweep intervals with every inter-job gap
    // well under the timeout — so merely *finishing* proves activity
    // resets the clock. One more round-trip, immediately, pins it.
    let late = p.spec(9_999);
    client.submit(&late).expect("submit after sweeps");
    client.flush().expect("flush");
    match client.poll().expect("reply") {
        Reply::Result(r) => assert_eq!(r.id, late.id),
        other => panic!("active tenant broken after idle sweeps: {other:?}"),
    }

    // By now the idler has been silent for far longer than 150 ms; its
    // eviction must be counted and its socket really closed (EOF, not
    // silence). The client's own connection may get evicted too once it
    // goes quiet — that's the feature working, so no live-count assert.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics().snapshot().get(Metric::TransportIdleEvictions) == 0
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    let evictions = server.metrics().snapshot().get(Metric::TransportIdleEvictions);
    assert!(evictions >= 1, "idle eviction must be counted, saw {evictions}");
    let mut idler = idler;
    idler.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let mut scratch = [0u8; 8];
    assert_eq!(idler.read(&mut scratch).expect("EOF read"), 0, "idler socket must be closed");

    drop(client);
    server.stop();
    Arc::try_unwrap(engine).ok().expect("engine released").shutdown();
}

#[test]
fn server_threads_scale_with_loops_not_connections() {
    let _serial = serial();
    // The headline resource contract of the refactor: 128 tenants on a
    // 2-loop server must not add O(connections) threads. The old front
    // spawned a reader *and* a writer per connection — 256 threads for
    // this fixture; the bound here leaves room for the engine, the
    // loops, the accept thread, and unrelated test threads, and is
    // still ~an order of magnitude below the old design.
    let baseline = thread_count().expect("/proc/self/status readable");
    let engine = engine(1, 16);
    let server = TransportServer::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        TransportConfig { event_loops: 2, ..TransportConfig::default() },
    )
    .expect("bind");
    let addr = server.local_addr();

    let tenants: Vec<TcpStream> =
        (0..128).map(|_| TcpStream::connect(addr).expect("tenant connect")).collect();
    wait_for_live(&server, tenants.len(), Duration::from_secs(10));

    let now = thread_count().expect("/proc/self/status readable");
    let grew = now.saturating_sub(baseline);
    assert!(
        grew <= 32,
        "128 connections grew the process by {grew} threads — that is O(connections)"
    );

    // And the multiplexed connections actually work: one of the 128 raw
    // sockets completes a round-trip while the other 127 sit connected.
    let p = profile(53);
    let spec = p.spec(0);
    let mut probe = tenants.into_iter().next().expect("have tenants");
    probe.write_all(&encoded_submit(&spec)).expect("probe submit");
    match read_frames_raw(&mut probe, 1).remove(0) {
        Frame::Result(r) => assert_eq!(r.id, spec.id),
        other => panic!("probe expected RESULT, got {other:?}"),
    }

    drop(probe);
    server.stop();
    Arc::try_unwrap(engine).ok().expect("engine released").shutdown();
}

#[test]
fn a_waiting_client_burns_no_cpu() {
    let _serial = serial();
    // `poll()`'s documented contract: the wait is a kernel park, not a
    // spin. While a 150 ms job is in service, the polling thread must
    // accrue (almost) no CPU time.
    let engine = engine(1, 8);
    let server =
        TransportServer::bind(Arc::clone(&engine), "127.0.0.1:0", TransportConfig::default())
            .expect("bind");
    let p = LoadProfile { query_cost: Some(LatencyModel::Fixed(150_000.0)), ..profile(59) };
    let spec = p.spec(0);
    let mut client = TransportClient::connect(server.local_addr()).expect("connect");
    client.submit(&spec).expect("submit");
    client.flush().expect("flush");

    let cpu_before = thread_cpu_time();
    let wall = Instant::now();
    match client.poll().expect("reply") {
        Reply::Result(r) => assert_eq!(r.id, spec.id),
        other => panic!("expected RESULT, got {other:?}"),
    }
    let wall = wall.elapsed();
    let cpu = thread_cpu_time() - cpu_before;

    assert!(wall >= Duration::from_millis(100), "job finished suspiciously fast: {wall:?}");
    // Generous bound (decode + a couple of syscalls), but a spinning
    // wait on this 150 ms window would bill tens of milliseconds even
    // on a loaded single-core box.
    assert!(cpu < Duration::from_millis(50), "poll() burned {cpu:?} CPU over a {wall:?} wait");

    drop(client);
    server.stop();
    Arc::try_unwrap(engine).ok().expect("engine released").shutdown();
}

/// What one run of the idle-herd scenario observed, for the backend
/// assertions to pick over.
struct HerdRun {
    /// Idle sockets actually connected (the 10k ask, clamped to what
    /// `RLIMIT_NOFILE` permits — each loopback connection costs two fds
    /// in this one process).
    herd: usize,
    fingerprints: Vec<(u64, u64)>,
    /// CPU accrued by the (single) event-loop thread across the
    /// streaming phase only — adoption of the herd is excluded.
    loop_cpu: Duration,
    ticks: u64,
    /// Backend-reported "touched fds" over the same window: events
    /// delivered under epoll, the whole registered set scanned under
    /// poll. This asymmetry *is* the O(active) vs O(connections) claim.
    ready_fds: u64,
}

/// The satellite scenario: a huge herd of connected-but-silent tenants
/// parks on a single-loop server while one working tenant streams a
/// batch. Returns the measurements; the per-backend tests assert.
fn idle_herd_batch(choice: BackendChoice, p: &LoadProfile, jobs: usize) -> HerdRun {
    let limit = raise_fd_limit(20_000);
    let herd = 9_999usize.min((limit.saturating_sub(600) / 2) as usize);
    let engine = engine(1, 16);
    let server = TransportServer::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        TransportConfig {
            event_loops: 1,
            idle_timeout: None,
            max_connections: herd + 8,
            backend: choice,
            ..TransportConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let idle: Vec<TcpStream> =
        (0..herd).map(|_| TcpStream::connect(addr).expect("idle connect")).collect();
    wait_for_live(&server, herd, Duration::from_secs(60));

    // Herd adopted and registered; everything from here to the metric
    // re-read is the measured streaming window.
    let before = server.metrics().snapshot();
    let cpu_before =
        thread_cpu_time_by_name("transport-loop").expect("loop thread visible in /proc");
    let mut client = TransportClient::connect(addr).expect("connect");
    let mut out = Vec::new();
    client.run_batch(&p.specs(jobs), &mut out).expect("batch through the herd");
    let loop_cpu = thread_cpu_time_by_name("transport-loop").expect("loop thread visible in /proc")
        - cpu_before;
    let after = server.metrics().snapshot();

    drop(client);
    drop(idle);
    server.stop();
    Arc::try_unwrap(engine).ok().expect("engine released").shutdown();
    HerdRun {
        herd,
        fingerprints: fingerprints(&out),
        loop_cpu,
        ticks: after.get(Metric::TransportTicks) - before.get(Metric::TransportTicks),
        ready_fds: after.get(Metric::TransportReadyFds) - before.get(Metric::TransportReadyFds),
    }
}

#[test]
fn an_idle_herd_under_epoll_costs_o_active_work() {
    let _serial = serial();
    // The tentpole's headline: ~10k idle fds must be free. The kernel
    // holds their interest; the loop hears only about the one tenant
    // doing work, so both the delivered-event count and the loop
    // thread's CPU stay O(active) no matter how big the herd is.
    let p = profile(71);
    let jobs = 120;
    let want = in_process_ground_truth(&p, jobs);
    let run = idle_herd_batch(BackendChoice::Epoll, &p, jobs);

    assert!(run.herd >= 1_000, "fd limit clamped the herd to {} — scenario trivialized", run.herd);
    assert_eq!(run.fingerprints, want, "herd pressure changed results");
    assert!(run.ticks > 0, "streaming a batch must tick the loop");
    // Per tick the loop can legitimately hear about the wake pipe and
    // the active tenant; 4× that is slack. A backend reporting the
    // registered set (O(connections)) would blow past this by ~three
    // orders of magnitude.
    assert!(
        run.ready_fds <= run.ticks * 4,
        "{} ready fds over {} ticks with one active tenant — that is O(connections)",
        run.ready_fds,
        run.ticks
    );
    // Generous for a loaded single-core box, yet far below what any
    // per-tick herd scan (rebuild, iterate, or re-register) would bill.
    assert!(
        run.loop_cpu < Duration::from_millis(500),
        "event loop burned {:?} streaming {jobs} jobs past {} idle tenants",
        run.loop_cpu,
        run.herd
    );
}

#[test]
fn the_same_idle_herd_under_poll_stays_correct() {
    let _serial = serial();
    // Portability contract: the identical scenario on the poll backend
    // is allowed to be slower — it scans the whole registered set every
    // tick — but the results must be bit-identical all the same.
    let p = profile(71);
    let jobs = 120;
    let want = in_process_ground_truth(&p, jobs);
    let run = idle_herd_batch(BackendChoice::Poll, &p, jobs);

    assert!(run.herd >= 1_000, "fd limit clamped the herd to {} — scenario trivialized", run.herd);
    assert_eq!(run.fingerprints, want, "poll backend diverged from ground truth");
    // Honesty check on the comparison itself: poll's touched count is
    // the scanned set, so one tick alone must exceed the herd size.
    assert!(
        run.ready_fds >= run.herd as u64,
        "poll scanned {} fds total over a {}-connection herd — metric miswired",
        run.ready_fds,
        run.herd
    );
}

#[test]
fn fingerprints_are_identical_across_backends() {
    let _serial = serial();
    // Acceptance pin for the backend split: the readiness mechanism may
    // reorder *when* bytes move, never *what* the jobs compute.
    let p = profile(67);
    let jobs = 24;
    let want = in_process_ground_truth(&p, jobs);
    for choice in [BackendChoice::Poll, BackendChoice::Epoll] {
        let engine = engine(2, 16);
        let server = TransportServer::bind(
            Arc::clone(&engine),
            "127.0.0.1:0",
            TransportConfig { backend: choice, ..TransportConfig::default() },
        )
        .expect("bind");
        let mut client = TransportClient::connect(server.local_addr()).expect("connect");
        let mut out = Vec::new();
        client.run_batch(&p.specs(jobs), &mut out).expect("batch");
        assert_eq!(
            fingerprints(&out),
            want,
            "{:?} backend diverged from in-process ground truth",
            server.backend()
        );
        drop(client);
        server.stop();
        Arc::try_unwrap(engine).ok().expect("engine released").shutdown();
    }
}

#[test]
fn try_poll_probes_without_parking() {
    let _serial = serial();
    let engine = engine(1, 8);
    let server =
        TransportServer::bind(Arc::clone(&engine), "127.0.0.1:0", TransportConfig::default())
            .expect("bind");
    let p = LoadProfile { query_cost: Some(LatencyModel::Fixed(100_000.0)), ..profile(61) };
    let spec = p.spec(0);
    let mut client = TransportClient::connect(server.local_addr()).expect("connect");
    client.submit(&spec).expect("submit");
    client.flush().expect("flush");

    // Immediately after submitting a 100 ms job there is no reply; the
    // probe must say so *now*, not after the read deadline.
    let probe = Instant::now();
    let first = client.try_poll().expect("probe");
    assert!(first.is_none(), "100 ms job answered instantly: {first:?}");
    assert!(probe.elapsed() < Duration::from_millis(50), "try_poll parked: {:?}", probe.elapsed());

    // Polled to completion, the reply arrives through the same probe.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.try_poll().expect("probe loop") {
            Some(Reply::Result(r)) => {
                assert_eq!(r.id, spec.id);
                break;
            }
            Some(other) => panic!("expected RESULT, got {other:?}"),
            None => {
                assert!(Instant::now() < deadline, "reply never arrived via try_poll");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    drop(client);
    server.stop();
    Arc::try_unwrap(engine).ok().expect("engine released").shutdown();
}
