//! Seeded, scaled-down versions of the paper's headline numbers, run as
//! tests so regressions in the pipeline show up as failures.

use pooled_data::prelude::*;
use pooled_data::stats::replicate::{mn_trial, run_trials};
use pooled_data::stats::{find_transition, run_mn_sweep, SweepConfig, TransitionConfig};
use pooled_data::theory::thresholds::{k_of, m_mn, m_mn_finite};

/// Fig. 1's worked example: result vector (2, 2, 3, 1, 1).
#[test]
fn fig1_query_results() {
    use pooled_data::design::csr::CsrDesign;
    let sigma = Signal::from_dense(&[1, 1, 0, 0, 1, 0, 0]);
    let pools = vec![vec![0, 1, 3], vec![1, 1, 2], vec![0, 1, 4], vec![4, 5], vec![4, 6]];
    let d = CsrDesign::from_pools(7, &pools);
    assert_eq!(execute_queries(&d, &sigma), vec![2, 2, 3, 1, 1]);
}

/// §VI claim, shape version: at n=1000, θ=0.3, m=220 the mean overlap is
/// high (≥0.90 for our implementation) and reaches ≥0.99 by ~1.6×m.
#[test]
fn claim99_shape() {
    let n = 1000;
    let k = k_of(n, 0.3);
    let master = SeedSequence::new(1905);
    let at_220 = run_trials(&master.child("m", 220), 40, |_, s| mn_trial(n, k, 220, &s));
    let mean_220: f64 = at_220.iter().map(|o| o.overlap).sum::<f64>() / 40.0;
    assert!(mean_220 >= 0.90, "overlap at m=220 fell to {mean_220}");
    let at_350 = run_trials(&master.child("m", 350), 40, |_, s| mn_trial(n, k, 350, &s));
    let mean_350: f64 = at_350.iter().map(|o| o.overlap).sum::<f64>() / 40.0;
    assert!(mean_350 >= 0.99, "overlap at m=350 only {mean_350}");
    assert!(mean_350 > mean_220);
}

/// Fig. 3's qualitative content: the success curve transitions from ~0 to
/// ~1 around the finite-size Theorem 1 threshold.
#[test]
fn fig3_phase_transition_location() {
    let n = 1000;
    let theta = 0.3;
    let k = k_of(n, theta);
    let m_theory = m_mn_finite(n, theta); // ≈ 222
    let cfg = SweepConfig {
        n,
        k,
        m_grid: vec![(0.3 * m_theory) as usize, (1.6 * m_theory) as usize],
        trials: 30,
        master_seed: 1905,
        batch: 1,
    };
    let rows = run_mn_sweep(&cfg);
    assert!(rows[0].success_rate <= 0.2, "below threshold: {}", rows[0].success_rate);
    assert!(rows[1].success_rate >= 0.8, "above threshold: {}", rows[1].success_rate);
}

/// Fig. 2's qualitative content: the measured transition point grows with
/// n along the theory curve (ratio to theory bounded, monotone m*).
#[test]
fn fig2_transition_tracks_theory() {
    let theta = 0.3;
    let mut last_mean = 0.0;
    for &n in &[300usize, 1000, 3000] {
        let k = k_of(n, theta);
        let theory = m_mn_finite(n, theta);
        let cfg = TransitionConfig {
            n,
            k,
            trials: 10,
            m_start: (theory / 8.0).ceil().max(2.0) as usize,
            m_cap: (theory * 10.0).ceil() as usize,
            master_seed: 7,
        };
        let stats = find_transition(&cfg);
        assert_eq!(stats.capped, 0, "n={n}: trials capped");
        let ratio = stats.mean / theory;
        assert!((0.2..1.6).contains(&ratio), "n={n}: transition {} vs theory {theory}", stats.mean);
        assert!(stats.mean > last_mean, "m* should grow with n");
        last_mean = stats.mean;
    }
}

/// Theorem 1's θ-dependence: harder (larger θ) needs more queries, matching
/// the ordering of the thresholds.
#[test]
fn theorem1_theta_ordering_empirical() {
    let n = 1000;
    let mut transitions = Vec::new();
    for &theta in &[0.2, 0.4] {
        let k = k_of(n, theta);
        let theory = m_mn_finite(n, theta);
        let cfg = TransitionConfig {
            n,
            k,
            trials: 8,
            m_start: (theory / 8.0).ceil().max(2.0) as usize,
            m_cap: (theory * 10.0).ceil() as usize,
            master_seed: 21,
        };
        transitions.push(find_transition(&cfg).mean);
    }
    assert!(
        transitions[1] > transitions[0],
        "θ=0.4 transition {} should exceed θ=0.2 transition {}",
        transitions[1],
        transitions[0]
    );
    assert!(m_mn(n, 0.4) > m_mn(n, 0.2));
}
