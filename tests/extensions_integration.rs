//! Cross-crate integration tests for the §VI-extension stack: threshold
//! group testing, adaptive strategies, alternative designs, and the
//! refinement stage, all driven through the facade crate.

use pooled_data::adaptive::{
    counting_dorfman, optimal_group_size, quantitative_bisect, two_round_hybrid, CountOracle,
    HybridConfig, StrategyReport,
};
use pooled_data::core::mn_general::GeneralMnDecoder;
use pooled_data::core::refine::{refine, RefineConfig};
use pooled_data::design::{CsrDesign, DesignKind};
use pooled_data::prelude::*;
use pooled_data::theory::threshold_gt::{m_threshold_estimate, recommended_gamma};
use pooled_data::threshold::{
    consistency_report, recommended_design, ThresholdChannel, ThresholdMnDecoder,
};

/// The full threshold pipeline at T = 2 — design selection from theory,
/// channel execution, decoding, and the consistency certificate.
#[test]
fn threshold_pipeline_end_to_end() {
    let (n, k, t) = (800usize, 7usize, 2u64);
    let (gamma, _) = recommended_gamma(n, k, t);
    let m = (1.3 * m_threshold_estimate(n, k, gamma, t)).ceil() as usize;
    let mut ok = 0;
    for seed in 0..6u64 {
        let seeds = SeedSequence::new(9000 + seed);
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let design = recommended_design(n, k, t, m, &seeds.child("design", 0));
        let bits = ThresholdChannel::new(t).execute(&design, &sigma);
        let out = ThresholdMnDecoder::new(k).decode(&design, &bits);
        if out.estimate == sigma {
            ok += 1;
            assert!(consistency_report(&design, &bits, &out.estimate, t).is_consistent());
        }
    }
    assert!(ok >= 5, "threshold pipeline recovered {ok}/6");
}

/// Every adaptive strategy recovers the same signal exactly, and their
/// cost profiles are ordered the way the trade-off table claims.
#[test]
fn adaptive_strategies_agree_and_rank() {
    let (n, k) = (4096usize, 12usize);
    let seeds = SeedSequence::new(777);
    let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());

    let mut o1 = CountOracle::new(&sigma);
    let bis = quantitative_bisect(&mut o1);
    assert_eq!(bis.estimate, sigma);

    let g = optimal_group_size(n, k);
    let mut o2 = CountOracle::new(&sigma);
    let dorf = counting_dorfman(&mut o2, g);
    assert_eq!(dorf.estimate, sigma);

    // Query ordering: bisect ≪ dorfman ≪ individual testing.
    assert!(bis.queries < dorf.queries, "{} vs {}", bis.queries, dorf.queries);
    assert!(dorf.queries < n / 2);
    // Round ordering: dorfman (2) < bisect (log n).
    assert!(dorf.rounds <= 2);
    assert!(bis.rounds > dorf.rounds);

    // Makespans honour the barrier semantics on few units vs many.
    let b = StrategyReport::new("bisect", bis.per_round.clone(), true);
    let d = StrategyReport::new("dorfman", dorf.per_round.clone(), true);
    assert!(b.makespan(10_000, 1.0) >= d.makespan(10_000, 1.0), "rounds dominate at L=∞");
}

/// The hybrid's screening round uses the same oracle accounting as the
/// other strategies and its capture certificate is sound.
#[test]
fn hybrid_certificate_is_sound() {
    let (n, k) = (1000usize, 8usize);
    for seed in 0..8u64 {
        let seeds = SeedSequence::new(31_000 + seed);
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let mut oracle = CountOracle::new(&sigma);
        let cfg = HybridConfig { m1: 150, candidate_mult: 8 };
        let res = two_round_hybrid(&mut oracle, k, &cfg, &seeds);
        assert_eq!(res.queries, oracle.queries());
        if res.captured {
            assert_eq!(res.estimate, sigma, "captured must imply exact (seed {seed})");
        } else {
            assert_ne!(res.estimate, sigma);
        }
    }
}

/// All four design families drive the same Γ-general decoder to exact
/// recovery at a generous budget — the families are interchangeable
/// behind the `PoolingDesign` trait.
#[test]
fn all_design_families_interchangeable() {
    let (n, k, m) = (600usize, 6usize, 400usize);
    for kind in DesignKind::ALL {
        let seeds = SeedSequence::new(4242);
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let design = kind.sample(n, m, 0.5, &seeds.child(kind.name(), 0));
        let y = execute_queries(&design, &sigma);
        let out = GeneralMnDecoder::new(k).decode(&design, &y);
        assert_eq!(out.estimate, sigma, "{} failed at m={m}", kind.name());
    }
}

/// Refinement strictly extends the decoder's working range: below the MN
/// threshold it repairs estimates, and its certificate (zero residual at
/// m above the IT threshold) never lies over a full seed sweep.
#[test]
fn refinement_certificate_never_lies() {
    let (n, k, m) = (1000usize, 8usize, 150usize); // between m_IT and m_MN
    let mut certified = 0;
    for seed in 0..10u64 {
        let seeds = SeedSequence::new(88_000 + seed);
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let design = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
        let y = execute_queries(&design, &sigma);
        let out = MnDecoder::new(k).decode(&design, &y);
        let refined = refine(&design, &y, &out.scores, &out.estimate, &RefineConfig::default());
        if refined.consistent {
            certified += 1;
            assert_eq!(refined.estimate, sigma, "certificate lied at seed {seed}");
        }
    }
    assert!(certified >= 6, "only {certified}/10 certified at m={m}");
}

/// The threshold decoder degrades to the additive decoder's answer as
/// T-channel bits carry less information: additive success dominates
/// threshold success at the same (n, m).
#[test]
fn additive_channel_dominates_threshold_channel() {
    let (n, k, t) = (1000usize, 8usize, 2u64);
    let m = 420; // comfortable for additive, hopeless for 1-bit queries
    let (mut add_ok, mut thr_ok) = (0, 0);
    for seed in 0..6u64 {
        let seeds = SeedSequence::new(55_000 + seed);
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let add_design = CsrDesign::sample(n, m, n / 2, &seeds.child("add", 0));
        let y = execute_queries(&add_design, &sigma);
        add_ok += (MnDecoder::new(k).decode(&add_design, &y).estimate == sigma) as u32;
        let thr_design = recommended_design(n, k, t, m, &seeds.child("thr", 0));
        let bits = ThresholdChannel::new(t).execute(&thr_design, &sigma);
        thr_ok += (ThresholdMnDecoder::new(k).decode(&thr_design, &bits).estimate == sigma) as u32;
    }
    assert!(add_ok >= thr_ok, "additive {add_ok}/6 vs threshold {thr_ok}/6");
    assert_eq!(add_ok, 6, "m=420 should be comfortable for the additive channel");
}
