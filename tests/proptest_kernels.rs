//! Property-based equivalence of the fused / blocked / workspace kernels
//! against the seed paths they replace.
//!
//! Everything here must be **bit-identical** — the kernels are exact `u64`
//! accumulations, so no tolerance is involved anywhere.

use proptest::prelude::*;

use pooled_data::core::batch::BatchWorkspace;
use pooled_data::core::mn::MnDecoder;
use pooled_data::core::mn_general::GeneralMnDecoder;
use pooled_data::core::query::execute_queries;
use pooled_data::core::workspace::MnWorkspace;
use pooled_data::design::batched::{decode_sums_fused_batch, decode_sums_fused_batch_stream};
use pooled_data::design::csr::CsrDesign;
use pooled_data::design::fused::{
    decode_sums_fused, decode_sums_fused_stream, scatter_distinct_into, FusedArena,
};
use pooled_data::design::matvec::{pool_sums_u64, scatter_distinct_u64};
use pooled_data::design::StreamingDesign;
use pooled_data::par::blocked::BlockedScatter;
use pooled_data::par::scatter::AtomicCounters;
use pooled_data::prelude::*;

/// A dense 0/1 `u64` signal derived from a seeded `Signal`.
fn dense_u64(n: usize, k: usize, seeds: &SeedSequence) -> Vec<u64> {
    let sigma = Signal::random(n, k.min(n), &mut seeds.child("signal", 0).rng());
    sigma.dense().iter().map(|&b| b as u64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `decode_sums_fused` (CSR) is bit-identical to the two-pass
    /// `pool_sums_u64` + `scatter_distinct_u64` composition.
    #[test]
    fn fused_csr_matches_two_pass(
        n in 4usize..250,
        m in 0usize..60,
        k in 0usize..20,
        seed in any::<u64>(),
    ) {
        let seeds = SeedSequence::new(seed);
        let gamma = (n / 2).max(1);
        let design = CsrDesign::sample(n, m, gamma, &seeds.child("d", 0));
        let x = dense_u64(n, k, &seeds);
        let want_y = pool_sums_u64(&design, &x);
        let (want_psi, want_dstar) = scatter_distinct_u64(&design, &want_y);
        let mut arena = FusedArena::new();
        let (mut y, mut psi, mut dstar) = (vec![0; m], vec![0; n], vec![0; n]);
        decode_sums_fused(&design, &x, &mut y, &mut psi, &mut dstar, &mut arena);
        prop_assert_eq!(y, want_y);
        prop_assert_eq!(psi, want_psi);
        prop_assert_eq!(dstar, want_dstar);
    }

    /// The streaming fused variant (single pool regeneration per query) is
    /// bit-identical to the two-pass composition on the *streaming*
    /// representation, and to the CSR kernel on the materialized twin.
    #[test]
    fn fused_stream_matches_two_pass(
        n in 4usize..200,
        m in 0usize..40,
        k in 0usize..15,
        seed in any::<u64>(),
    ) {
        let seeds = SeedSequence::new(seed);
        let gamma = (n / 2).max(1);
        let stream = StreamingDesign::new(n, m, gamma, &seeds.child("d", 0));
        let x = dense_u64(n, k, &seeds);
        let want_y = pool_sums_u64(&stream, &x);
        let (want_psi, want_dstar) = scatter_distinct_u64(&stream, &want_y);
        let mut arena = FusedArena::new();
        let (mut y, mut psi, mut dstar) = (vec![0; m], vec![0; n], vec![0; n]);
        decode_sums_fused_stream(&stream, &x, &mut y, &mut psi, &mut dstar, &mut arena);
        prop_assert_eq!(&y, &want_y);
        prop_assert_eq!(&psi, &want_psi);
        prop_assert_eq!(&dstar, &want_dstar);
        // And the CSR kernel on the materialized twin agrees.
        let csr = stream.materialize();
        let (mut y2, mut psi2, mut dstar2) = (vec![0; m], vec![0; n], vec![0; n]);
        decode_sums_fused(&csr, &x, &mut y2, &mut psi2, &mut dstar2, &mut arena);
        prop_assert_eq!(y2, want_y);
        prop_assert_eq!(psi2, want_psi);
        prop_assert_eq!(dstar2, want_dstar);
    }

    /// Blocked privatized scatter matches `AtomicCounters` on random
    /// designs (the decoder access pattern, both planes).
    #[test]
    fn blocked_scatter_matches_atomic(
        n in 2usize..300,
        m in 0usize..50,
        gamma in 1usize..80,
        seed in any::<u64>(),
    ) {
        let design = CsrDesign::sample(n, m, gamma, &SeedSequence::new(seed));
        let w: Vec<u64> = (0..m as u64).map(|q| q.wrapping_mul(2654435761) % 1000).collect();
        // Atomic reference.
        let psi_acc = AtomicCounters::new(n);
        let dstar_acc = AtomicCounters::new(n);
        for (q, &wq) in w.iter().enumerate() {
            pooled_data::design::PoolingDesign::for_each_distinct(&design, q, &mut |e, _| {
                psi_acc.add(e, wq);
                dstar_acc.incr(e);
            });
        }
        let (want_psi, want_dstar) = (psi_acc.into_vec(), dstar_acc.into_vec());
        // Blocked kernel.
        let mut blocked = BlockedScatter::new();
        let (mut psi, mut dstar) = (vec![0u64; n], vec![0u64; n]);
        blocked.scatter_pair(&mut psi, &mut dstar, m, |a, b, range| {
            for q in range {
                let wq = w[q];
                pooled_data::design::PoolingDesign::for_each_distinct(&design, q, &mut |e, _| {
                    a[e] += wq;
                    b[e] += 1;
                });
            }
        });
        prop_assert_eq!(&psi, &want_psi);
        prop_assert_eq!(&dstar, &want_dstar);
        // Heuristic dispatcher (any kernel it picks) agrees too.
        let mut arena = FusedArena::new();
        let (mut psi_h, mut dstar_h) = (vec![0u64; n], vec![0u64; n]);
        scatter_distinct_into(&design, &w, &mut psi_h, &mut dstar_h, &mut arena);
        prop_assert_eq!(psi_h, want_psi);
        prop_assert_eq!(dstar_h, want_dstar);
    }

    /// The workspace decode produces the same estimate, scores, Ψ and Δ* as
    /// the allocating API, and the workspace can be reused across problem
    /// shapes.
    #[test]
    fn decode_with_matches_decode(
        n in 8usize..200,
        m in 1usize..40,
        k in 0usize..12,
        seed in any::<u64>(),
    ) {
        let seeds = SeedSequence::new(seed);
        let design = CsrDesign::sample(n, m, (n / 2).max(1), &seeds.child("d", 0));
        let sigma = Signal::random(n, k.min(n), &mut seeds.child("s", 0).rng());
        let y = execute_queries(&design, &sigma);
        let want = MnDecoder::new(k).decode(&design, &y);
        let mut ws = MnWorkspace::new();
        MnDecoder::new(k).decode_with(&design, &y, &mut ws);
        prop_assert_eq!(ws.scores(), &want.scores[..]);
        prop_assert_eq!(ws.psi(), &want.psi[..]);
        prop_assert_eq!(ws.delta_star(), &want.delta_star[..]);
        prop_assert_eq!(ws.estimate_dense(), want.estimate.dense());
        // Reuse the same workspace on the general decoder.
        let want_general = GeneralMnDecoder::new(k).decode(&design, &y);
        GeneralMnDecoder::new(k).decode_with(&design, &y, &mut ws);
        prop_assert_eq!(ws.scores_wide(), &want_general.scores[..]);
        prop_assert_eq!(ws.estimate_dense(), want_general.estimate.dense());
    }

    /// The batched decode is bit-identical, lane by lane, to B independent
    /// `decode_csr_with` calls, for arbitrary B ∈ [1, 32], shapes and
    /// signals — reusing one batch workspace across cases.
    #[test]
    fn decode_batch_with_matches_independent_decodes(
        lanes in 1usize..=32,
        n in 8usize..160,
        m in 1usize..40,
        k in 0usize..10,
        seed in any::<u64>(),
    ) {
        let seeds = SeedSequence::new(seed);
        let design = CsrDesign::sample(n, m, (n / 2).max(1), &seeds.child("d", 0));
        // Lane-major stacked query results from independent signals.
        let mut ys = Vec::with_capacity(lanes * m);
        for b in 0..lanes {
            let sigma = Signal::random(n, k.min(n), &mut seeds.child("s", b as u64).rng());
            ys.extend(execute_queries(&design, &sigma));
        }
        let decoder = MnDecoder::new(k);
        let mut bw = BatchWorkspace::new();
        let mut single = MnWorkspace::new();
        let mut visited = 0usize;
        let mut failure: Option<String> = None;
        decoder.decode_batch_with(&design, &ys, lanes, &mut bw, |lane, ws| {
            decoder.decode_csr_with(&design, &ys[lane * m..(lane + 1) * m], &mut single);
            if ws.scores() != single.scores()
                || ws.support() != single.support()
                || ws.psi() != single.psi()
                || ws.delta_star() != single.delta_star()
                || ws.estimate_dense() != single.estimate_dense()
            {
                failure.get_or_insert_with(|| format!("lane {lane} diverged"));
            }
            visited += 1;
        });
        prop_assert_eq!(failure, None);
        prop_assert_eq!(visited, lanes);
    }

    /// The batched trial kernels (CSR and streaming) match the single-job
    /// fused kernel lane by lane: same y, same Ψ, and one shared Δ*.
    #[test]
    fn batched_trial_kernels_match_fused_per_lane(
        lanes in 1usize..=16,
        n in 4usize..120,
        m in 0usize..30,
        seed in any::<u64>(),
    ) {
        let seeds = SeedSequence::new(seed);
        let gamma = (n / 2).max(1);
        let stream = StreamingDesign::new(n, m, gamma, &seeds.child("d", 0));
        let csr = stream.materialize();
        let xs: Vec<u8> = (0..lanes * n)
            .map(|i| u8::from((i as u64).wrapping_mul(seed | 1).is_multiple_of(3)))
            .collect();
        let (mut ys, mut psis, mut dstar) =
            (vec![0u64; lanes * m], vec![0u64; lanes * n], vec![0u64; n]);
        decode_sums_fused_batch(&csr, &xs, lanes, &mut ys, &mut psis, &mut dstar);
        let mut pool = Vec::new();
        let (mut ys_s, mut psis_s, mut dstar_s) =
            (vec![0u64; lanes * m], vec![0u64; lanes * n], vec![0u64; n]);
        decode_sums_fused_batch_stream(
            &stream, &xs, lanes, &mut ys_s, &mut psis_s, &mut dstar_s, &mut pool,
        );
        prop_assert_eq!(&ys, &ys_s);
        prop_assert_eq!(&psis, &psis_s);
        prop_assert_eq!(&dstar, &dstar_s);
        let mut arena = FusedArena::new();
        for b in 0..lanes {
            let x: Vec<u64> = xs[b * n..(b + 1) * n].iter().map(|&v| v as u64).collect();
            let (mut y, mut psi, mut ds) = (vec![0u64; m], vec![0u64; n], vec![0u64; n]);
            decode_sums_fused(&csr, &x, &mut y, &mut psi, &mut ds, &mut arena);
            prop_assert_eq!(&ys[b * m..(b + 1) * m], &y[..], "lane {} y", b);
            prop_assert_eq!(&psis[b * n..(b + 1) * n], &psi[..], "lane {} psi", b);
            prop_assert_eq!(&dstar, &ds, "lane {} dstar", b);
        }
    }
}
