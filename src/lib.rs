#![warn(missing_docs)]

//! # pooled-data — Parallel Reconstruction from Pooled Data
//!
//! Facade crate re-exporting the whole workspace behind one dependency.
//! See the README for the architecture overview and the per-crate docs for
//! details. The typical entry points are:
//!
//! * [`design`] — sample a random regular pooling design `G(n, m, Γ)`.
//! * [`core`] — generate signals, execute additive queries, decode with the
//!   Maximum Neighborhood algorithm.
//! * [`theory`] — closed-form thresholds from the paper.
//! * [`baselines`] — comparator decoders (OMP, LP, AMP, peeling, COMP/DD).
//! * [`lab`] — discrete-event simulation of parallel query execution.
//! * [`threshold`] — threshold group testing (§VI open problem): one-bit
//!   channels, the Threshold-MN decoder, pool-size selection.
//! * [`adaptive`] — partially-parallel strategies (§VI open problem):
//!   quantitative bisection, counting Dorfman, the two-round hybrid, and
//!   the rounds/queries/makespan trade-off.
//! * [`engine`] — the serving layer: a sharded, batched reconstruction
//!   engine with a design cache, worker shards over the allocation-free
//!   decode workspace, backpressure and telemetry.
//!
//! ```
//! use pooled_data::prelude::*;
//!
//! let seeds = SeedSequence::new(1905);
//! let n = 512;
//! let k = 6;
//! let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
//! let m = 400;
//! let design = RandomRegularDesign::sample(n, m, &seeds.child("design", 0));
//! let y = execute_queries(&design, &sigma);
//! let decoded = MnDecoder::new(k).decode(&design, &y);
//! assert_eq!(decoded.estimate, sigma);
//! ```

pub use pooled_adaptive as adaptive;
pub use pooled_baselines as baselines;
pub use pooled_core as core;
pub use pooled_design as design;
pub use pooled_engine as engine;
pub use pooled_io as io;
pub use pooled_lab as lab;
pub use pooled_linalg as linalg;
pub use pooled_par as par;
pub use pooled_rng as rng;
pub use pooled_stats as stats;
pub use pooled_theory as theory;
pub use pooled_threshold as threshold;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use pooled_core::mn::MnDecoder;
    pub use pooled_core::query::execute_queries;
    pub use pooled_core::signal::Signal;
    pub use pooled_design::multigraph::RandomRegularDesign;
    pub use pooled_design::PoolingDesign;
    pub use pooled_rng::{Rng64, SeedSequence};
    pub use pooled_theory::thresholds;
}
